"""Ablation: batch-at-a-time columnar kernels — identity, cost, speedup.

Three claims (the batched contract, docs/algebra.md):

* batching is *invisible* in the physics: every paper query under every
  physical plan returns bit-identical values, ``Stats`` and simulated
  time with ``batched`` on and off — the kernels replay the scalar
  charge and fix/unfix sequences exactly;
* the flag costs nothing when off: ``EvalOptions(batched=False)`` is
  the scalar datapath itself (kernel selection happens once at open
  time), and no column view is ever built on its runs;
* batching is *visible* on the wall clock: the warm columnar datapath
  must never be slower than the scalar one, and the measured speedup is
  recorded into the ablation table / ``BENCH_*.json`` artifacts.
"""

import time

import pytest

from repro import EvalOptions, Tracer
from harness import QUERY_BY_EXP, run_query

SCALE = 0.1
PLANS = ("simple", "xschedule", "xscan", "xscan-shared")
OFF = EvalOptions(batched=False)
ON = EvalOptions(batched=True)


def _outcome(result):
    if result.value is not None:
        return result.value
    return tuple(result.nodes)


@pytest.mark.parametrize("plan", PLANS)
@pytest.mark.parametrize("exp_id", ("q6", "q7", "q15"))
def test_batched_bit_identical(xmark_store, exp_id, plan):
    """Batched on vs off: same answer, same Stats, same simulated time."""
    db = xmark_store(SCALE)
    on = run_query(db, QUERY_BY_EXP[exp_id], plan, options=ON)
    off = run_query(db, QUERY_BY_EXP[exp_id], plan, options=OFF)
    assert _outcome(on) == _outcome(off)
    assert on.stats.as_dict() == off.stats.as_dict()
    assert on.total_time == off.total_time
    assert on.cpu_time == off.cpu_time


def test_batched_off_builds_no_views(xmark_store):
    """``batched=False`` must leave the store exactly as the scalar
    engine does: no ColumnView is materialized anywhere."""
    db = xmark_store(SCALE)
    segment = db.store.segment
    for page_no in db.document("xmark").page_nos:
        segment.page(page_no).invalidate_colview()
    for plan in PLANS:
        run_query(db, QUERY_BY_EXP["q6"], plan, options=OFF)
    views = sum(
        segment.page(p)._colview is not None
        for p in db.document("xmark").page_nos
    )
    assert views == 0, f"scalar runs materialized {views} column views"


@pytest.mark.parametrize("plan", ("simple", "xscan"))
def test_batched_wall_clock_never_regresses(xmark_store, record_result, plan):
    """Warm wall clock, min of 3 rounds per mode.  The columnar kernels
    must at worst break even (generous noise margin); the measured
    speedup lands in the ablation table and the BENCH artifacts."""
    db = xmark_store(SCALE)
    query = QUERY_BY_EXP["q6"]
    run_query(db, query, plan, options=ON)  # warm buffer + views + caches
    run_query(db, query, plan, options=OFF)
    walls = {}
    for label, options in (("on", ON), ("off", OFF)):
        best = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            run_query(db, query, plan, options=options)
            best = min(best, time.perf_counter() - t0)
        walls[label] = best
    record_result(
        "ablation_batched",
        plan=plan,
        wall_on=walls["on"],
        wall_off=walls["off"],
        speedup=walls["off"] / walls["on"],
    )
    # hard gate only on "not slower": machine-noise tolerant (25%), the
    # actual >= 2x speedup claim is tracked by perf_smoke's baseline
    assert walls["on"] <= walls["off"] * 1.25, walls


def test_batched_trace_reconciles(xmark_store):
    """Per-batch span events and delta-flushed counter mirrors keep the
    tracer exact over the columnar kernels."""
    from repro import Database

    base = xmark_store(SCALE)
    db = Database(
        page_size=base.store.segment.page_size,
        buffer_pages=base.buffer_pages,
        store=base.store,
        tracer=Tracer(),
    )
    for plan in PLANS:
        result = db.execute(QUERY_BY_EXP["q7"], doc="xmark", plan=plan, options=ON)
        assert result.trace_summary is not None
        assert result.trace_summary.reconcile(result.stats) == {}
    summary = db.env.tracer.summary()
    batch_events = [
        e for e in db.env.tracer.events if e.name in ("xstep-batch", "unnest-batch")
    ]
    assert batch_events, "batched kernels emitted no batch span events"
    assert all(e.args.get("batch_size", 0) >= 1 for e in batch_events)
    assert summary.counter("node_tests") > 0
