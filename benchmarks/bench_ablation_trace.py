"""Ablation: execution tracing — overhead and exactness.

Three claims (the observability layer's contract, docs/observability.md):

* with no tracer installed the instrumentation hook is free — the same
  query on the same store produces bit-identical simulated timings and
  counters, so the paper figures (9-11) are unaffected by this layer;
* with a tracer installed the *simulated* physics are still identical
  (the tracer reads the clock, never charges it), and the metrics
  rollup reconciles counter-for-counter with ``Stats`` for the paper
  queries under every physical plan;
* the Chrome trace export is well-formed trace-viewer JSON.
"""

import json

import pytest

from repro import Database, Tracer
from harness import QUERY_BY_EXP, run_query

SCALE = 0.1
PLANS = ("simple", "xschedule", "xscan", "xscan-shared")


def _shared_store_db(base, tracer=None):
    return Database(
        page_size=base.store.segment.page_size,
        buffer_pages=base.buffer_pages,
        store=base.store,
        tracer=tracer,
    )


def test_tracing_off_is_free(benchmark, xmark_store, record_result):
    """No tracer installed => identical physics, to the last tick."""
    base = xmark_store(SCALE)
    vanilla = run_query(base, QUERY_BY_EXP["q6"], "xschedule")
    hooked_db = _shared_store_db(base)  # same stack, trace hooks compiled in
    hooked = benchmark.pedantic(
        lambda: run_query(hooked_db, QUERY_BY_EXP["q6"], "xschedule"),
        rounds=1,
        iterations=1,
    )
    record_result(
        "ablation_trace",
        mode="off",
        total=hooked.total_time,
        overhead=hooked.total_time / vanilla.total_time,
        events=0.0,
    )
    assert hooked.value == vanilla.value
    assert hooked.total_time == vanilla.total_time
    assert hooked.stats.as_dict() == vanilla.stats.as_dict()
    assert hooked.trace_summary is None


@pytest.mark.parametrize("plan", PLANS)
@pytest.mark.parametrize("exp_id", ("q6", "q7", "q15"))
def test_tracing_on_is_non_perturbing_and_exact(
    benchmark, xmark_store, record_result, exp_id, plan
):
    """Tracing on: same simulated time, rollup == Stats, field for field."""
    base = xmark_store(SCALE)
    baseline = run_query(base, QUERY_BY_EXP[exp_id], plan)
    tracer = Tracer()
    db = _shared_store_db(base, tracer=tracer)
    result = benchmark.pedantic(
        lambda: run_query(db, QUERY_BY_EXP[exp_id], plan),
        rounds=1,
        iterations=1,
    )
    record_result(
        "ablation_trace",
        mode=f"{exp_id}/{plan}",
        total=result.total_time,
        overhead=result.total_time / baseline.total_time,
        events=float(tracer.events_recorded),
    )
    assert result.value == baseline.value
    assert result.total_time == baseline.total_time  # bit-identical clock
    assert result.stats.as_dict() == baseline.stats.as_dict()
    assert result.trace_summary is not None
    mismatches = result.trace_summary.reconcile(result.stats)
    assert mismatches == {}, f"trace/stats drift: {mismatches}"
    assert tracer.events_recorded > 0


def test_chrome_export_well_formed(xmark_store, tmp_path):
    base = xmark_store(SCALE)
    tracer = Tracer()
    db = _shared_store_db(base, tracer=tracer)
    run_query(db, QUERY_BY_EXP["q6"], "xschedule")
    out = tmp_path / "trace.json"
    tracer.export_chrome(str(out))
    payload = json.loads(out.read_text(encoding="utf-8"))
    assert "traceEvents" in payload
    events = payload["traceEvents"]
    assert events, "empty trace"
    phases = {e["ph"] for e in events}
    assert "X" in phases  # spans (disk service, operators)
    assert "M" in phases  # thread-name metadata
    for e in events:
        assert {"ph", "pid", "tid", "name"} <= e.keys()
