"""Figure 9: Q6' = count(/site/regions//item) — total time vs scale factor.

Paper shape to reproduce: XSchedule < XScan < Simple at every scale;
XSchedule roughly 40% below Simple.
"""

import pytest

from conftest import bench_scales
from harness import PLANS, QUERY_BY_EXP, run_query, run_query_timed


@pytest.mark.parametrize("scale", bench_scales())
@pytest.mark.parametrize("plan", PLANS)
def test_fig9_q6(benchmark, xmark_store, record_result, scale, plan):
    db = xmark_store(scale)
    result, wall = benchmark.pedantic(
        lambda: run_query_timed(db, QUERY_BY_EXP["q6"], plan), rounds=1, iterations=1
    )
    record_result(
        "fig9_q6",
        scale=scale,
        plan=plan,
        total=result.total_time,
        cpu=result.cpu_time,
        wall=wall,
        pages_read=result.stats.pages_read,
    )
    benchmark.extra_info["simulated_total_s"] = result.total_time
    benchmark.extra_info["simulated_cpu_s"] = result.cpu_time
    assert result.value is not None and result.value > 0


def test_fig9_shape_holds(xmark_store, record_result, benchmark):
    """XSchedule beats Simple on Q6' at a representative scale."""
    db = xmark_store(bench_scales()[len(bench_scales()) // 2])

    def run_all():
        return {plan: run_query(db, QUERY_BY_EXP["q6"], plan) for plan in PLANS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert results["xschedule"].total_time < results["simple"].total_time
    assert results["xscan"].total_time < results["simple"].total_time
