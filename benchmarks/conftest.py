"""Shared benchmark infrastructure.

Documents are generated and imported once per scale factor and shared
across all benchmark modules (building an XMark store is far more
expensive than querying it).  Every benchmark records its simulated-time
measurements into a global registry; a terminal-summary hook prints the
paper-style tables (Figures 9-11, Table 3, and the ablations) at the end
of the run, so ``pytest benchmarks/ --benchmark-only`` reproduces the
paper's numbers in one go.

Environment knobs:

* ``REPRO_BENCH_SCALES`` — comma-separated scale factors (default: the
  paper's nine, 0.1 .. 2.0).
* ``REPRO_BENCH_SEED`` — generator/layout seed (default 1).
"""

from __future__ import annotations

import os
from collections import defaultdict

import pytest

from harness import (
    DEFAULT_SCALES,
    PAPER_REFERENCE,
    build_xmark_db,
    format_fig_table,
    format_table3,
    write_bench_json,
)

_STORE_CACHE: dict[float, object] = {}

#: experiment id -> list of result rows (dicts)
RESULTS: dict[str, list[dict]] = defaultdict(list)


def bench_scales() -> list[float]:
    raw = os.environ.get("REPRO_BENCH_SCALES")
    if raw:
        return [float(x) for x in raw.split(",") if x.strip()]
    return list(DEFAULT_SCALES)


@pytest.fixture(scope="session")
def xmark_store():
    """scale -> Database factory with caching."""

    def get(scale: float):
        if scale not in _STORE_CACHE:
            _STORE_CACHE[scale] = build_xmark_db(scale)
        return _STORE_CACHE[scale]

    return get


def record(experiment: str, **row) -> None:
    RESULTS[experiment].append(row)


@pytest.fixture()
def record_result():
    return record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    tr = terminalreporter
    if not RESULTS:
        return
    tr.section("paper reproduction tables (simulated seconds)")
    for exp_id in ("fig9_q6", "fig10_q7", "fig11_q15"):
        if exp_id in RESULTS:
            tr.write_line("")
            tr.write_line(format_fig_table(exp_id, RESULTS[exp_id]))
            tr.write_line(f"wrote {write_bench_json(exp_id, RESULTS[exp_id])}")
    if "table3" in RESULTS:
        tr.write_line("")
        tr.write_line(format_table3(RESULTS["table3"]))
    figures = ("fig9_q6", "fig10_q7", "fig11_q15", "table3")
    extras = sorted(k for k in RESULTS if k not in figures)
    for exp_id in extras:
        tr.write_line("")
        tr.write_line(f"--- {exp_id} ---")
        rows = RESULTS[exp_id]
        keys = [k for k in rows[0] if k != "experiment"]
        header = "  ".join(f"{k:>12s}" for k in keys)
        tr.write_line(header)
        for row in rows:
            tr.write_line(
                "  ".join(
                    f"{row[k]:>12.4f}" if isinstance(row[k], float) else f"{str(row[k]):>12s}"
                    for k in keys
                )
            )
        tr.write_line(f"wrote {write_bench_json(exp_id, rows)}")
