"""Ablation: fallback mode under shrinking memory limits (paper Sec. 5.4.6).

When XAssembly's S structure hits the per-query memory limit, the plan
degrades to the Simple method.  Results stay correct; evaluation cost
rises toward (and beyond) the Simple plan's, because the scan's work is
partially wasted and the rest is re-evaluated.
"""

import pytest

from repro import EvalOptions
from harness import QUERY_BY_EXP, run_query

SCALE = 0.5
LIMITS = (None, 10_000, 1_000, 100)


@pytest.mark.parametrize("limit", LIMITS, ids=lambda l: f"limit={l}")
def test_fallback_limits(benchmark, xmark_store, record_result, limit):
    db = xmark_store(SCALE)
    options = EvalOptions(memory_limit=limit)
    result = benchmark.pedantic(
        lambda: run_query(db, QUERY_BY_EXP["q6"], "xscan", options), rounds=1, iterations=1
    )
    record_result(
        "ablation_fallback",
        limit=str(limit),
        total=result.total_time,
        fallbacks=float(result.stats.fallbacks),
    )
    assert result.value > 0


def test_fallback_preserves_results_and_costs_more(xmark_store, benchmark):
    db = xmark_store(SCALE)

    def run_pair():
        unlimited = run_query(db, QUERY_BY_EXP["q6"], "xscan", EvalOptions(memory_limit=None))
        tiny = run_query(db, QUERY_BY_EXP["q6"], "xscan", EvalOptions(memory_limit=50))
        return unlimited, tiny

    unlimited, tiny = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert tiny.value == unlimited.value
    assert tiny.stats.fallbacks == 1
    assert unlimited.stats.fallbacks == 0
    assert tiny.total_time > unlimited.total_time
