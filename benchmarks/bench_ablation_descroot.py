"""Ablation: the ``//``-prefix R-optimisation (paper Sec. 5.4.5.4).

With the logical rewrite disabled, ``//item`` compiles to
``descendant-or-self::node()/child::item`` and XScan plans may treat
every step-1 right end as implicitly reachable, saving R insertions and
lookups.  This bench compares: rewrite on (the orthogonal logical
optimisation), rewrite off with the R-optimisation, and rewrite off
without it.
"""

import pytest

from repro import EvalOptions
from harness import run_query

SCALE = 0.5
QUERY = "count(//item)"

VARIANTS = {
    "rewrite": EvalOptions(rewrite_descendant=True),
    "opt": EvalOptions(rewrite_descendant=False, descendant_root_opt=True),
    "no_opt": EvalOptions(rewrite_descendant=False, descendant_root_opt=False),
}


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_descendant_root_variants(benchmark, xmark_store, record_result, variant):
    db = xmark_store(SCALE)
    result = benchmark.pedantic(
        lambda: run_query(db, QUERY, "xscan", VARIANTS[variant]), rounds=1, iterations=1
    )
    record_result(
        "ablation_descroot",
        variant=variant,
        total=result.total_time,
        cpu=result.cpu_time,
    )
    assert result.value > 0


def test_all_variants_agree_and_opt_helps(xmark_store, benchmark):
    db = xmark_store(SCALE)

    def run_all():
        return {name: run_query(db, QUERY, "xscan", opts) for name, opts in VARIANTS.items()}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    values = {r.value for r in results.values()}
    assert len(values) == 1
    # "reduces memory usage and improves XAssembly performance"
    assert results["opt"].cpu_time <= results["no_opt"].cpu_time
