"""Ablation: chooser calibration — off is free, on costs nothing simulated.

The feedback store (:mod:`repro.exec.calibration`) follows the repo's
feature-gate contract (tracer, synopsis, WAL...):

* ``EvalOptions(calibration=False)`` creates **no store at all** — the
  session's ``calibration`` slot is ``None`` and every execution is
  bit-identical (value, simulated timings, full counter bundle) to a
  plain ``Database.execute``, which never had a store to begin with;
* with calibration **on**, the store is planning-time only: it never
  touches the simulated clock, so the first run of any query (an empty
  store — the estimator decides, exactly as with calibration off)
  produces bit-identical simulated physics.
"""

import pytest

from repro import EvalOptions
from harness import QUERY_BY_EXP, build_xmark_db

SCALE = 0.1
OFF = EvalOptions(calibration=False)
ON = EvalOptions(calibration=True)


def _outcome(result):
    if result.value is not None:
        return result.value
    return tuple(result.nodes)


@pytest.fixture(scope="module")
def db():
    return build_xmark_db(SCALE)


@pytest.mark.parametrize("exp_id", ("q6", "q7", "q15"))
def test_calibration_off_is_free(db, exp_id, record_result):
    """``calibration=False`` session == bare ``Database.execute``: same
    answer, same simulated clock, same counters, no store allocated."""
    session = db.session(options=OFF)
    assert session.calibration is None
    via_session, wall_off = run_query_timed_session(session, db, exp_id)
    bare = db.execute(QUERY_BY_EXP[exp_id], "xmark", plan="auto", options=OFF)
    assert _outcome(via_session) == _outcome(bare)
    assert via_session.total_time == bare.total_time
    assert via_session.stats.as_dict() == bare.stats.as_dict()
    record_result(
        "ablation_calibration",
        query=exp_id,
        mode="off",
        total=via_session.total_time,
        wall=wall_off,
    )


@pytest.mark.parametrize("exp_id", ("q6", "q7", "q15"))
def test_calibration_on_first_run_bit_identical(db, exp_id, record_result):
    """An empty store defers to the estimator, so the first run with
    calibration on is bit-identical to calibration off — the feature
    only changes behaviour once measurements exist."""
    on_session = db.session(options=ON)
    assert on_session.calibration is not None
    assert on_session.calibration.observations == 0
    on_result, wall_on = run_query_timed_session(on_session, db, exp_id)
    off_result = db.execute(QUERY_BY_EXP[exp_id], "xmark", plan="auto", options=OFF)
    assert _outcome(on_result) == _outcome(off_result)
    assert on_result.total_time == off_result.total_time
    assert on_result.stats.as_dict() == off_result.stats.as_dict()
    record_result(
        "ablation_calibration",
        query=exp_id,
        mode="on",
        total=on_result.total_time,
        wall=wall_on,
    )


def test_calibration_on_observes_single_path_runs(db):
    """The store fills from clean (cold, single-path) runs only — a
    forced family deposits its timing, so AUTO later has real data."""
    session = db.session(options=ON)
    store = session.calibration
    session.execute(QUERY_BY_EXP["q15"], "xmark", plan="xscan", options=ON)
    session.execute(QUERY_BY_EXP["q15"], "xmark", plan="xschedule", options=ON)
    assert store.observations == 2
    # q7 is multi-path: its total is shared across three leaves and must
    # not be attributed to any one shape
    session.execute(QUERY_BY_EXP["q7"], "xmark", plan="xscan", options=ON)
    assert store.observations == 2


def run_query_timed_session(session, db, exp_id):
    """Cold session execute with wall-clock, mirroring harness idiom."""
    import time

    t0 = time.perf_counter()
    result = session.execute(QUERY_BY_EXP[exp_id], "xmark", plan="auto")
    return result, time.perf_counter() - t0
