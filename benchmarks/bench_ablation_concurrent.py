"""Ablation: concurrent queries sharing the asynchronous I/O subsystem.

Paper outlook: "We also expect concurrent queries to strongly benefit
from asynchronous I/O, as scheduling decisions can be made based on more
pending requests."  This bench runs the same pair of queries serially
(independent cold runs) and concurrently (shared disk queue + buffer),
under both a reordering controller and FIFO.
"""

import pytest

from repro import Database, ImportOptions, SchedulingPolicy
from repro.algebra.concurrent import run_concurrent
from repro.xmark import Q6_PRIME, generate_xmark
from harness import bench_seed, run_query

SCALE = 0.5
PAIR = [
    ("count(/site/regions//item)", "xmark", "xschedule"),
    ("count(/site//annotation)", "xmark", "xschedule"),
]

_cache: dict[SchedulingPolicy, Database] = {}


def db_with_policy(policy: SchedulingPolicy) -> Database:
    if policy not in _cache:
        seed = bench_seed()
        db = Database(page_size=8192, buffer_pages=256, disk_policy=policy)
        tree = generate_xmark(scale=SCALE, tags=db.tags, seed=seed)
        db.add_tree(tree, "xmark", ImportOptions(fragmentation=1.0, seed=seed))
        _cache[policy] = db
    return _cache[policy]


@pytest.mark.parametrize(
    "mode,policy",
    [
        ("serial", SchedulingPolicy.SSTF),
        ("concurrent", SchedulingPolicy.SSTF),
        ("concurrent", SchedulingPolicy.FIFO),
    ],
    ids=["serial-sstf", "concurrent-sstf", "concurrent-fifo"],
)
def test_concurrent_pair(benchmark, record_result, mode, policy):
    db = db_with_policy(policy)

    def run():
        if mode == "serial":
            return sum(db.execute(q, doc=d, plan=p).total_time for q, d, p in PAIR)
        return run_concurrent(db, PAIR).total_time

    total = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "ablation_concurrent", mode=mode, policy=policy.value, total=float(total)
    )


def test_concurrency_benefit_requires_reordering(benchmark):
    def run_all():
        serial = sum(
            db_with_policy(SchedulingPolicy.SSTF).execute(q, doc=d, plan=p).total_time
            for q, d, p in PAIR
        )
        together = run_concurrent(db_with_policy(SchedulingPolicy.SSTF), PAIR).total_time
        return serial, together

    serial, together = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert together < serial
