"""Ablation: the path-summary index — refute, rewrite, price, prune.

Three claims (the path-summary contract, docs/storage.md and
docs/simulation.md):

* the rewrite pass is *invisible* in the results: every paper query
  under every physical plan returns bit-identical values with the
  summary on and off — refutation only ever removes provably empty
  paths, ``//``-expansion only ever replaces a step list with an
  equivalent one, and postings only ever skip clusters that hold no
  candidate for any step;
* refuted queries short-circuit *completely*: a location path the
  summary proves empty finishes without requesting a single page,
  visiting a single cluster, or advancing the simulated clock;
* the flag costs nothing when off: ``EvalOptions(pathsummary=False)``
  produces the same simulated timings and counters as a store that has
  no path summary at all (the pre-summary engine), and with the summary
  on, simulated time never regresses on any point of the paper grid.
"""

import pytest

from repro import Database, EvalOptions
from harness import QUERY_BY_EXP, run_query

SCALE = 0.1
PLANS = ("simple", "xschedule", "xscan", "xscan-shared")
OFF = EvalOptions(pathsummary=False)

#: absent on every XMark document: ``site`` has no ``nowhere`` child,
#: so the summary refutes the path at its second step
REFUTED_QUERY = "/site/nowhere/child"


def _shared_store_db(base):
    return Database(
        page_size=base.store.segment.page_size,
        buffer_pages=base.buffer_pages,
        store=base.store,
    )


def _outcome(result):
    if result.value is not None:
        return result.value
    return tuple(result.nodes)


@pytest.mark.parametrize("plan", PLANS)
@pytest.mark.parametrize("exp_id", ("q6", "q7", "q15"))
def test_pathsummary_results_bit_identical(xmark_store, exp_id, plan):
    """Refute/rewrite/prune on vs off: same answer, never more I/O."""
    db = xmark_store(SCALE)
    on = run_query(db, QUERY_BY_EXP[exp_id], plan)
    off = run_query(db, QUERY_BY_EXP[exp_id], plan, options=OFF)
    assert _outcome(on) == _outcome(off)
    assert on.stats.pages_requested <= off.stats.pages_requested
    assert off.stats.paths_refuted == 0
    assert off.stats.pathsummary_clusters_pruned == 0
    assert off.stats.pathsummary_entries_pruned == 0


@pytest.mark.parametrize("plan", PLANS + ("auto",))
def test_refuted_query_touches_nothing(xmark_store, record_result, plan):
    """A summary-refuted path is answered from the trie alone: zero
    pages requested, zero clusters visited, zero simulated time — under
    every physical plan and under AUTO."""
    db = xmark_store(SCALE)
    result = run_query(db, REFUTED_QUERY, plan)
    # without the summary the same query pays real I/O for its empty answer
    off = run_query(db, REFUTED_QUERY, plan if plan != "auto" else "xscan", options=OFF)
    record_result(
        "ablation_pathsummary",
        mode="refuted",
        plan=plan,
        total=result.total_time,
        off_total=off.total_time,
        pages=float(result.stats.pages_requested),
    )
    assert result.nodes == []
    assert result.stats.paths_refuted == 1
    assert result.stats.pages_requested == 0
    assert result.stats.clusters_visited == 0
    assert result.total_time == 0.0
    assert _outcome(off) == _outcome(result)
    assert off.stats.pages_requested > 0


@pytest.mark.parametrize("plan", ("xschedule", "xscan"))
@pytest.mark.parametrize("exp_id", ("q6", "q7", "q15"))
def test_pathsummary_never_regresses_simulated_time(
    xmark_store, record_result, exp_id, plan
):
    """The grid of Figures 9-11: on the fully fragmented benchmark
    layout the postings filter composes with the synopsis skip planner,
    and the whole-query rewrite only fires behind its cost gate — so
    simulated time never regresses on any (query, plan) point."""
    db = xmark_store(SCALE)
    on = run_query(db, QUERY_BY_EXP[exp_id], plan)
    off = run_query(db, QUERY_BY_EXP[exp_id], plan, options=OFF)
    record_result(
        "ablation_pathsummary",
        mode=f"grid:{exp_id}",
        plan=plan,
        total=on.total_time,
        off_total=off.total_time,
        pages=float(on.stats.pages_requested),
    )
    assert on.total_time <= off.total_time
    assert on.cpu_time <= off.cpu_time


def test_pathsummary_off_is_free(xmark_store):
    """``pathsummary=False`` must behave exactly like a store that never
    collected a summary: identical simulated physics, tick for tick."""
    base = xmark_store(SCALE)
    flagged = run_query(base, QUERY_BY_EXP["q6"], "xscan", options=OFF)

    bare_db = _shared_store_db(base)
    doc = bare_db.document("xmark")
    saved = doc.pathsummary
    doc.pathsummary = None  # the pre-summary engine: nothing to consult
    try:
        bare = run_query(bare_db, QUERY_BY_EXP["q6"], "xscan")
    finally:
        doc.pathsummary = saved
    assert _outcome(flagged) == _outcome(bare)
    assert flagged.total_time == bare.total_time
    assert flagged.stats.as_dict() == bare.stats.as_dict()


@pytest.mark.parametrize("plan", ("xschedule", "xscan"))
def test_pathsummary_consultation_charges_no_simulated_time(xmark_store, plan):
    """The summary is planning metadata: evaluating the trie, expanding
    steps and filtering postings are all free on the simulated clock, so
    CPU time can only go *down* (fewer entries processed), never up."""
    db = xmark_store(SCALE)
    on = run_query(db, QUERY_BY_EXP["q15"], plan)
    off = run_query(db, QUERY_BY_EXP["q15"], plan, options=OFF)
    assert on.cpu_time <= off.cpu_time
