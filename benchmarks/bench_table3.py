"""Table 3: total execution time and CPU usage at XMark scale factor 1.

Reproduces the paper's breakdown: CPU fractions around 10-25% for Simple,
slightly higher for XSchedule (same CPU over a shorter total), and
60-100% for XScan (CPU-bound scan).  Simple and XSchedule must have
nearly identical *absolute* CPU times — the paper stresses that the
XAssembly bookkeeping overhead is minimal.
"""

import pytest

from harness import PAPER_QUERIES, PLANS, run_query


@pytest.mark.parametrize("plan", PLANS)
@pytest.mark.parametrize("exp_id,label,query", PAPER_QUERIES)
def test_table3(benchmark, xmark_store, record_result, plan, exp_id, label, query):
    db = xmark_store(1.0)
    result = benchmark.pedantic(lambda: run_query(db, query, plan), rounds=1, iterations=1)
    record_result(
        "table3", query=exp_id, plan=plan, total=result.total_time, cpu=result.cpu_time
    )
    benchmark.extra_info["simulated_total_s"] = result.total_time
    benchmark.extra_info["simulated_cpu_s"] = result.cpu_time
    assert result.total_time >= result.cpu_time > 0


def test_table3_cpu_parity_simple_vs_xschedule(xmark_store, benchmark):
    """Paper: 'very similar CPU times for XSchedule and the Simple
    approach in all queries'."""
    db = xmark_store(1.0)

    def run_both():
        return [
            (run_query(db, q, "simple").cpu_time, run_query(db, q, "xschedule").cpu_time)
            for _, _, q in PAPER_QUERIES
        ]

    pairs = benchmark.pedantic(run_both, rounds=1, iterations=1)
    for simple_cpu, xschedule_cpu in pairs:
        assert xschedule_cpu < 1.6 * simple_cpu
        assert simple_cpu < 1.6 * xschedule_cpu


def test_table3_xscan_is_cpu_bound(xmark_store, benchmark):
    db = xmark_store(1.0)

    def run_scan():
        return [run_query(db, q, "xscan") for _, _, q in PAPER_QUERIES]

    results = benchmark.pedantic(run_scan, rounds=1, iterations=1)
    for result in results:
        assert result.cpu_fraction > 0.5
