"""Mixed read/write batches: queries interleaved with durable updates.

Two claims:

* a batch with updates interleaved still evaluates its query runs
  through the shared-I/O machinery — the query results and the
  simulated query cost stay well-formed at every write ratio, and every
  applied update is durably acknowledged in the WAL (``last_lsn`` equals
  the number of updates);
* cost-aware synopsis pruning *survives* WAL-managed updates: the
  incremental repair keeps the per-cluster synopsis alive, while the
  bare update path (no WAL) invalidates it and the next columnar scan
  loses all cluster skips.
"""

import pytest

from repro import Database, DeleteOp, InsertOp, SetValueOp
from repro.storage.store import check_document, recollect_synopsis
from repro.storage.update import insert_node
from repro.storage.wal import recover_store
from harness import build_xmark_db, run_query

SCALE = 0.1
QUERIES = (
    "count(//keyword)",
    "count(//item)",
    "count(//listitem)",
    "count(//bold)",
)
WRITE_RATIOS = (0.0, 0.25, 0.5)


def _mutable_db(tmp_path, name):
    """A private store (the shared cache must stay read-only) under WAL."""
    db = build_xmark_db(SCALE, buffer_pages=256)
    db.attach_wal(str(tmp_path / f"{name}.rpro"))
    return db


def _mixed_batch(db, ratio):
    """Interleave queries with updates at the requested write ratio.

    NodeID-referencing operations (set-value, delete) are placed before
    the inserts: inserts may relocate records off full pages, and the
    batch applies operations strictly in order.
    """
    n_queries = len(QUERIES)
    n_updates = round(ratio * n_queries / (1.0 - ratio)) if ratio else 0
    updates = []
    if n_updates >= 1:
        text = db.execute("//keyword/text()", doc="xmark", plan="simple").nodes[0]
        old = db.node_info(text)[2]
        updates.append(SetValueOp(nid=text, value="x" * len(old)))
    if n_updates >= 2:
        victim = db.execute("//mail", doc="xmark", plan="simple").nodes[0]
        updates.append(DeleteOp(nid=victim))
    root = db.execute("/site", doc="xmark", plan="simple").nodes[0]
    while len(updates) < n_updates:
        updates.append(
            InsertOp(parent=root, position=0, tag_name=f"rw{len(updates)}")
        )
    # queries first and last, updates woven between them
    batch = list(QUERIES)
    for offset, op in enumerate(updates):
        batch.insert(1 + 2 * offset if 1 + 2 * offset < len(batch) else len(batch) - 1, op)
    return batch, n_updates


@pytest.mark.parametrize("ratio", WRITE_RATIOS)
def test_mixed_batch_write_ratios(benchmark, record_result, tmp_path, ratio):
    db = _mutable_db(tmp_path, f"ratio{ratio}")
    session = db.session(warm=True)
    batch, n_updates = _mixed_batch(db, ratio)
    outcome = benchmark.pedantic(
        lambda: session.run_batch(batch, doc="xmark"), rounds=1, iterations=1
    )
    assert outcome.updates == n_updates
    queries = [r for r in outcome.results if r.plan_kinds != []]
    assert len(queries) == len(QUERIES)
    assert all(r.value is not None for r in queries)
    check_document(db.store, db.store.document("xmark"))
    # every applied update was durably acknowledged before the batch returned
    store, report = recover_store(db.wal.store_path)
    assert report.last_lsn == n_updates
    record_result(
        "mixed_rw",
        ratio=ratio,
        requests=float(len(batch)),
        updates=float(n_updates),
        total=outcome.total_time,
        io_per_query=outcome.stats.io_requests / len(QUERIES),
    )


def test_pruning_survives_wal_managed_updates(benchmark, record_result, tmp_path):
    """Synopsis skips before == after a WAL-managed update; the bare
    update path loses them all.

    Uses the document-order layout (``fragmentation=0.0``): with records
    fully dispersed every cluster holds every tag and nothing is
    prunable, so the dispersed layout cannot witness this claim.
    """
    managed = build_xmark_db(SCALE, buffer_pages=256, fragmentation=0.0)
    managed.attach_wal(str(tmp_path / "managed.rpro"))
    doc = managed.store.document("xmark")
    if doc.synopsis is None:
        recollect_synopsis(managed.store, doc)
    before = run_query(managed, "count(//mail)", "xscan")
    assert before.stats.synopsis_clusters_pruned > 0

    root = managed.execute("/site", doc="xmark", plan="simple").nodes[0]
    managed.wal.insert("xmark", root, 0, "probe")
    after = benchmark.pedantic(
        lambda: run_query(managed, "count(//mail)", "xscan"),
        rounds=1,
        iterations=1,
    )
    assert after.stats.synopsis_clusters_pruned > 0  # repair kept it alive
    assert doc.synopsis == recollect_synopsis(
        managed.store, managed.store.document("xmark")
    )

    bare = build_xmark_db(SCALE, buffer_pages=256, fragmentation=0.0)
    bare_doc = bare.store.document("xmark")
    recollect_synopsis(bare.store, bare_doc)
    bare_root = bare.execute("/site", doc="xmark", plan="simple").nodes[0]
    insert_node(bare.store, bare_doc, bare_root, 0, "probe")
    assert bare_doc.synopsis is None  # invalidation-only: pruning is gone
    lost = run_query(bare, "count(//mail)", "xscan")
    assert lost.stats.synopsis_clusters_pruned == 0
    record_result(
        "mixed_rw_pruning",
        managed=float(after.stats.synopsis_clusters_pruned),
        invalidated=float(lost.stats.synopsis_clusters_pruned),
        managed_io=float(after.stats.io_requests),
        invalidated_io=float(lost.stats.io_requests),
    )
