"""Ablation: the ``speculative`` flag of XSchedule (paper Sec. 5.4.4).

Speculation guarantees each cluster is visited at most once, at the cost
of generating left-incomplete instances per border.  The benchmarked
plans in the paper run with ``speculative = false``; this ablation
quantifies the trade-off on both a revisit-prone query (Q7) and the
selective Q15.
"""

import pytest

from repro import EvalOptions
from harness import QUERY_BY_EXP, run_query

SCALE = 0.5


@pytest.mark.parametrize("exp_id", ["q7", "q15"])
@pytest.mark.parametrize("speculative", [False, True], ids=["plain", "speculative"])
def test_speculative_flag(benchmark, xmark_store, record_result, exp_id, speculative):
    db = xmark_store(SCALE)
    result = benchmark.pedantic(
        lambda: run_query(
            db, QUERY_BY_EXP[exp_id], "xschedule", EvalOptions(speculative=speculative)
        ),
        rounds=1,
        iterations=1,
    )
    record_result(
        "ablation_speculative",
        query=exp_id,
        speculative=str(speculative),
        total=result.total_time,
        cpu=result.cpu_time,
        pages=float(result.stats.pages_read),
        clusters=float(result.stats.clusters_visited),
        spec_instances=float(result.stats.speculative_instances),
    )


def test_speculation_never_increases_cluster_visits(xmark_store, benchmark):
    db = xmark_store(SCALE)

    def run_pair():
        plain = run_query(db, QUERY_BY_EXP["q7"], "xschedule", EvalOptions(speculative=False))
        spec = run_query(db, QUERY_BY_EXP["q7"], "xschedule", EvalOptions(speculative=True))
        return plain, spec

    plain, spec = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert spec.stats.clusters_visited <= plain.stats.clusters_visited
    assert spec.value == plain.value
