"""Ablation: XSchedule's queue minimum fill ``k`` (paper Sec. 5.3.4).

The paper claims "since location paths are typically evaluated on a
single context node, the choice of k does not matter much" (their default
is 100).  With a single context the queue is fed by discovered crossings
rather than by the producer, so sweeping k should barely move the needle.
"""

import pytest

from repro import EvalOptions
from harness import QUERY_BY_EXP, run_query

K_VALUES = (1, 10, 100, 1000)
SCALE = 0.5


@pytest.mark.parametrize("k", K_VALUES)
def test_k_sweep(benchmark, xmark_store, record_result, k):
    db = xmark_store(SCALE)
    result = benchmark.pedantic(
        lambda: run_query(db, QUERY_BY_EXP["q6"], "xschedule", EvalOptions(k_min_queue=k)),
        rounds=1,
        iterations=1,
    )
    record_result("ablation_k", k=k, total=result.total_time, cpu=result.cpu_time)
    assert result.value > 0


def test_k_choice_does_not_matter_much(xmark_store, benchmark):
    db = xmark_store(SCALE)

    def sweep():
        return [
            run_query(db, QUERY_BY_EXP["q6"], "xschedule", EvalOptions(k_min_queue=k)).total_time
            for k in (1, 1000)
        ]

    low, high = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert abs(low - high) / min(low, high) < 0.25
