"""Ablation: asynchronous readahead for XScan.

The paper's setup used O_DIRECT, which disables OS readahead; their XScan
therefore pays its scan I/O serially with CPU work (62-77% CPU in Table
3).  XScan supports an asynchronous prefetch window, which overlaps the
scan's transfer time with speculation CPU — an "extension" run the paper
could not do but our simulation can.
"""

import pytest

from repro import EvalOptions
from harness import QUERY_BY_EXP, run_query

SCALE = 0.5
WINDOWS = (0, 2, 8, 32)


@pytest.mark.parametrize("window", WINDOWS, ids=lambda w: f"readahead={w}")
def test_readahead_sweep(benchmark, xmark_store, record_result, window):
    db = xmark_store(SCALE)
    result = benchmark.pedantic(
        lambda: run_query(db, QUERY_BY_EXP["q7"], "xscan", EvalOptions(scan_readahead=window)),
        rounds=1,
        iterations=1,
    )
    record_result(
        "ablation_readahead",
        window=float(window),
        total=result.total_time,
        cpu=result.cpu_time,
        io_wait=result.io_wait,
    )
    assert result.value > 0


def test_readahead_overlaps_io(xmark_store, benchmark):
    db = xmark_store(SCALE)

    def run_pair():
        serial = run_query(db, QUERY_BY_EXP["q7"], "xscan", EvalOptions(scan_readahead=0))
        ahead = run_query(db, QUERY_BY_EXP["q7"], "xscan", EvalOptions(scan_readahead=8))
        return serial, ahead

    serial, ahead = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert ahead.value == serial.value
    assert ahead.io_wait < serial.io_wait
    assert ahead.total_time < serial.total_time
