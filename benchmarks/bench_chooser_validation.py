"""Chooser validation: measured-vs-predicted replay of the AUTO decision.

The paper's outlook chooser (:mod:`repro.xpath.estimate`) is only as
good as its cost model, and mispriced decisions land directly on query
latency (Q15 shows XScan losing ~8x when picked wrongly).  This bench
replays the XMark query grid — every paper query at every (layout,
buffer) point — and scores every AUTO decision against the simulator:

* **baseline** phase: the raw estimator.  Records per-decision regret
  (AUTO's simulated total minus the best family's) and the Q-Error of
  the per-family cost predictions;
* **calibrated** phase: the same grid re-resolved through a
  :class:`~repro.exec.calibration.CalibrationStore` seeded from the
  baseline's forced runs and carrying a fitted
  :class:`~repro.sim.costmodel.ChooserCostModel`.

The headline claim — calibration only ever helps — is asserted here:
the calibrated win-rate and total regret must be no worse than the
baseline's, strictly better whenever the baseline left room, and the
calibrated win-rate must clear the checked-in floor in
``chooser_baseline.json`` (the CI regression gate).

A second experiment audits the random-I/O **seek model**: the measured
mean seek distance of XSchedule runs (``stats.seek_distance / seeks``)
against the elevator-sweep hop the chooser now prices and the retired
fixed ``n_pages // 3`` guess it replaced.

Results land in ``BENCH_chooser_validation.json`` /
``BENCH_chooser_seek_audit.json`` (and a summary table) via the shared
recording infrastructure in ``conftest.py``.
"""

import json
import os

import pytest

from harness import build_xmark_db
from repro.xmark import Q6_PRIME, Q7, Q15
from repro.xpath.validate import (
    ValidationReport,
    audit_seek_model,
    build_store,
    validate_many,
)

QUERIES = (("q6", Q6_PRIME), ("q7", Q7), ("q15", Q15))

#: the replay grid: both layout extremes x a buffer sweep that crosses
#: the buffer-to-document ratio of 1 at sf 0.1 (~150 pages)
SCALE = 0.1
FRAGMENTATIONS = (0.0, 1.0)
BUFFERS = (64, 256)

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "chooser_baseline.json")


def _grid_points():
    points = []
    for fragmentation in FRAGMENTATIONS:
        for buffers in BUFFERS:
            db = build_xmark_db(
                SCALE, buffer_pages=buffers, fragmentation=fragmentation
            )
            for query_id, query in QUERIES:
                points.append(
                    (
                        db,
                        query,
                        {
                            "query_id": query_id,
                            "scale": SCALE,
                            "fragmentation": fragmentation,
                            "buffers": buffers,
                        },
                    )
                )
    return points


@pytest.fixture(scope="module")
def grid_points():
    return _grid_points()


@pytest.fixture(scope="module")
def reports(grid_points):
    """(baseline report, calibrated report, fitted store)."""
    baseline = validate_many(grid_points)
    store = build_store(baseline.decisions)
    calibrated = validate_many(grid_points, advisor=store)
    return baseline, calibrated, store


def _record_phase(record_result, phase: str, report: ValidationReport) -> None:
    for decision in report.decisions:
        meta = decision.meta
        record_result(
            "chooser_validation",
            phase=phase,
            query=str(meta["query_id"]),
            fragmentation=float(meta["fragmentation"]),  # type: ignore[arg-type]
            buffers=float(meta["buffers"]),  # type: ignore[arg-type]
            auto=("+".join(sorted({c for c, _ in decision.choices}))),
            source=("+".join(sorted({s for _, s in decision.choices}))),
            auto_total=decision.auto_total,
            best_plan=decision.best_plan,
            best_total=decision.best_total,
            regret=decision.regret,
            win=float(decision.win),
        )
    q_err = report.q_error_summary()
    record_result(
        "chooser_validation_summary",
        phase=phase,
        points=float(len(report.decisions)),
        wins=float(report.wins),
        win_rate=report.win_rate,
        total_regret=report.total_regret,
        qerr_xscan=q_err.get("xscan", {}).get("mean", 0.0),
        qerr_xschedule=q_err.get("xschedule", {}).get("mean", 0.0),
    )


def test_calibration_improves_auto(reports, record_result):
    """Win-rate and regret: calibrated >= baseline, strictly better when
    the baseline mispicked anywhere."""
    baseline, calibrated, store = reports
    _record_phase(record_result, "baseline", baseline)
    _record_phase(record_result, "calibrated", calibrated)
    assert store.model is not None  # the fit actually ran
    # persist the fitted constants alongside the regret report
    record_result("chooser_fitted_model", **store.model.as_dict())
    assert calibrated.win_rate >= baseline.win_rate
    assert calibrated.total_regret <= baseline.total_regret
    if baseline.win_rate < 1.0:
        assert (
            calibrated.win_rate > baseline.win_rate
            or calibrated.total_regret < baseline.total_regret
        )


def test_calibration_improves_q_error(reports):
    """The fitted CPU constants must tighten the cost predictions: mean
    Q-Error per family no worse, and better overall."""
    baseline, calibrated, _ = reports
    base_q = baseline.q_error_summary()
    cal_q = calibrated.q_error_summary()
    for family in ("xscan", "xschedule"):
        assert cal_q[family]["mean"] <= base_q[family]["mean"] * (1.0 + 1e-9)
    base_mean = sum(v["mean"] for v in base_q.values())
    cal_mean = sum(v["mean"] for v in cal_q.values())
    assert cal_mean < base_mean


def test_calibrated_win_rate_clears_checked_in_floor(reports):
    """The CI regression gate: the shipping configuration (calibration
    on) must keep its win-rate above the committed baseline."""
    _, calibrated, _ = reports
    with open(BASELINE_PATH, encoding="utf-8") as handle:
        floor = json.load(handle)["min_win_rate"]
    assert calibrated.win_rate >= floor


def test_measured_overrides_win_every_single_path_point(reports):
    """Once both families are observed for a shape, the measured argmin
    decides — single-path decisions in the calibrated pass must all win
    (multi-path queries have no attributable per-leaf timings and stay
    estimator-priced)."""
    _, calibrated, _ = reports
    for decision in calibrated.decisions:
        if len(decision.choices) == 1:
            assert decision.choices[0][1] == "measured"
            assert decision.win, decision.meta


def test_seek_model_audit(record_result):
    """The elevator-sweep model must price random I/O at least as well
    as the retired ``n_pages // 3`` guess in *service-time* terms — the
    quantity the chooser compares — aggregated over both layouts, and
    never be badly wrong at any point (satellite audit of the chooser
    bugfix).  Distance errors are recorded too: the seek curve is
    concave, so a model can look worse in pages yet better in seconds.
    """
    time_errors: list[tuple[float, float]] = []
    for fragmentation in FRAGMENTATIONS:
        db = build_xmark_db(SCALE, fragmentation=fragmentation)
        for query_id, query in QUERIES:
            row = audit_seek_model(
                db, query, meta={"query_id": query_id, "fragmentation": fragmentation}
            )
            payload = row.as_dict()
            record_result(
                "chooser_seek_audit",
                query=query_id,
                fragmentation=float(fragmentation),
                n_pages=float(row.n_pages),
                visited=row.visited_pages,
                measured_hop=row.measured_mean_seek,
                predicted_hop=row.predicted_hop,
                legacy_hop=row.legacy_hop,
                predicted_terr=payload["predicted_time_error"],
                legacy_terr=payload["legacy_time_error"],
            )
            if row.measured_seeks:
                time_errors.append(
                    (payload["predicted_time_error"], payload["legacy_time_error"])
                )
                # sanity bound: the priced unit must stay in the right
                # ballpark at every single grid point
                assert payload["predicted_time_error"] < 2.0
    assert time_errors
    mean_predicted = sum(p for p, _ in time_errors) / len(time_errors)
    mean_legacy = sum(l for _, l in time_errors) / len(time_errors)
    assert mean_predicted <= mean_legacy * (1.0 + 1e-9)
