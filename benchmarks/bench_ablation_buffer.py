"""Ablation: buffer size sensitivity (paper Sec. 6.1 configuration).

The paper runs with a 1000-page buffer against documents of up to ~25k
pages.  Sweeping the buffer across the document size shows where the
Simple plan's revisits start hitting disk and how insensitive the scan
plan is to buffer capacity.
"""

import pytest

from repro import Database, ImportOptions
from repro.xmark import generate_xmark
from harness import QUERY_BY_EXP, bench_seed, run_query

SCALE = 0.5
BUFFER_SIZES = (64, 256, 1024)

_cache: dict[int, Database] = {}


def db_with_buffer(buffer_pages: int) -> Database:
    if buffer_pages not in _cache:
        seed = bench_seed()
        db = Database(page_size=8192, buffer_pages=buffer_pages)
        tree = generate_xmark(scale=SCALE, tags=db.tags, seed=seed)
        db.add_tree(tree, "xmark", ImportOptions(fragmentation=1.0, seed=seed))
        _cache[buffer_pages] = db
    return _cache[buffer_pages]


@pytest.mark.parametrize("plan", ["simple", "xscan"])
@pytest.mark.parametrize("buffer_pages", BUFFER_SIZES)
def test_buffer_sweep(benchmark, record_result, plan, buffer_pages):
    db = db_with_buffer(buffer_pages)
    result = benchmark.pedantic(
        lambda: run_query(db, QUERY_BY_EXP["q7"], plan), rounds=1, iterations=1
    )
    record_result(
        "ablation_buffer",
        plan=plan,
        buffer=float(buffer_pages),
        total=result.total_time,
        pages=float(result.stats.pages_read),
        evictions=float(result.stats.evictions),
    )


def test_larger_buffer_helps_simple_not_scan(benchmark):
    def run_matrix():
        return {
            (plan, pages): run_query(db_with_buffer(pages), QUERY_BY_EXP["q7"], plan)
            for plan in ("simple", "xscan")
            for pages in (64, 1024)
        }

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    assert results[("simple", 1024)].total_time < results[("simple", 64)].total_time
    # the scan reads each page exactly once per pass: capacity-insensitive
    scan_small = results[("xscan", 64)].total_time
    scan_large = results[("xscan", 1024)].total_time
    assert abs(scan_small - scan_large) / scan_large < 0.35
