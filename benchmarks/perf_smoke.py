"""Wall-clock perf smoke: Figure 9 (Q6') at sf=0.1 vs a checked-in baseline.

The simulated clock catches regressions in the modelled physics; this
script catches regressions in the *implementation* — an accidentally
quadratic loop or a de-optimised hot path shows up as wall-clock time
even when the simulated totals stay exact.

Usage::

    python benchmarks/perf_smoke.py                 # compare to baseline
    python benchmarks/perf_smoke.py --write-baseline  # refresh it

Each plan runs ``ROUNDS`` times and the fastest round counts (the
minimum is the standard noise-robust statistic for wall-clock smoke
tests).  The run fails if any plan exceeds ``TOLERANCE`` times its
baseline.  The baseline (``benchmarks/perf_baseline.json``) is
deliberately generous — it encodes "not catastrophically slower", not
"exactly as fast as the author's laptop".
"""

from __future__ import annotations

import json
import os
import sys
import time

sys.path.insert(0, os.path.dirname(__file__))

from harness import PLANS, QUERY_BY_EXP, build_xmark_db, run_query

SCALE = 0.1
ROUNDS = 3
TOLERANCE = 2.0  # fail on >2x wall-clock regression
BASELINE_PATH = os.path.join(os.path.dirname(__file__), "perf_baseline.json")


def measure() -> dict[str, float]:
    db = build_xmark_db(SCALE)
    best: dict[str, float] = {}
    for plan in PLANS:
        times = []
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            result = run_query(db, QUERY_BY_EXP["q6"], plan)
            times.append(time.perf_counter() - t0)
            assert result.value is not None and result.value > 0
        best[plan] = min(times)
    best["total"] = sum(best[plan] for plan in PLANS)
    return best


def main(argv: list[str]) -> int:
    measured = measure()
    if "--write-baseline" in argv:
        with open(BASELINE_PATH, "w", encoding="utf-8") as out:
            json.dump(
                {"scale": SCALE, "rounds": ROUNDS, "wall_seconds": measured},
                out,
                indent=2,
                sort_keys=True,
            )
            out.write("\n")
        print(f"baseline written to {BASELINE_PATH}")
        return 0

    with open(BASELINE_PATH, encoding="utf-8") as inp:
        baseline = json.load(inp)["wall_seconds"]

    failed = False
    print(f"fig9 Q6' sf={SCALE}, best of {ROUNDS} rounds (wall seconds):")
    for key in (*PLANS, "total"):
        limit = TOLERANCE * baseline[key]
        status = "ok" if measured[key] <= limit else "REGRESSION"
        failed |= status != "ok"
        print(
            f"  {key:>10s}  measured={measured[key]:.4f}  "
            f"baseline={baseline[key]:.4f}  limit={limit:.4f}  {status}"
        )
    if failed:
        print(f"FAIL: wall-clock exceeded {TOLERANCE}x the checked-in baseline")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
