"""Ablation: fault injection — hook overhead and recovery cost.

Two claims:

* with no fault plan installed the injection hook is free — the same
  query on the same store produces byte-identical simulated timings, so
  the paper figures (9-11) are unaffected by this layer;
* under each shipped recoverable profile every answer is still correct,
  and the recovery overhead (retries, backoff, re-serviced requests) is
  billed honestly on the simulated clock.
"""

import pytest

from repro import PROFILES, Database
from harness import QUERY_BY_EXP, run_query

SCALE = 0.25
FAULTY = ("transient-errors", "latency-spikes", "lost-requests", "mixed")


def _shared_store_db(base, profile_name=None):
    faults = PROFILES[profile_name] if profile_name else None
    return Database(
        page_size=base.store.segment.page_size,
        buffer_pages=base.buffer_pages,
        store=base.store,
        faults=faults,
    )


def test_fault_hook_is_free_when_disabled(benchmark, xmark_store, record_result):
    """No fault plan installed => identical physics, to the last tick."""
    base = xmark_store(SCALE)
    vanilla = run_query(base, QUERY_BY_EXP["q6"], "xschedule")
    hooked_db = _shared_store_db(base)  # same stack, faults path compiled in
    hooked = benchmark.pedantic(
        lambda: run_query(hooked_db, QUERY_BY_EXP["q6"], "xschedule"),
        rounds=1,
        iterations=1,
    )
    record_result(
        "ablation_faults",
        profile="none",
        total=hooked.total_time,
        overhead=hooked.total_time / vanilla.total_time,
        retries=0.0,
        backoff=0.0,
    )
    assert hooked.value == vanilla.value
    assert hooked.total_time == vanilla.total_time
    assert hooked.stats.io_errors == 0
    assert hooked.stats.timeouts == 0
    assert hooked.stats.slow_services == 0


@pytest.mark.parametrize("profile_name", FAULTY)
def test_fault_recovery_cost(benchmark, xmark_store, record_result, profile_name):
    base = xmark_store(SCALE)
    baseline = run_query(base, QUERY_BY_EXP["q6"], "xschedule")
    db = _shared_store_db(base, profile_name)
    result = benchmark.pedantic(
        lambda: run_query(db, QUERY_BY_EXP["q6"], "xschedule"),
        rounds=1,
        iterations=1,
    )
    record_result(
        "ablation_faults",
        profile=profile_name,
        total=result.total_time,
        overhead=result.total_time / baseline.total_time,
        retries=float(result.stats.retries),
        backoff=result.stats.backoff_wait,
    )
    assert result.value == baseline.value  # degraded, never wrong
    stats = result.stats
    assert stats.io_errors + stats.timeouts + stats.slow_services > 0
