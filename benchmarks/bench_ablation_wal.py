"""Ablation: write-ahead logging — query-path overhead and repair cost.

Three claims:

* the WAL never touches the query path: the same query on the same
  store produces byte-identical simulated timings whether or not a log
  is attached, so the paper figures (9-11) are unaffected by the
  durability layer;
* pure-query batches through a WAL-attached database take the historical
  batch path unchanged — identical makespan to the last tick;
* incremental synopsis repair is equivalent to a full recollect but
  touches only the mutated pages (recovery reports the touched set, a
  small fraction of the document).
"""

from repro import Database
from repro.storage.store import recollect_synopsis
from repro.storage.wal import recover_store
from harness import QUERY_BY_EXP, build_xmark_db, run_query

SCALE = 0.25


def _shared_store_db(base):
    return Database(
        page_size=base.store.segment.page_size,
        buffer_pages=base.buffer_pages,
        store=base.store,
    )


def test_wal_is_free_on_the_query_path(
    benchmark, xmark_store, record_result, tmp_path
):
    """No log consulted during reads => identical physics, every tick."""
    base = xmark_store(SCALE)
    vanilla = run_query(base, QUERY_BY_EXP["q6"], "xschedule")
    logged_db = _shared_store_db(base)
    logged_db.attach_wal(str(tmp_path / "store.rpro"))
    logged = benchmark.pedantic(
        lambda: run_query(logged_db, QUERY_BY_EXP["q6"], "xschedule"),
        rounds=1,
        iterations=1,
    )
    record_result(
        "ablation_wal",
        mode="query-path",
        total=logged.total_time,
        overhead=logged.total_time / vanilla.total_time,
    )
    assert logged.value == vanilla.value
    assert logged.total_time == vanilla.total_time
    assert logged.cpu_time == vanilla.cpu_time
    assert logged.io_wait == vanilla.io_wait


def test_pure_query_batch_unchanged_under_wal(
    benchmark, xmark_store, record_result, tmp_path
):
    base = xmark_store(SCALE)
    batch = [QUERY_BY_EXP["q6"], QUERY_BY_EXP["q15"], "count(//keyword)"]
    plain = base.run_batch(batch, doc="xmark")
    logged_db = _shared_store_db(base)
    logged_db.attach_wal(str(tmp_path / "store.rpro"))
    logged = benchmark.pedantic(
        lambda: logged_db.run_batch(batch, doc="xmark"), rounds=1, iterations=1
    )
    record_result(
        "ablation_wal",
        mode="batch-path",
        total=logged.total_time,
        overhead=logged.total_time / plain.total_time,
    )
    assert logged.total_time == plain.total_time
    assert logged.updates == 0
    assert [r.value for r in logged.results] == [r.value for r in plain.results]


def test_incremental_repair_touches_few_pages(
    benchmark, record_result, tmp_path
):
    """Repair == recollect, but recovery only recollects touched pages."""
    db = build_xmark_db(0.1, buffer_pages=256)
    path = str(tmp_path / "store.rpro")
    db.attach_wal(path)
    root = db.execute("/site", doc="xmark", plan="simple").nodes[0]
    for i in range(4):
        db.wal.insert("xmark", root, 0, f"probe{i}")
    doc = db.store.document("xmark")
    assert doc.synopsis is not None
    assert doc.synopsis == recollect_synopsis(
        db.store, db.store.document("xmark")
    )
    store, report = benchmark.pedantic(
        lambda: recover_store(path), rounds=1, iterations=1
    )
    touched = len(report.touched_pages)
    total = len(store.document("xmark").page_nos)
    assert 0 < touched < total  # incremental, not a full sweep
    recovered_doc = store.document("xmark")
    assert recovered_doc.synopsis == recollect_synopsis(store, recovered_doc)
    record_result(
        "ablation_wal_repair",
        touched=float(touched),
        pages=float(total),
        replayed=float(report.replayed),
    )
