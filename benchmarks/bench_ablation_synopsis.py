"""Ablation: cluster-synopsis pruning — correctness, I/O savings, overhead.

Three claims (the synopsis contract, docs/storage.md):

* pruning is *invisible* in the results: every paper query under every
  physical plan returns bit-identical values with the synopsis on and
  off — the predicates only ever skip clusters that provably cannot
  contribute;
* pruning is *visible* in the physics, and only ever as an improvement:
  on the selective Q15 a document-order layout has XScan skip whole
  dead regions (every skipped cluster accounted for:
  ``pages_read + pruned == n_pages``), while on the fully fragmented
  benchmark layout the cost-aware planner streams through scattered
  prunable pages — skipping them would trade cheap transfers for
  seeks — and still wins via the skipped speculation rounds;
* the flag costs nothing when off: ``EvalOptions(synopsis=False)``
  produces the same simulated timings and counters as a store that has
  no synopsis at all (the pre-synopsis engine).
"""

import pytest

from repro import Database, EvalOptions, ImportOptions
from repro.xmark import generate_xmark
from harness import QUERY_BY_EXP, bench_seed, run_query, run_query_timed

SCALE = 0.1
PLANS = ("simple", "xschedule", "xscan", "xscan-shared")
OFF = EvalOptions(synopsis=False)


def _document_order_db(scale):
    """fragmentation=0.0: pages in cluster-creation (document) order,
    so prunable regions stay contiguous and runs clear the skip-scan
    break-even."""
    seed = bench_seed()
    db = Database(page_size=8192, buffer_pages=1000)
    tree = generate_xmark(scale=scale, tags=db.tags, seed=seed)
    db.add_tree(tree, "xmark", ImportOptions(fragmentation=0.0, seed=seed))
    return db


def _shared_store_db(base):
    return Database(
        page_size=base.store.segment.page_size,
        buffer_pages=base.buffer_pages,
        store=base.store,
    )


def _outcome(result):
    if result.value is not None:
        return result.value
    return tuple(result.nodes)


@pytest.mark.parametrize("plan", PLANS)
@pytest.mark.parametrize("exp_id", ("q6", "q7", "q15"))
def test_synopsis_results_bit_identical(xmark_store, exp_id, plan):
    """Pruning on vs off: same answer, never more I/O."""
    db = xmark_store(SCALE)
    on = run_query(db, QUERY_BY_EXP[exp_id], plan)
    off = run_query(db, QUERY_BY_EXP[exp_id], plan, options=OFF)
    assert _outcome(on) == _outcome(off)
    assert on.stats.pages_read <= off.stats.pages_read
    assert off.stats.synopsis_clusters_pruned == 0
    assert off.stats.synopsis_entries_pruned == 0


@pytest.mark.parametrize("exp_id", ("q6", "q15"))
def test_synopsis_scan_pruning_accounted(xmark_store, record_result, exp_id):
    """Every page of the document is either read or provably skipped."""
    db = xmark_store(SCALE)
    doc = db.document("xmark")
    result = run_query(db, QUERY_BY_EXP[exp_id], "xscan")
    stats = result.stats
    record_result(
        "ablation_synopsis",
        query=exp_id,
        pages=float(stats.pages_read),
        pruned=float(stats.synopsis_clusters_pruned),
        of=float(doc.n_pages),
    )
    assert stats.pages_read + stats.synopsis_clusters_pruned == doc.n_pages


def test_synopsis_skips_dead_regions_on_clustered_layout(benchmark):
    """On a document-order layout Q15's dead regions are contiguous, so
    the cost-aware planner skips whole runs of pages; simulated time and
    pages read must both strictly improve over the unpruned scan."""
    db = _document_order_db(SCALE)
    result, _ = benchmark.pedantic(
        lambda: run_query_timed(db, QUERY_BY_EXP["q15"], "xscan"),
        rounds=1,
        iterations=1,
    )
    unpruned = run_query(db, QUERY_BY_EXP["q15"], "xscan", options=OFF)
    assert tuple(result.nodes) == tuple(unpruned.nodes)
    assert result.stats.synopsis_clusters_pruned > 0
    assert result.stats.pages_read < unpruned.stats.pages_read
    assert result.total_time < unpruned.total_time


@pytest.mark.parametrize("plan", ("xschedule", "xscan"))
@pytest.mark.parametrize("exp_id", ("q6", "q7", "q15"))
def test_synopsis_never_regresses_simulated_time(xmark_store, exp_id, plan):
    """The cost-aware skip planner's contract: even on the fully
    fragmented benchmark layout, where skipping scattered pages would
    pay more in seeks than it saves in transfers, pruning never makes a
    query slower on the simulated clock."""
    db = xmark_store(SCALE)
    on = run_query(db, QUERY_BY_EXP[exp_id], plan)
    off = run_query(db, QUERY_BY_EXP[exp_id], plan, options=OFF)
    assert on.total_time <= off.total_time


def test_synopsis_off_is_free(xmark_store):
    """``synopsis=False`` must behave exactly like a store that never
    collected a synopsis: identical simulated physics, tick for tick."""
    base = xmark_store(SCALE)
    flagged = run_query(base, QUERY_BY_EXP["q6"], "xscan", options=OFF)

    bare_db = _shared_store_db(base)
    doc = bare_db.document("xmark")
    saved = doc.synopsis
    doc.synopsis = None  # the pre-synopsis engine: nothing to consult
    try:
        bare = run_query(bare_db, QUERY_BY_EXP["q6"], "xscan")
    finally:
        doc.synopsis = saved
    assert _outcome(flagged) == _outcome(bare)
    assert flagged.total_time == bare.total_time
    assert flagged.stats.as_dict() == bare.stats.as_dict()


@pytest.mark.parametrize("plan", ("xschedule", "xscan"))
def test_synopsis_consultation_charges_no_simulated_time(xmark_store, plan):
    """The synopsis is planning metadata: consulting it is free on the
    simulated clock, so CPU time can only go *down* with pruning on
    (fewer pages processed), never up."""
    db = xmark_store(SCALE)
    on = run_query(db, QUERY_BY_EXP["q15"], plan)
    off = run_query(db, QUERY_BY_EXP["q15"], plan, options=OFF)
    assert on.cpu_time <= off.cpu_time
