"""Figure 10: Q7 = three descendant counts — total time vs scale factor.

Paper shape to reproduce: XScan wins by up to ~4x over Simple and ~3x
over XSchedule (low selectivity: the sequential scan pays off);
XSchedule still beats Simple everywhere.
"""

import pytest

from conftest import bench_scales
from harness import PLANS, QUERY_BY_EXP, run_query, run_query_timed


@pytest.mark.parametrize("scale", bench_scales())
@pytest.mark.parametrize("plan", PLANS)
def test_fig10_q7(benchmark, xmark_store, record_result, scale, plan):
    db = xmark_store(scale)
    result, wall = benchmark.pedantic(
        lambda: run_query_timed(db, QUERY_BY_EXP["q7"], plan), rounds=1, iterations=1
    )
    record_result(
        "fig10_q7",
        scale=scale,
        plan=plan,
        total=result.total_time,
        cpu=result.cpu_time,
        wall=wall,
        pages_read=result.stats.pages_read,
    )
    benchmark.extra_info["simulated_total_s"] = result.total_time
    assert result.value is not None and result.value > 0


def test_fig10_shape_holds(xmark_store, benchmark):
    """On the low-selectivity Q7, the scan plan is the fastest."""
    db = xmark_store(bench_scales()[len(bench_scales()) // 2])

    def run_all():
        return {plan: run_query(db, QUERY_BY_EXP["q7"], plan) for plan in PLANS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert results["xscan"].total_time < results["xschedule"].total_time
    assert results["xschedule"].total_time < results["simple"].total_time
    # the paper's headline: up to a factor of four over Simple
    assert results["simple"].total_time / results["xscan"].total_time > 2.0
