"""Benchmark harness: workload construction, execution, and formatting.

Runnable standalone to regenerate every table and figure of the paper's
evaluation without pytest::

    python benchmarks/harness.py            # full sweep (paper scales)
    python benchmarks/harness.py 0.1 0.5    # selected scale factors

Measurement discipline mirrors the paper (Sec. 6.1): every query runs
cold (fresh buffer, disk head parked at page 0); the buffer holds 256
pages while documents span ~150 (sf 0.1) to ~3000 (sf 2.0) pages, so the
buffer-to-document ratio crosses 1 within the sweep, as in the paper.
The physical layout uses ``fragmentation=1.0`` — Natix's segment
allocator does not lay documents out in logical order, and the paper's
measured Simple-plan times (~4 ms/page) confirm per-page random I/O on
freshly imported documents.
"""

from __future__ import annotations

import json
import os
import sys
import time
from dataclasses import dataclass

sys.path.insert(0, os.path.dirname(__file__))

from repro import Database, EvalOptions, ImportOptions, QuerySession, Tracer
from repro.engine import Result
from repro.xmark import PAPER_QUERIES, Q6_PRIME, Q7, Q15, generate_xmark

#: The paper's nine XMark scaling factors.
DEFAULT_SCALES = (0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0)

PLANS = ("simple", "xschedule", "xscan")

#: Paper Table 3 (XMark sf 1): query -> plan -> (total s, cpu s).
PAPER_REFERENCE = {
    "q6": {"simple": (19.33, 4.36), "xschedule": (11.77, 3.84), "xscan": (13.07, 8.39)},
    "q7": {"simple": (114.20, 23.30), "xschedule": (72.41, 20.70), "xscan": (36.25, 22.54)},
    "q15": {"simple": (3.19, 0.26), "xschedule": (2.42, 0.30), "xscan": (19.79, 15.15)},
}

QUERY_BY_EXP = {"q6": Q6_PRIME, "q7": Q7, "q15": Q15}
LABEL_BY_EXP = {"q6": "Q6'", "q7": "Q7", "q15": "Q15"}


def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "1"))


#: one tracer shared by every database the sweep builds, created lazily
#: when ``REPRO_BENCH_TRACE=<file>`` is set (empty/unset => no tracing,
#: which keeps the published figures on the guaranteed zero-overhead path)
_BENCH_TRACER: Tracer | None = None


def bench_tracer() -> Tracer | None:
    global _BENCH_TRACER
    path = os.environ.get("REPRO_BENCH_TRACE")
    if not path:
        return None
    if _BENCH_TRACER is None:
        _BENCH_TRACER = Tracer()
        import atexit

        def _export() -> None:
            assert _BENCH_TRACER is not None
            if path.endswith(".jsonl"):
                _BENCH_TRACER.export_jsonl(path)
            else:
                _BENCH_TRACER.export_chrome(path)
            print(f"benchmark trace written to {path}", flush=True)

        atexit.register(_export)
    return _BENCH_TRACER


def build_xmark_db(
    scale: float,
    buffer_pages: int = 256,
    page_size: int = 8192,
    fragmentation: float = 1.0,
) -> Database:
    """Generate and import one XMark document; returns the database."""
    seed = bench_seed()
    db = Database(
        page_size=page_size, buffer_pages=buffer_pages, tracer=bench_tracer()
    )
    tree = generate_xmark(scale=scale, tags=db.tags, seed=seed)
    db.add_tree(
        tree,
        "xmark",
        ImportOptions(page_size=page_size, fragmentation=fragmentation, seed=seed),
    )
    return db


#: one cold session per database — the plan cache spares the sweep
#: thousands of recompiles while every run still gets a cold runtime
_SESSIONS: dict[int, QuerySession] = {}


def session_for(db: Database) -> QuerySession:
    key = id(db)
    if key not in _SESSIONS:
        _SESSIONS[key] = db.session()
    return _SESSIONS[key]


def run_query(db: Database, query: str, plan: str, options: EvalOptions | None = None) -> Result:
    """One cold execution (through the database's cached session)."""
    return session_for(db).execute(query, doc="xmark", plan=plan, options=options)


def run_query_timed(
    db: Database, query: str, plan: str, options: EvalOptions | None = None
) -> tuple[Result, float]:
    """One cold execution plus its *wall-clock* duration in seconds.

    The simulated clock measures the modelled disk; the wall clock
    measures this implementation.  Both land in ``BENCH_<figure>.json``
    so regressions in either dimension are visible.
    """
    t0 = time.perf_counter()
    result = run_query(db, query, plan, options)
    return result, time.perf_counter() - t0


# ---------------------------------------------------------- BENCH_*.json

#: Consolidated result files land in the repository root (CI uploads
#: them as artifacts; see .github/workflows/ci.yml).
BENCH_OUTPUT_DIR = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir))


def write_bench_json(exp_id: str, rows: list[dict], directory: str | None = None) -> str:
    """Write one figure's consolidated results to ``BENCH_<exp_id>.json``.

    Each row carries at least ``scale``, ``plan`` and the simulated
    ``total``; rows produced by :func:`run_query_timed` also carry the
    ``wall`` clock.  Returns the path written.
    """
    path = os.path.join(directory or BENCH_OUTPUT_DIR, f"BENCH_{exp_id}.json")
    payload = {
        "experiment": exp_id,
        "seed": bench_seed(),
        "time_unit": "seconds",
        "rows": rows,
    }
    with open(path, "w", encoding="utf-8") as out:
        json.dump(payload, out, indent=2, sort_keys=True)
        out.write("\n")
    return path


# ------------------------------------------------------------- formatting


def format_fig_table(exp_id: str, rows: list[dict]) -> str:
    """Series table for one figure: scale vs per-plan total time."""
    fig_no = {"fig9_q6": "Figure 9 (Q6')", "fig10_q7": "Figure 10 (Q7)", "fig11_q15": "Figure 11 (Q15)"}
    by_scale: dict[float, dict[str, float]] = {}
    for row in rows:
        by_scale.setdefault(row["scale"], {})[row["plan"]] = row["total"]
    lines = [f"--- {fig_no.get(exp_id, exp_id)}: total time [simulated s] vs scale ---"]
    lines.append(f"{'scale':>6s}  {'simple':>10s}  {'xschedule':>10s}  {'xscan':>10s}  {'sched/simp':>10s}  {'scan/simp':>10s}")
    for scale in sorted(by_scale):
        row = by_scale[scale]
        if len(row) < 3:
            continue
        lines.append(
            f"{scale:>6.2f}  {row['simple']:>10.3f}  {row['xschedule']:>10.3f}  "
            f"{row['xscan']:>10.3f}  {row['xschedule'] / row['simple']:>10.2f}  "
            f"{row['xscan'] / row['simple']:>10.2f}"
        )
    return "\n".join(lines)


def format_table3(rows: list[dict]) -> str:
    """The paper's Table 3: total and CPU at scale factor 1."""
    lines = ["--- Table 3: totals and CPU at XMark scale factor 1 (simulated) ---"]
    lines.append(
        f"{'query':>6s} {'plan':>10s} {'total[s]':>10s} {'CPU[s]':>8s} {'CPU%':>5s}"
        f"   | paper: {'total[s]':>9s} {'CPU[s]':>7s} {'CPU%':>5s}"
    )
    for row in rows:
        paper_total, paper_cpu = PAPER_REFERENCE[row["query"]][row["plan"]]
        lines.append(
            f"{LABEL_BY_EXP[row['query']]:>6s} {row['plan']:>10s} {row['total']:>10.3f} "
            f"{row['cpu']:>8.3f} {100 * row['cpu'] / row['total']:>4.0f}%"
            f"   |        {paper_total:>9.2f} {paper_cpu:>7.2f} {100 * paper_cpu / paper_total:>4.0f}%"
        )
    return "\n".join(lines)


# ------------------------------------------------------------ standalone


def main(argv: list[str]) -> int:
    scales = [float(a) for a in argv] if argv else list(DEFAULT_SCALES)
    stores: dict[float, Database] = {}
    fig_rows: dict[str, list[dict]] = {"fig9_q6": [], "fig10_q7": [], "fig11_q15": []}
    table3_rows: list[dict] = []
    for scale in scales:
        print(f"building XMark store sf={scale} ...", flush=True)
        stores[scale] = build_xmark_db(scale)
    for exp_id, label, query in PAPER_QUERIES:
        fig_id = {"q6": "fig9_q6", "q7": "fig10_q7", "q15": "fig11_q15"}[exp_id]
        for scale in scales:
            for plan in PLANS:
                result, wall = run_query_timed(stores[scale], query, plan)
                fig_rows[fig_id].append(
                    {
                        "scale": scale,
                        "plan": plan,
                        "total": result.total_time,
                        "cpu": result.cpu_time,
                        "wall": wall,
                        "pages_read": result.stats.pages_read,
                    }
                )
                if scale == 1.0:
                    table3_rows.append(
                        {"query": exp_id, "plan": plan, "total": result.total_time, "cpu": result.cpu_time}
                    )
            print(f"  {label} sf={scale} done", flush=True)
    for fig_id in ("fig9_q6", "fig10_q7", "fig11_q15"):
        print()
        print(format_fig_table(fig_id, fig_rows[fig_id]))
        print(f"wrote {write_bench_json(fig_id, fig_rows[fig_id])}")
    if table3_rows:
        print()
        print(format_table3(table3_rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
