"""Ablation: document shape vs. the XSchedule/XScan crossover.

Beyond XMark: synthetic documents at the extremes of shape —
* ``wide``: one container with thousands of small children
  (continuation-split child lists, scan-friendly);
* ``deep``: long chains (one crossing per level, selective paths);
* ``bushy``: balanced fanout.

The paper's crossover argument is about *selectivity*; shape determines
how much of the document a fixed-form query visits, so the same query
flips winners across shapes.
"""

import pytest

from repro import Database, ImportOptions
from repro.model.builder import TreeBuilder

SHAPES = ("wide", "deep", "bushy")
QUERY = "count(//leaf)"

_cache: dict[str, Database] = {}


def build_shape(shape: str) -> Database:
    if shape in _cache:
        return _cache[shape]
    db = Database(page_size=2048, buffer_pages=64)
    builder = TreeBuilder(db.tags)
    builder.start_element("root")
    if shape == "wide":
        for i in range(4000):
            builder.start_element("leaf" if i % 3 == 0 else "filler")
            builder.text("v" * 10)
            builder.end_element()
    elif shape == "deep":
        for _ in range(40):
            depth = 0
            for _ in range(25):
                builder.start_element("level")
                depth += 1
            builder.start_element("leaf")
            builder.end_element()
            for _ in range(depth):
                builder.end_element()
    else:  # bushy
        def grow(level: int) -> None:
            if level == 0:
                builder.start_element("leaf")
                builder.end_element()
                return
            builder.start_element("branch")
            for _ in range(4):
                grow(level - 1)
            builder.end_element()

        for _ in range(4):
            grow(5)
    builder.end_element()
    db.add_tree(builder.finish(), "doc", ImportOptions(page_size=2048, fragmentation=1.0, seed=1))
    _cache[shape] = db
    return db


@pytest.mark.parametrize("shape", SHAPES)
@pytest.mark.parametrize("plan", ["simple", "xschedule", "xscan"])
def test_shape_matrix(benchmark, record_result, shape, plan):
    db = build_shape(shape)
    result = benchmark.pedantic(
        lambda: db.execute(QUERY, doc="doc", plan=plan), rounds=1, iterations=1
    )
    doc = db.document("doc")
    record_result(
        "ablation_shapes",
        shape=shape,
        plan=plan,
        total=result.total_time,
        pages=float(doc.n_pages),
        answer=float(result.value),
    )
    assert result.value > 0


def test_all_plans_agree_on_every_shape(benchmark):
    def run_all():
        return {
            shape: {
                plan: build_shape(shape).execute(QUERY, doc="doc", plan=plan).value
                for plan in ("simple", "xschedule", "xscan")
            }
            for shape in SHAPES
        }

    matrix = benchmark.pedantic(run_all, rounds=1, iterations=1)
    for shape, row in matrix.items():
        assert len(set(row.values())) == 1, shape
