"""Ablation: document export via scan vs navigation (paper outlook).

"We also want to investigate how our method can be used to speed up
document export."  The scan exporter reads every page exactly once at
streaming cost and stitches per-cluster text fragments (the textual
analogue of partial path instances); the navigation exporter follows the
logical order, paying a random access per border crossing.
"""

import pytest

from harness import build_xmark_db

SCALE = 0.25

_db = None


def db():
    global _db
    if _db is None:
        _db = build_xmark_db(SCALE)
    return _db


@pytest.mark.parametrize("method", ["scan", "navigate"])
def test_export_methods(benchmark, record_result, method):
    database = db()
    text, result = benchmark.pedantic(
        lambda: database.export_xml(doc="xmark", method=method), rounds=1, iterations=1
    )
    record_result(
        "ablation_export",
        method=method,
        total=result.total_time,
        cpu=result.cpu_time,
        pages=float(result.stats.pages_read),
        seeks=float(result.stats.seeks),
    )
    assert text.startswith("<site>")


def test_exports_agree_and_scan_wins(benchmark):
    database = db()

    def run_pair():
        return (
            database.export_xml(doc="xmark", method="scan"),
            database.export_xml(doc="xmark", method="navigate"),
        )

    (scan_text, scan), (nav_text, navigate) = benchmark.pedantic(
        run_pair, rounds=1, iterations=1
    )
    assert scan_text == nav_text
    assert scan.total_time < navigate.total_time
