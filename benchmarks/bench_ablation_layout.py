"""Ablation: physical layout — fragmentation and clustering policy.

The paper's introduction argues that the physical page order cannot be
relied upon (import-time regrouping, incremental updates).  This bench
quantifies it: on a document-ordered sequential layout the Simple plan
degenerates to near-sequential I/O and the gap closes; fragmentation
restores the paper's regime.  XScan is layout-oblivious by construction.
"""

import pytest

from repro import ClusterPolicy, Database, ImportOptions
from repro.xmark import generate_xmark
from harness import QUERY_BY_EXP, bench_seed, run_query

SCALE = 0.5

LAYOUTS = {
    "seq_clean": ImportOptions(policy=ClusterPolicy.SEQUENTIAL, fragmentation=0.0),
    "bestfit_clean": ImportOptions(policy=ClusterPolicy.BEST_FIT, fragmentation=0.0),
    "bestfit_frag50": ImportOptions(policy=ClusterPolicy.BEST_FIT, fragmentation=0.5, seed=1),
    "bestfit_frag100": ImportOptions(policy=ClusterPolicy.BEST_FIT, fragmentation=1.0, seed=1),
}

_cache: dict[str, Database] = {}


def db_with_layout(name: str) -> Database:
    if name not in _cache:
        db = Database(page_size=8192, buffer_pages=256)
        tree = generate_xmark(scale=SCALE, tags=db.tags, seed=bench_seed())
        db.add_tree(tree, "xmark", LAYOUTS[name])
        _cache[name] = db
    return _cache[name]


@pytest.mark.parametrize("layout", list(LAYOUTS))
@pytest.mark.parametrize("plan", ["simple", "xschedule", "xscan"])
def test_layout_matrix(benchmark, record_result, layout, plan):
    db = db_with_layout(layout)
    result = benchmark.pedantic(
        lambda: run_query(db, QUERY_BY_EXP["q6"], plan), rounds=1, iterations=1
    )
    record_result(
        "ablation_layout",
        layout=layout,
        plan=plan,
        total=result.total_time,
        seeks=float(result.stats.seeks),
    )
    assert result.value > 0


def test_fragmentation_hurts_simple_most(benchmark):
    def run_pair():
        return (
            run_query(db_with_layout("seq_clean"), QUERY_BY_EXP["q6"], "simple"),
            run_query(db_with_layout("bestfit_frag100"), QUERY_BY_EXP["q6"], "simple"),
            run_query(db_with_layout("seq_clean"), QUERY_BY_EXP["q6"], "xscan"),
            run_query(db_with_layout("bestfit_frag100"), QUERY_BY_EXP["q6"], "xscan"),
        )

    s_clean, s_frag, n_clean, n_frag = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert s_frag.total_time > 1.5 * s_clean.total_time
    # the scan's physical pattern is identical regardless of layout
    assert abs(n_frag.total_time - n_clean.total_time) / n_clean.total_time < 0.2
    assert s_frag.value == s_clean.value == n_frag.value == n_clean.value
