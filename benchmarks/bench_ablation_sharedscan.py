"""Ablation: multiple location paths over a single scan (paper outlook).

Q7 evaluates three descendant counts.  Three independent XScan plans read
the document three times; the shared-scan extension reads it once.  The
CPU work (navigation + speculation per path) is unchanged, so the saving
is exactly the redundant I/O — the paper's "easily extended" claim made
concrete.
"""

import pytest

from harness import QUERY_BY_EXP, run_query

SCALE = 0.5
PLANS = ("xschedule", "xscan", "xscan-shared")


@pytest.mark.parametrize("plan", PLANS)
def test_q7_shared_scan(benchmark, xmark_store, record_result, plan):
    db = xmark_store(SCALE)
    result = benchmark.pedantic(
        lambda: run_query(db, QUERY_BY_EXP["q7"], plan), rounds=1, iterations=1
    )
    record_result(
        "ablation_sharedscan",
        plan=plan,
        total=result.total_time,
        cpu=result.cpu_time,
        pages=float(result.stats.pages_read),
    )
    assert result.value > 0


def test_shared_scan_beats_separate_scans(xmark_store, benchmark):
    db = xmark_store(SCALE)

    def run_pair():
        return (
            run_query(db, QUERY_BY_EXP["q7"], "xscan"),
            run_query(db, QUERY_BY_EXP["q7"], "xscan-shared"),
        )

    separate, shared = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert shared.value == separate.value
    assert shared.stats.pages_read < 0.5 * separate.stats.pages_read
    assert shared.total_time < separate.total_time
