"""Figure 11: Q15 = long selective child path — total time vs scale factor.

Paper shape to reproduce: the scan plan loses badly (it reads the whole
document and pays speculative-instance maintenance for a 13-step path),
while XSchedule stays below Simple.
"""

import pytest

from repro import EvalOptions

from conftest import bench_scales
from harness import PLANS, QUERY_BY_EXP, run_query, run_query_timed


@pytest.mark.parametrize("scale", bench_scales())
@pytest.mark.parametrize("plan", PLANS)
def test_fig11_q15(benchmark, xmark_store, record_result, scale, plan):
    db = xmark_store(scale)
    result, wall = benchmark.pedantic(
        lambda: run_query_timed(db, QUERY_BY_EXP["q15"], plan), rounds=1, iterations=1
    )
    record_result(
        "fig11_q15",
        scale=scale,
        plan=plan,
        total=result.total_time,
        cpu=result.cpu_time,
        wall=wall,
        pages_read=result.stats.pages_read,
    )
    benchmark.extra_info["simulated_total_s"] = result.total_time
    assert result.nodes is not None


def test_fig11_shape_holds(xmark_store, benchmark):
    """On the highly selective Q15, the scan plan is much slower.

    The paper's shape is about the *unpruned* scan (it predates the
    cluster synopsis), so the comparison runs with ``synopsis=False``;
    the synopsis ablation benchmark covers the pruned variant.
    """
    db = xmark_store(bench_scales()[len(bench_scales()) // 2])
    unpruned = EvalOptions(synopsis=False)

    def run_all():
        return {
            plan: run_query(db, QUERY_BY_EXP["q15"], plan, options=unpruned)
            for plan in PLANS
        }

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert results["xschedule"].total_time < results["simple"].total_time
    assert results["xscan"].total_time > 2.0 * results["simple"].total_time


def test_fig11_synopsis_prunes_scan_work(xmark_store, record_result):
    """The cluster synopsis cuts XScan's time on Q15: most clusters hold
    none of the 13 tags on the path.  The benchmark layout is fully
    fragmented, so the cost-aware skip planner streams through the
    scattered prunable pages (skipping them would trade cheap transfers
    for seeks) and the win comes from the skipped speculation rounds —
    total simulated time must still strictly improve."""
    db = xmark_store(bench_scales()[0])
    pruned = run_query(db, QUERY_BY_EXP["q15"], "xscan")
    unpruned = run_query(
        db, QUERY_BY_EXP["q15"], "xscan", options=EvalOptions(synopsis=False)
    )
    record_result(
        "ablation_synopsis_fig11",
        mode="on",
        pages=float(pruned.stats.pages_read),
        pruned=float(pruned.stats.synopsis_clusters_pruned),
        total=pruned.total_time,
    )
    record_result(
        "ablation_synopsis_fig11",
        mode="off",
        pages=float(unpruned.stats.pages_read),
        pruned=0.0,
        total=unpruned.total_time,
    )
    assert tuple(pruned.nodes) == tuple(unpruned.nodes)
    assert pruned.stats.synopsis_entries_pruned > 0
    assert pruned.stats.pages_read <= unpruned.stats.pages_read
    assert pruned.total_time < unpruned.total_time
