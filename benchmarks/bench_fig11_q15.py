"""Figure 11: Q15 = long selective child path — total time vs scale factor.

Paper shape to reproduce: the scan plan loses badly (it reads the whole
document and pays speculative-instance maintenance for a 13-step path),
while XSchedule stays below Simple.
"""

import pytest

from conftest import bench_scales
from harness import PLANS, QUERY_BY_EXP, run_query


@pytest.mark.parametrize("scale", bench_scales())
@pytest.mark.parametrize("plan", PLANS)
def test_fig11_q15(benchmark, xmark_store, record_result, scale, plan):
    db = xmark_store(scale)
    result = benchmark.pedantic(
        lambda: run_query(db, QUERY_BY_EXP["q15"], plan), rounds=1, iterations=1
    )
    record_result(
        "fig11_q15", scale=scale, plan=plan, total=result.total_time, cpu=result.cpu_time
    )
    benchmark.extra_info["simulated_total_s"] = result.total_time
    assert result.nodes is not None


def test_fig11_shape_holds(xmark_store, benchmark):
    """On the highly selective Q15, the scan plan is much slower."""
    db = xmark_store(bench_scales()[len(bench_scales()) // 2])

    def run_all():
        return {plan: run_query(db, QUERY_BY_EXP["q15"], plan) for plan in PLANS}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert results["xschedule"].total_time < results["simple"].total_time
    assert results["xscan"].total_time > 2.0 * results["simple"].total_time
