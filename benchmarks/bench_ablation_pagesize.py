"""Ablation: page (cluster) size.

The cluster is the unit of both I/O and cheap navigation (paper
Sec. 3.3).  Smaller pages mean more clusters, more border crossings and
more scheduling work; larger pages amortise seeks over more nodes but
waste bandwidth on selective queries.
"""

import pytest

from repro import Database, DiskGeometry, ImportOptions
from repro.xmark import generate_xmark
from harness import QUERY_BY_EXP, bench_seed, run_query

SCALE = 0.25
PAGE_SIZES = (2048, 8192, 32768)

_cache: dict[int, Database] = {}


def db_with_page_size(page_size: int) -> Database:
    if page_size not in _cache:
        seed = bench_seed()
        db = Database(
            page_size=page_size,
            buffer_pages=256 * 8192 // page_size,  # constant buffer bytes
            geometry=DiskGeometry(page_size=page_size),
        )
        tree = generate_xmark(scale=SCALE, tags=db.tags, seed=seed)
        db.add_tree(
            tree, "xmark", ImportOptions(page_size=page_size, fragmentation=1.0, seed=seed)
        )
        _cache[page_size] = db
    return _cache[page_size]


@pytest.mark.parametrize("page_size", PAGE_SIZES)
@pytest.mark.parametrize("exp_id", ["q6", "q15"])
def test_page_size_sweep(benchmark, record_result, page_size, exp_id):
    db = db_with_page_size(page_size)
    result = benchmark.pedantic(
        lambda: run_query(db, QUERY_BY_EXP[exp_id], "xschedule"), rounds=1, iterations=1
    )
    doc = db.document("xmark")
    record_result(
        "ablation_pagesize",
        query=exp_id,
        page_size=float(page_size),
        total=result.total_time,
        pages=float(doc.n_pages),
        borders=float(doc.n_border_pairs),
    )


def test_smaller_pages_mean_more_borders(benchmark):
    def measure():
        return {
            size: db_with_page_size(size).document("xmark").n_border_pairs
            for size in PAGE_SIZES
        }

    borders = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert borders[2048] > borders[8192] > borders[32768]
