"""Ablation: controller scheduling policy (paper Sec. 3.7).

The asynchronous interface exists so that "the lower system layers
reorder the I/O requests".  Replacing the reordering controller (SSTF or
C-LOOK) with FIFO removes that benefit and should push XSchedule back
toward the Simple plan's I/O times.
"""

import pytest

from repro import Database, ImportOptions, SchedulingPolicy
from repro.xmark import generate_xmark
from harness import QUERY_BY_EXP, bench_seed, run_query

SCALE = 0.5
POLICIES = (SchedulingPolicy.FIFO, SchedulingPolicy.SSTF, SchedulingPolicy.CLOOK)

_cache: dict[SchedulingPolicy, Database] = {}


def db_with_policy(policy: SchedulingPolicy) -> Database:
    if policy not in _cache:
        seed = bench_seed()
        db = Database(page_size=8192, buffer_pages=256, disk_policy=policy)
        tree = generate_xmark(scale=SCALE, tags=db.tags, seed=seed)
        db.add_tree(tree, "xmark", ImportOptions(fragmentation=1.0, seed=seed))
        _cache[policy] = db
    return _cache[policy]


@pytest.mark.parametrize("policy", POLICIES, ids=[p.value for p in POLICIES])
def test_scheduler_policy(benchmark, record_result, policy):
    db = db_with_policy(policy)
    result = benchmark.pedantic(
        lambda: run_query(db, QUERY_BY_EXP["q7"], "xschedule"), rounds=1, iterations=1
    )
    record_result(
        "ablation_scheduler",
        policy=policy.value,
        total=result.total_time,
        seeks=float(result.stats.seeks),
        seek_pages=float(result.stats.seek_distance),
    )
    assert result.value > 0


def test_reordering_beats_fifo(benchmark):
    def run_pair():
        fifo = run_query(db_with_policy(SchedulingPolicy.FIFO), QUERY_BY_EXP["q7"], "xschedule")
        sstf = run_query(db_with_policy(SchedulingPolicy.SSTF), QUERY_BY_EXP["q7"], "xschedule")
        return fifo, sstf

    fifo, sstf = benchmark.pedantic(run_pair, rounds=1, iterations=1)
    assert sstf.total_time < fifo.total_time
    assert sstf.stats.seek_distance < fifo.stats.seek_distance
