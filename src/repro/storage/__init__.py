"""Physical storage layer (paper Sec. 3).

Implements the storage model the paper assumes:

* :mod:`repro.storage.nodeid` — RID-style NodeIDs ``(page, slot)`` packed
  into a single integer; the page component is the cluster id (Sec. 3.3).
* :mod:`repro.storage.ordpath` — ORDPATH order labels [O'Neil et al.,
  SIGMOD 2004], used to re-establish document order (Sec. 5.5).
* :mod:`repro.storage.record` / :mod:`repro.storage.page` — core and
  border node records on slotted pages (Sec. 3.4).
* :mod:`repro.storage.buffer` — page buffer with pinning, LRU eviction
  and explicit swizzle/unswizzle accounting (Sec. 3.6).
* :mod:`repro.storage.importer` — subtree clustering of a logical tree
  onto pages, materialising border-node pairs at crossing edges.
* :mod:`repro.storage.store` — documents and segments.
* :mod:`repro.storage.nav` — the intra-cluster navigational primitives
  (Sec. 3.5), including the resume variants used after a border crossing.
"""

from repro.storage.nodeid import NodeID, make_nodeid, page_of, slot_of
from repro.storage.ordpath import OrdPath
from repro.storage.record import BorderRecord, CoreRecord
from repro.storage.page import Page, Segment
from repro.storage.buffer import BufferManager, Frame
from repro.storage.importer import ClusterPolicy, ImportOptions, import_tree
from repro.storage.store import (
    DocumentStore,
    StoredDocument,
    check_document,
    export_tree,
    recollect_statistics,
)
from repro.storage.update import delete_subtree, insert_node, update_value

__all__ = [
    "NodeID",
    "make_nodeid",
    "page_of",
    "slot_of",
    "OrdPath",
    "CoreRecord",
    "BorderRecord",
    "Page",
    "Segment",
    "BufferManager",
    "Frame",
    "ClusterPolicy",
    "ImportOptions",
    "import_tree",
    "DocumentStore",
    "StoredDocument",
    "check_document",
    "export_tree",
    "recollect_statistics",
    "insert_node",
    "delete_subtree",
    "update_value",
]
