"""Document-level path summary: a DataGuide-style trie of root-to-node paths.

A :class:`PathSummary` records, for one stored document, every distinct
*root-to-node tag path* together with the exact number of nodes on that
path and a bitset of the clusters (pages) holding instances of it — the
structure Arion et al. ("Path Summaries and Path Partitioning in Modern
XML Databases") show is tiny, collected in one import pass, and able to
answer or refute whole location paths before any page is read.

A path key is ``(chain, kind)``:

* ``chain`` — the tag ids from the document root down to the node,
  inclusive on both ends (the root's chain is ``(DOCUMENT_TAG,)``);
* ``kind`` — the node kind (:class:`~repro.model.tree.Kind`) of the
  final component, distinguishing the element ``id`` from the attribute
  ``id`` under the same parent path.  Interior components are always
  document/element nodes (only those have children), so one trailing
  kind suffices.

Internally the summary is kept *per page* (``page_no -> {key: count}``),
mirroring :class:`~repro.storage.synopsis.ClusterSynopsis`'s row layout:
incremental repair after an update run recollects only the touched
pages' rows and re-aggregates — O(touched), not O(document) — and the
aggregate (global counts, per-path cluster postings, a child index for
trie walks) is rebuilt from the rows at construction.

Like the synopsis, the summary is planning metadata: consulting it costs
no simulated time.  :meth:`PathSummary.evaluate` propagates a whole
location path through the trie and yields per-step path sets (always a
superset of the true result paths, exact for downward-only paths without
predicates), which powers three distinct optimisations in
:mod:`repro.xpath.rewrite`:

* **refutation** — an empty path set at any step proves the whole query
  empty before a single page is requested;
* **expansion** — a ``descendant`` step whose matches all sit on one
  concrete suffix chain collapses into plain child steps;
* **pricing** — exact per-path cardinalities and cluster postings feed
  the AUTO chooser and the operators' pre-scan cluster filter
  (:class:`PathPostings`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Set, Tuple

from repro.axes import Axis
from repro.model.tree import Kind, LogicalTree
from repro.storage.nodeid import page_of, slot_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.algebra.steps import CompiledNodeTest, CompiledStep
    from repro.storage.page import Page, Segment
    from repro.storage.synopsis import ClusterSynopsis

#: Root-to-node tag chain plus the node kind of the final component.
PathKey = Tuple[Tuple[int, ...], int]
#: Per-page decomposition: page_no -> {path key -> core-record count}.
PageRows = Dict[int, Dict[PathKey, int]]

_KIND_DOCUMENT = int(Kind.DOCUMENT)
_KIND_ELEMENT = int(Kind.ELEMENT)
#: Kinds whose nodes can have children (interior trie positions).
_PARENT_KINDS = (_KIND_DOCUMENT, _KIND_ELEMENT)


class PathSummary:
    """Distinct root-to-node paths of one document, with counts and postings."""

    __slots__ = ("_pages", "_counts", "_postings", "_children", "_n_nodes")

    def __init__(self, pages: PageRows) -> None:
        self._pages = pages
        counts: Dict[PathKey, int] = {}
        postings: Dict[PathKey, int] = {}
        for page_no, row in pages.items():
            bit = 1 << page_no
            for key, count in row.items():
                counts[key] = counts.get(key, 0) + count
                postings[key] = postings.get(key, 0) | bit
        children: Dict[Tuple[int, ...], List[PathKey]] = {}
        for key in counts:
            children.setdefault(key[0][:-1], []).append(key)
        self._counts = counts
        self._postings = postings
        self._children = children
        self._n_nodes = sum(counts.values())

    # -- construction --------------------------------------------------

    @staticmethod
    def collect_from_tree(tree: LogicalTree, node_page: Sequence[int]) -> "PathSummary":
        """Build the summary from the logical tree at import time.

        ``node_page`` maps each logical node to the physical page it
        landed on (:attr:`~repro.storage.importer.ImportResult.node_page`),
        so this runs in the same import pass as the synopsis without
        touching the freshly written pages again.
        """
        pages: PageRows = {}
        tags_arr = tree.tag
        parent = tree.parent
        kinds = tree.kind
        # chains are interned so shared prefixes share one tuple
        interned: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
        chains: List[Tuple[int, ...]] = [()] * len(tree)
        for node in range(len(tree)):
            p = parent[node]
            chain = (chains[p] if p >= 0 else ()) + (tags_arr[node],)
            chain = interned.setdefault(chain, chain)
            chains[node] = chain
            key = (chain, kinds[node])
            row = pages.setdefault(node_page[node], {})
            row[key] = row.get(key, 0) + 1
        return PathSummary(pages)

    @staticmethod
    def collect(segment: "Segment", page_nos: Iterable[int]) -> "PathSummary":
        """Build the summary by walking the physical records.

        The post-load / post-update counterpart of
        :meth:`collect_from_tree`; both produce identical summaries (the
        cross-version persistence tests assert this).
        """
        resolver = _ChainResolver(segment)
        pages: PageRows = {}
        for page_no in page_nos:
            pages[page_no] = PathSummary.collect_row(
                segment, segment.page(page_no), resolver
            )
        return PathSummary(pages)

    @staticmethod
    def collect_row(
        segment: "Segment", page: "Page", resolver: "_ChainResolver | None" = None
    ) -> Dict[PathKey, int]:
        """Collect one page's path row from its physical records.

        The single-page unit of :meth:`collect`, exposed so incremental
        repair can recollect just the touched pages.  Resolving a core
        record's root chain may read *other* pages (the parent chain
        crosses cluster borders upward), which is free — the summary is
        planning metadata, maintained off the simulated clock exactly
        like the synopsis.
        """
        if resolver is None:
            resolver = _ChainResolver(segment)
        row: Dict[PathKey, int] = {}
        page_no = page.page_no
        for slot, record in enumerate(page.records):
            if record is None or record.is_border:
                continue
            key = (resolver.chain_of(page_no, slot), int(record.kind))
            row[key] = row.get(key, 0) + 1
        return row

    def patched(self, fresh: PageRows) -> "PathSummary":
        """A new summary with ``fresh`` page rows replacing (or extending)
        this one's — the incremental-repair constructor."""
        pages = dict(self._pages)
        pages.update(fresh)
        return PathSummary(pages)

    # -- trie accessors ------------------------------------------------

    @property
    def n_nodes(self) -> int:
        """Total nodes across all paths (the document size)."""
        return self._n_nodes

    @property
    def n_paths(self) -> int:
        """Number of distinct path keys."""
        return len(self._counts)

    def count(self, key: PathKey) -> int:
        """Exact number of nodes with this path key (0 if absent)."""
        return self._counts.get(key, 0)

    def postings(self, key: PathKey) -> int:
        """Bitset of page numbers holding instances of this path key."""
        return self._postings.get(key, 0)

    def child_keys(self, chain: Tuple[int, ...]) -> Tuple[PathKey, ...]:
        """All path keys directly below ``chain`` in the trie."""
        return tuple(self._children.get(chain, ()))

    def root_key(self) -> PathKey:
        """The document root's path key."""
        for key in self._children.get((), ()):
            if key[1] == _KIND_DOCUMENT:
                return key
        # degenerate (empty) summary: synthesise the conventional root
        return ((0,), _KIND_DOCUMENT)

    # -- whole-path evaluation -----------------------------------------

    def evaluate(self, steps: Sequence["CompiledStep"]) -> "PathEvaluation":
        """Propagate a location path through the trie.

        Produces per-step path-key sets that are always a *superset* of
        the paths of the step's true matches (so an empty set refutes
        the query), and are exact — node-for-node countable — when every
        step so far uses a downward axis and carries no predicates.
        Predicates never extend a set, so refutation through them stays
        sound; they do clear the ``exact`` flag.  A predicate whose own
        relative path is refuted from every candidate refutes the whole
        query (an existence predicate over a provably empty set, or a
        comparison against an empty node-set, is false everywhere).
        """
        contexts: Set[PathKey] = {self.root_key()}
        step_sets: List[frozenset] = []
        exact = True
        refuted = False
        visited = 1.0
        for step in steps:
            result, swept = self._step_result(contexts, step)
            visited += swept
            if step.axis not in _EXACT_AXES:
                exact = False
            for predicate in step.predicates:
                exact = False
                if result and self._predicate_refuted(result, predicate):
                    result = set()
            step_sets.append(frozenset(result))
            contexts = result
            if not contexts:
                refuted = True
                break
        while len(step_sets) < len(steps):
            step_sets.append(frozenset())
        cardinality = (
            float(sum(self._counts.get(key, 0) for key in sorted(contexts)))
            if exact and not refuted
            else None
        )
        return PathEvaluation(
            refuted=refuted,
            exact=exact and not refuted,
            cardinality=0.0 if refuted else cardinality,
            visited=visited,
            step_sets=tuple(step_sets),
        )

    def _predicate_refuted(self, contexts: Set[PathKey], predicate: object) -> bool:
        """True if the predicate's relative path is empty from every context."""
        current: Set[PathKey] = set(contexts)
        for step in predicate.steps:  # type: ignore[attr-defined]
            current, _ = self._step_result(current, step)
            for nested in step.predicates:
                if current and self._predicate_refuted(current, nested):
                    current = set()
            if not current:
                return True
        return False

    def _step_result(
        self, contexts: Set[PathKey], step: "CompiledStep"
    ) -> Tuple[Set[PathKey], float]:
        """One step's result key set plus the nodes a sweep would visit."""
        axis = step.axis
        test = step.test
        out: Set[PathKey] = set()
        swept = 0.0
        counts = self._counts
        children = self._children
        if axis is Axis.SELF:
            for key in sorted(contexts):
                if _matches(test, key):
                    out.add(key)
        elif axis is Axis.CHILD or axis is Axis.ATTRIBUTE:
            for chain, kind in sorted(contexts):
                if kind not in _PARENT_KINDS:
                    continue
                for ckey in children.get(chain, ()):
                    if _matches(test, ckey):
                        out.add(ckey)
                        swept += counts.get(ckey, 0)
        elif axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
            # every key strictly below some context chain, each key once
            expanded: Set[Tuple[int, ...]] = set()
            reach: Set[PathKey] = set()
            stack = [chain for chain, kind in sorted(contexts) if kind in _PARENT_KINDS]
            while stack:
                chain = stack.pop()
                if chain in expanded:
                    continue
                expanded.add(chain)
                for ckey in children.get(chain, ()):
                    reach.add(ckey)
                    cchain, ckind = ckey
                    if ckind in _PARENT_KINDS:
                        stack.append(cchain)
            if axis is Axis.DESCENDANT_OR_SELF:
                reach |= contexts  # the step enumerates the contexts too
            for key in sorted(reach):
                swept += counts.get(key, 0)
                if _matches(test, key):
                    out.add(key)
        elif axis is Axis.PARENT:
            for chain, _kind in sorted(contexts):
                if len(chain) > 1:
                    pkey = (chain[:-1], _parent_kind(chain))
                    if _matches(test, pkey):
                        out.add(pkey)
                        swept += 1.0
        elif axis is Axis.ANCESTOR or axis is Axis.ANCESTOR_OR_SELF:
            for key in sorted(contexts):
                chain, _kind = key
                if axis is Axis.ANCESTOR_OR_SELF and _matches(test, key):
                    out.add(key)
                for depth in range(1, len(chain)):
                    prefix = chain[:depth]
                    akey = (prefix, _parent_kind(chain[: depth + 1]))
                    swept += 1.0
                    if _matches(test, akey):
                        out.add(akey)
        else:  # sibling axes: all children of the parent chain (upper bound)
            for chain, _kind in sorted(contexts):
                if len(chain) <= 1:
                    continue
                for ckey in children.get(chain[:-1], ()):
                    swept += counts.get(ckey, 0)
                    if _matches(test, ckey):
                        out.add(ckey)
        return out, swept

    # -- persistence ---------------------------------------------------

    def page_rows(self) -> PageRows:
        """The raw per-page rows; used by the persistence layer and tests."""
        return {page_no: dict(row) for page_no, row in self._pages.items()}

    @staticmethod
    def from_page_rows(pages: PageRows) -> "PathSummary":
        return PathSummary({page_no: dict(row) for page_no, row in pages.items()})

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PathSummary):
            return NotImplemented
        return self._pages == other._pages

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PathSummary({len(self._counts)} paths, {self._n_nodes} nodes, "
            f"{len(self._pages)} pages)"
        )


def _parent_kind(chain: Tuple[int, ...]) -> int:
    """Kind of the node *owning* the last component of ``chain``."""
    return _KIND_DOCUMENT if len(chain) <= 2 else _KIND_ELEMENT


def _matches(test: "CompiledNodeTest", key: PathKey) -> bool:
    chain, kind = key
    return test.matches(kind, chain[-1])


#: Axes whose path sets are exact (node-for-node countable): downward
#: navigation from the root reaches *every* node on a matching path.
_EXACT_AXES = frozenset(
    {Axis.SELF, Axis.CHILD, Axis.ATTRIBUTE, Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF}
)


class PathEvaluation:
    """Result of :meth:`PathSummary.evaluate` for one location path."""

    __slots__ = ("refuted", "exact", "cardinality", "visited", "step_sets")

    def __init__(
        self,
        refuted: bool,
        exact: bool,
        cardinality: float | None,
        visited: float,
        step_sets: Tuple[frozenset, ...],
    ) -> None:
        #: the summary proves the result empty
        self.refuted = refuted
        #: cardinality/visited are exact counts, not upper bounds
        self.exact = exact
        #: exact result cardinality (None when not exact; 0.0 when refuted)
        self.cardinality = cardinality
        #: nodes a step-by-step evaluation enumerates (exact when ``exact``)
        self.visited = visited
        #: per-step path-key sets (supersets of the true result paths)
        self.step_sets = step_sets


class _ChainResolver:
    """Resolves core records to root-to-node tag chains by physical walk.

    Climbing a parent link that crosses a cluster border follows the up
    border to its companion down border in the parent cluster, whose
    local link names the holder there — either the parent core record or
    a continuation proxy whose own border must be crossed in turn (split
    child lists, see :func:`repro.storage.nav._resume_upward`).  Chains
    are memoised per ``(page_no, slot)`` so repairing several pages of
    one document shares the ancestor work.
    """

    __slots__ = ("_segment", "_memo", "_interned")

    def __init__(self, segment: "Segment") -> None:
        self._segment = segment
        self._memo: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._interned: Dict[Tuple[int, ...], Tuple[int, ...]] = {}

    def chain_of(self, page_no: int, slot: int) -> Tuple[int, ...]:
        """Root-to-node tag chain of the core record at ``(page_no, slot)``."""
        memo = self._memo
        segment = self._segment
        trail: List[Tuple[Tuple[int, int], int]] = []
        chain: Tuple[int, ...] = ()
        while True:
            spot = (page_no, slot)
            cached = memo.get(spot)
            if cached is not None:
                chain = cached
                break
            record = segment.page(page_no).record(slot)
            trail.append((spot, record.tag))
            parent_slot = record.parent_slot
            if parent_slot < 0:
                break  # the stored document root
            entry = segment.page(page_no).record(parent_slot)
            slot = parent_slot
            while entry is not None and entry.is_border:
                # cross to the companion (down) border and follow its
                # local link; a border holder there is a continuation
                # proxy — cross again
                target = entry.target()
                page_no = page_of(target)
                down = segment.page(page_no).record(slot_of(target))
                slot = down.local_slot
                entry = segment.page(page_no).record(slot)
        interned = self._interned
        for spot, tag in reversed(trail):
            chain = chain + (tag,)
            chain = interned.setdefault(chain, chain)
            memo[spot] = chain
        return chain


# ----------------------------------------------------- operator-side filter


class PathPostings:
    """Per-step cluster postings of one compiled path, for pre-scan pruning.

    Built by the rewrite pass from a :class:`PathEvaluation`: bit ``p``
    of ``_bits[i]`` is set iff cluster ``p`` holds a node whose root
    path could be a match of step ``i``.  The operators combine this
    with the synopsis's *transit* verdicts: a cluster is only skipped
    when it provably holds no candidate for any step **and** no resume
    there can transit into another cluster — the same conservative
    contract :class:`~repro.storage.synopsis.ClusterSynopsis` obeys, so
    the filter composes with (and never double-counts against) synopsis
    pruning: the synopsis keeps its own verdicts and counters, the
    postings only add clusters the tag bitsets could not refute.
    """

    __slots__ = ("_axes", "_bits")

    def __init__(self, axes: Tuple[Axis, ...], bits: Tuple[int, ...]) -> None:
        self._axes = axes
        self._bits = bits

    @staticmethod
    def for_steps(
        summary: PathSummary,
        steps: Sequence["CompiledStep"],
        evaluation: PathEvaluation,
    ) -> "PathPostings":
        bits: List[int] = []
        for index in range(len(steps)):
            step_bits = 0
            if index < len(evaluation.step_sets):
                for key in evaluation.step_sets[index]:
                    step_bits |= summary.postings(key)
            bits.append(step_bits)
        return PathPostings(
            tuple(step.axis for step in steps), tuple(bits)
        )

    def holds_candidate(self, step_index: int, page_no: int) -> bool:
        """Does cluster ``page_no`` hold a possible match of this step?"""
        return bool(self._bits[step_index] >> page_no & 1)

    def can_contribute(
        self, synopsis: "ClusterSynopsis", page_no: int, step_index: int
    ) -> bool:
        """Refined :meth:`ClusterSynopsis.can_contribute`: a speculative
        resume needs a posted candidate or a transit possibility."""
        return self.holds_candidate(step_index, page_no) or synopsis.contribute_transit(
            page_no, self._axes[step_index]
        )

    def can_extend(
        self, synopsis: "ClusterSynopsis", page_no: int, step_index: int
    ) -> bool:
        """Refined :meth:`ClusterSynopsis.can_extend`: a targeted resume
        needs a posted candidate or a transit possibility."""
        return self.holds_candidate(step_index, page_no) or synopsis.extend_transit(
            page_no, self._axes[step_index]
        )

    def prunable_for_scan(self, synopsis: "ClusterSynopsis", page_no: int) -> bool:
        """True if *no* step can contribute from this cluster under the
        refined verdict: the scan may skip reading it."""
        return not any(
            self.can_contribute(synopsis, page_no, index)
            for index in range(len(self._axes))
        )

    def relevant_pages(self) -> int:
        """Distinct clusters posted for any step (the pricing cap)."""
        union = 0
        for bits in self._bits:
            union |= bits
        return union.bit_count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PathPostings({len(self._axes)} steps, {self.relevant_pages()} pages)"
