"""Page buffer manager with swizzling accounting (paper Sec. 1, 3.6).

The buffer manager is where the paper locates two of its three physical
cost factors:

* a buffer *miss* triggers disk I/O (synchronous, unless the page was
  prefetched through the asynchronous subsystem);
* even a buffer *hit* pays a hash-table lookup with latch acquisition —
  this is the cost of *swizzling* a NodeID into an in-memory pointer.

Operators therefore pass swizzled :class:`Frame` references between
adjacent XStep operators (free) and only go through :meth:`fix` when a
NodeID from the main-memory structures (R, S, Q) must be dereferenced.

Replacement is LRU over unpinned frames.  Reads only — the engine is a
query processor, so no dirty-page handling is needed.
"""

from __future__ import annotations

from repro.errors import BufferError_
from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.iosys import AsyncIOSystem
from repro.sim.stats import Stats
from repro.storage.page import Page, Segment


class Frame:
    """A buffered page with a pin count."""

    __slots__ = ("page", "pins", "lru_tick")

    def __init__(self, page: Page) -> None:
        self.page = page
        self.pins = 0
        self.lru_tick = 0

    @property
    def page_no(self) -> int:
        return self.page.page_no

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame(page={self.page.page_no}, pins={self.pins})"


class BufferManager:
    """Fixed-capacity page buffer over a segment and the I/O subsystem."""

    __slots__ = (
        "segment",
        "iosys",
        "clock",
        "costs",
        "capacity",
        "stats",
        "tracer",
        "_frames",
        "_tick",
    )

    def __init__(
        self,
        segment: Segment,
        iosys: AsyncIOSystem,
        clock: SimClock,
        costs: CostModel,
        capacity: int,
        stats: Stats,
        tracer=None,
    ) -> None:
        if capacity < 1:
            raise BufferError_(f"buffer capacity must be positive, got {capacity}")
        self.segment = segment
        self.iosys = iosys
        self.clock = clock
        self.costs = costs
        self.capacity = capacity
        self.stats = stats
        self.tracer = tracer
        self._frames: dict[int, Frame] = {}
        self._tick = 0

    # ------------------------------------------------------------------ fix

    def fix(self, page_no: int) -> Frame:
        """Swizzle: translate a page number into a pinned frame.

        Charges the hash-lookup (swizzle) cost; on a miss, performs a
        *synchronous* read — this is the expensive path the Simple method
        takes for every inter-cluster navigation.
        """
        self.clock.work(self.costs.swizzle)
        self.stats.swizzles += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.count("swizzles")
        frame = self._frames.get(page_no)
        if frame is None:
            self.stats.buffer_misses += 1
            if tracer is not None:
                tracer.count("buffer_misses")
                tracer.event(self.clock.now, "buffer", "miss", page=page_no)
            self.iosys.read_sync(page_no)
            frame = self._admit(page_no)
            for early_page in self.iosys.drain_early_completions():
                if early_page not in self._frames:
                    self._admit(early_page)
        else:
            self.stats.buffer_hits += 1
            if tracer is not None:
                tracer.count("buffer_hits")
                tracer.event(self.clock.now, "buffer", "hit", page=page_no)
        frame.pins += 1
        self._touch(frame)
        return frame

    def try_fix_resident(self, page_no: int) -> Frame | None:
        """Swizzle only if the page is already buffered (no I/O)."""
        self.clock.work(self.costs.swizzle)
        self.stats.swizzles += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.count("swizzles")
        frame = self._frames.get(page_no)
        if frame is None:
            return None
        self.stats.buffer_hits += 1
        if tracer is not None:
            tracer.count("buffer_hits")
            tracer.event(self.clock.now, "buffer", "hit", page=page_no)
        frame.pins += 1
        self._touch(frame)
        return frame

    def unfix(self, frame: Frame) -> None:
        """Release one pin; the frame becomes evictable at zero pins."""
        if frame.pins <= 0:
            raise BufferError_(f"unfix of unpinned frame {frame.page_no}")
        frame.pins -= 1
        self.stats.unswizzles += 1
        if self.tracer is not None:
            self.tracer.count("unswizzles")
        self.clock.work(self.costs.unswizzle)

    def admit_completed(self, page_no: int) -> Frame:
        """Register a page whose asynchronous read just completed.

        Used by XSchedule/XScan after :meth:`AsyncIOSystem.get_completion`.
        Returns the (unpinned) frame; callers fix it via
        :meth:`try_fix_resident`.
        """
        frame = self._frames.get(page_no)
        if frame is None:
            frame = self._admit(page_no)
        return frame

    def is_resident(self, page_no: int) -> bool:
        return page_no in self._frames

    @property
    def n_resident(self) -> int:
        return len(self._frames)

    # ------------------------------------------------------------ internals

    def _admit(self, page_no: int) -> Frame:
        if len(self._frames) >= self.capacity:
            self._evict()
        self.clock.work(self.costs.page_register)
        frame = Frame(self.segment.page(page_no))
        self._frames[page_no] = frame
        self._touch(frame)
        return frame

    def _evict(self) -> None:
        victim: Frame | None = None
        for frame in self._frames.values():
            if frame.pins == 0 and (victim is None or frame.lru_tick < victim.lru_tick):
                victim = frame
        if victim is None:
            raise BufferError_(
                f"buffer of {self.capacity} pages exhausted with all frames pinned"
            )
        del self._frames[victim.page_no]
        self.stats.evictions += 1
        if self.tracer is not None:
            self.tracer.count("evictions")
            self.tracer.event(self.clock.now, "buffer", "evict", page=victim.page_no)

    def _touch(self, frame: Frame) -> None:
        self._tick += 1
        frame.lru_tick = self._tick
