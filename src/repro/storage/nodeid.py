"""NodeIDs: record identifiers that expose their cluster (paper Sec. 3.2/3.3).

A NodeID is the classic RID form — page number plus slot number — packed
into one Python int so it is hashable, compact in the main-memory sets
(R, S, Q) of the algebra, and cheap to compare.  The page number *is* the
cluster id: the paper requires that "the cluster(s) a node belongs to can
be determined from its NodeID".
"""

from __future__ import annotations

from typing import NewType

#: Number of bits reserved for the slot component.
SLOT_BITS = 20
_SLOT_MASK = (1 << SLOT_BITS) - 1

NodeID = NewType("NodeID", int)


def make_nodeid(page: int, slot: int) -> NodeID:
    """Pack ``(page, slot)`` into a NodeID."""
    if page < 0 or slot < 0:
        raise ValueError(f"negative NodeID component: page={page}, slot={slot}")
    if slot > _SLOT_MASK:
        raise ValueError(f"slot {slot} exceeds {SLOT_BITS}-bit slot space")
    return NodeID((page << SLOT_BITS) | slot)


def page_of(nodeid: NodeID) -> int:
    """Cluster (page) component of a NodeID."""
    return nodeid >> SLOT_BITS


def slot_of(nodeid: NodeID) -> int:
    """Slot component of a NodeID."""
    return nodeid & _SLOT_MASK


def format_nodeid(nodeid: NodeID) -> str:
    """Human-readable ``page.slot`` rendering (used in plan traces)."""
    return f"{page_of(nodeid)}.{slot_of(nodeid)}"
