"""ORDPATH order labels (O'Neil et al., SIGMOD 2004; paper Sec. 5.5).

The paper assumes "nodes carry some information that allows to reestablish
document order, such as ORDPATHs".  This module is a full implementation
of the ORDPATH labeling scheme:

* initial labels use only positive *odd* ordinals (1, 3, 5, ...);
* even ordinals are *carets*: they do not contribute an ancestry level but
  create room to insert new siblings between any two existing labels
  without relabeling ("careting in");
* comparison is component-wise lexicographic, which equals document order;
* the ancestor relation is computable from the labels alone.

Labels are represented as tuples of ints wrapped in a small value class.
(The original paper additionally defines a prefix-free bitstring encoding
so byte comparison equals label comparison; we compare decoded components
directly, which preserves the same order.)
"""

from __future__ import annotations

from typing import Iterator


class OrdPath:
    """An immutable ORDPATH label."""

    __slots__ = ("components",)

    def __init__(self, components: tuple[int, ...]) -> None:
        if not components:
            raise ValueError("empty ORDPATH")
        if components[-1] % 2 == 0:
            raise ValueError(f"ORDPATH must end in an odd component: {components}")
        self.components = components

    # ------------------------------------------------------------- ordering

    def __lt__(self, other: "OrdPath") -> bool:
        return self.components < other.components

    def __le__(self, other: "OrdPath") -> bool:
        return self.components <= other.components

    def __eq__(self, other: object) -> bool:
        return isinstance(other, OrdPath) and self.components == other.components

    def __hash__(self) -> int:
        return hash(self.components)

    def __repr__(self) -> str:
        return "OrdPath(%s)" % ".".join(str(c) for c in self.components)

    # -------------------------------------------------------------- ancestry

    def level(self) -> int:
        """Tree depth encoded by the label (carets do not count)."""
        # Each level ends at an odd component; even components extend the
        # current level's ordinal.
        return sum(1 for c in self.components if c % 2 == 1)

    def is_ancestor_of(self, other: "OrdPath") -> bool:
        """True if ``self`` is a proper ancestor of ``other``."""
        mine = self.components
        theirs = other.components
        if len(theirs) <= len(mine):
            return False
        return theirs[: len(mine)] == mine and self != other

    def parent_prefixes(self) -> Iterator["OrdPath"]:
        """All proper ancestor labels, nearest first."""
        comps = self.components
        for end in range(len(comps) - 1, 0, -1):
            if comps[end - 1] % 2 == 1:
                yield OrdPath(comps[:end])

    # ------------------------------------------------------------ generation

    @staticmethod
    def root() -> "OrdPath":
        """Label of the document root."""
        return OrdPath((1,))

    def child(self, ordinal_index: int) -> "OrdPath":
        """Label of the ``ordinal_index``-th initial child (0-based).

        Initial children receive odd ordinals 1, 3, 5, ...
        """
        if ordinal_index < 0:
            raise ValueError("negative child index")
        return OrdPath(self.components + (2 * ordinal_index + 1,))

    def children(self) -> Iterator["OrdPath"]:
        """Infinite stream of initial child labels."""
        index = 0
        while True:
            yield self.child(index)
            index += 1

    def next_sibling_label(self) -> "OrdPath":
        """Initial label for a sibling appended after ``self``."""
        comps = self.components
        return OrdPath(comps[:-1] + (comps[-1] + 2,))


def _tail_of(components: tuple[int, ...]) -> int:
    """Index where the sibling *tail* of a label starts.

    A label is ``parent-prefix + tail`` where the tail has the shape
    ``even* odd``: a (possibly empty) run of even caret components followed
    by exactly one odd component.  The parse is unambiguous: scan backwards
    over the trailing even run.
    """
    k = len(components) - 1  # final component, always odd
    while k > 0 and components[k - 1] % 2 == 0:
        k -= 1
    return k


def _tail_after(tail: tuple[int, ...]) -> tuple[int, ...]:
    """A minimal tail strictly greater than ``tail`` at the same level."""
    c = tail[0] + 1
    return (c,) if c % 2 == 1 else (c, 1)


def _tail_before(tail: tuple[int, ...]) -> tuple[int, ...]:
    """A minimal tail strictly smaller than ``tail`` at the same level."""
    c = tail[0] - 1
    return (c,) if c % 2 == 1 else (c, 1)


def _tail_between(a: tuple[int, ...], b: tuple[int, ...]) -> tuple[int, ...]:
    """A tail strictly between tails ``a < b`` (ORDPATH careting)."""
    if not a < b:
        raise ValueError(f"tails out of order: {a} >= {b}")
    i = 0
    while a[i] == b[i]:
        i += 1  # equal components are even carets; both tails continue
    common = a[:i]
    lo, hi = a[i], b[i]
    if hi - lo >= 2:
        # room for a component strictly between; prefer an odd one
        c = lo + 1
        if c % 2 == 0:
            c += 1
        if c < hi:
            return common + (c,)
        return common + (lo + 1, 1)
    # adjacent components (hi == lo + 1): descend on one side
    if lo % 2 == 0:
        # a continues after the even caret: extend past a's remainder
        return common + (lo,) + _tail_after(a[i + 1 :])
    # a ends at the odd lo; go under b's even caret hi
    return common + (hi,) + _tail_before(b[i + 1 :])


def label_between(left: OrdPath | None, right: OrdPath | None) -> OrdPath:
    """Produce a fresh sibling label strictly between two existing ones.

    This is ORDPATH "careting in": the result orders strictly between
    ``left`` and ``right``, sits at the same tree level, and the scheme
    remains insertable forever (no relabeling).  ``left is None`` means
    "before the first sibling", ``right is None`` means "after the last
    sibling".  Both ``None`` is invalid (no context to attach to).
    """
    if left is None:
        if right is None:
            raise ValueError("label_between needs at least one neighbour")
        k = _tail_of(right.components)
        return OrdPath(right.components[:k] + _tail_before(right.components[k:]))
    if right is None:
        k = _tail_of(left.components)
        return OrdPath(left.components[:k] + _tail_after(left.components[k:]))
    kl = _tail_of(left.components)
    kr = _tail_of(right.components)
    if kl != kr or left.components[:kl] != right.components[:kr]:
        raise ValueError(f"label_between: {left!r} and {right!r} are not siblings")
    if not left < right:
        raise ValueError(f"label_between: neighbours out of order ({left!r} >= {right!r})")
    prefix = left.components[:kl]
    tail = _tail_between(left.components[kl:], right.components[kr:])
    return OrdPath(prefix + tail)
