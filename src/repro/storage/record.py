"""Node records: core nodes and border nodes (paper Sec. 3.4).

Each disk page stores a directory of records.  Two record types exist:

* :class:`CoreRecord` — a logical document node (element / text /
  attribute / document root).  Links to its parent and children are
  *slot numbers on the same page*; a link that crosses the cluster border
  points at a :class:`BorderRecord` instead.
* :class:`BorderRecord` — one end of an inter-cluster edge.  It stores the
  NodeID of the companion border record on the opposite side (the paper's
  ``target(x)``) and the slot of the local core node it connects to (the
  parent, for a downward border; the subtree root, for an upward border).

Record "sizes" are simulated byte footprints used by the importer to
decide when a page is full; no real serialization happens.

The batched datapath mirrors these records into parallel arrays (see
:mod:`repro.storage.colview`): ``CoreRecord.kind``/``tag``/``parent_slot``/
``child_slots`` project into the ``kinds``/``tags``/``parents`` columns and
the CSR child table; ``BorderRecord.local_slot``/``down``/``continuation``/
``child_slots`` project into the border sentinel kind, ``parents``, the
``border_down``/``border_cont`` flags and the same CSR table.  Any new
navigational field added here must be mirrored there (or the batched
kernel must fall back for queries that read it).
"""

from __future__ import annotations

from repro.model.tree import Kind
from repro.storage.nodeid import NodeID
from repro.storage.ordpath import OrdPath

#: Fixed per-record header: kind/tag/ordpath bookkeeping.
CORE_RECORD_HEADER = 16
#: Bytes per child link in a core record.
CHILD_LINK_SIZE = 4
#: Bytes per ORDPATH component (simulated compressed label).
ORDPATH_COMPONENT_SIZE = 2
#: Components beyond this add no simulated bytes: labels are stored
#: prefix-compressed against the page-local parent, so deep documents do
#: not blow up record sizes (the ORDPATH paper's encoding behaves
#: similarly).
ORDPATH_MAX_COMPONENTS = 32
#: Fixed size of a border record (companion NodeID + local link).
BORDER_RECORD_SIZE = 12


def ordpath_stored_size(n_components: int) -> int:
    """Simulated byte footprint of an ORDPATH label with ``n_components``."""
    return ORDPATH_COMPONENT_SIZE * min(n_components, ORDPATH_MAX_COMPONENTS)


class CoreRecord:
    """A document node as stored on a page."""

    __slots__ = ("kind", "tag", "ordpath", "parent_slot", "child_slots", "value")

    #: Class attribute, not a property: the navigation fast paths test it
    #: per record and a descriptor call there is measurable.
    is_border = False

    def __init__(
        self,
        kind: Kind,
        tag: int,
        ordpath: OrdPath,
        parent_slot: int,
        value: str | None = None,
    ) -> None:
        self.kind = kind
        self.tag = tag
        self.ordpath = ordpath
        #: Slot of the parent on this page (core or up-border); -1 only for
        #: the stored document root, which has no parent anywhere.
        self.parent_slot = parent_slot
        #: Slots of children in document order (core or down-border records).
        self.child_slots: list[int] = []
        self.value = value

    def size(self) -> int:
        """Simulated byte footprint of this record."""
        return (
            CORE_RECORD_HEADER
            + CHILD_LINK_SIZE * len(self.child_slots)
            + ordpath_stored_size(len(self.ordpath.components))
            + (len(self.value) if self.value is not None else 0)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CoreRecord(kind={self.kind.name}, tag={self.tag}, children={len(self.child_slots)})"


class BorderRecord:
    """One end of an inter-cluster edge.

    Two flavours exist:

    * a plain border models a parent-child edge whose endpoints live in
      different clusters;
    * a *continuation* border splits a long child list across clusters
      (the storage-level equivalent of Natix proxy/helper nodes): the
      downward side sits inside the parent's child list, the upward side
      (``child_slots`` is not None) carries the remainder of the list.
    """

    __slots__ = ("companion", "local_slot", "down", "continuation", "child_slots")

    is_border = True

    def __init__(
        self,
        companion: NodeID | None,
        local_slot: int,
        down: bool,
        continuation: bool = False,
        child_slots: list[int] | None = None,
    ) -> None:
        #: NodeID of the border record on the opposite side of the edge.
        #: ``None`` only transiently during import, before back-patching.
        self.companion = companion
        #: Slot of the local core node this border connects to: the parent
        #: core node for a downward border, the subtree root for an upward
        #: border (-1 for the upward side of a continuation, whose logical
        #: parent lives in the other cluster).
        self.local_slot = local_slot
        #: True if the edge leads to a child cluster (downward).
        self.down = down
        #: True if this border splits a child list rather than a tree edge.
        self.continuation = continuation
        #: For the upward side of a continuation: the remainder of the
        #: parent's child list (core slots / border slots on this page).
        self.child_slots = child_slots

    def target(self) -> NodeID:
        """The companion border's NodeID — the paper's ``target(x)``."""
        if self.companion is None:
            raise ValueError("border record not back-patched")
        return self.companion

    def size(self) -> int:
        """Simulated byte footprint of this record."""
        extra = CHILD_LINK_SIZE * len(self.child_slots) if self.child_slots else 0
        return BORDER_RECORD_SIZE + extra

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        direction = "down" if self.down else "up"
        kind = "continuation " if self.continuation else ""
        return (
            f"BorderRecord({kind}{direction}, companion={self.companion}, "
            f"local={self.local_slot})"
        )
