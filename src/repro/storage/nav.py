"""Intra-cluster navigational primitives (paper Sec. 3.5).

The paper requires navigation primitives that "efficiently return nodes
using intra-cluster navigation only", yielding border nodes where the
axis would leave the cluster.  This module provides exactly that, as
generators over page records:

* :func:`iter_axis` — apply an axis from a core node; yields
  ``(is_border, slot)`` pairs, never crossing a page boundary.
* :func:`iter_resume` — continue a *paused* step inside the cluster it
  crossed into; the entry point is the border record the crossing edge
  targets.  The effective semantics per axis are documented in
  :data:`repro.axes.RESUME_AXIS`.
* :func:`speculative_entries` — the border records of a page at which a
  given axis could enter, used by XScan/XSchedule to generate
  left-incomplete path instances (paper Sec. 5.4.3).

Every traversed intra-cluster edge charges one ``intra_hop`` through the
``charge`` callback; node tests are applied (and charged) by the caller,
because border candidates cannot be tested before crossing.

This module is the *semantic reference* for the batched datapath:
:class:`repro.storage.colview.ColumnView` replicates these generators'
candidate orders, charge placements and corrupt-store exceptions as
eager array computations.  Any change to an iteration order or a
``charge()`` site here must be mirrored there (the batched/scalar
equivalence property test pins the contract bit-for-bit).
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.axes import Axis
from repro.errors import StorageError, StoreCorruptError
from repro.storage.page import Page
from repro.storage.record import BorderRecord, CoreRecord

#: A navigation result: (is_border, slot-on-this-page).
NavResult = tuple[bool, int]
Charge = Callable[[], None]


# --------------------------------------------------------------------- axis


def iter_axis(page: Page, slot: int, axis: Axis, charge: Charge) -> Iterator[NavResult]:
    """Apply ``axis`` from the core node at ``slot``, intra-cluster only."""
    record = page.record(slot)
    if not isinstance(record, CoreRecord):
        raise StorageError(f"iter_axis from non-core slot {slot} on page {page.page_no}")
    if axis is Axis.SELF:
        yield (False, slot)
    elif axis is Axis.CHILD or axis is Axis.ATTRIBUTE:
        yield from _iter_child_list(page, record.child_slots, charge)
    elif axis is Axis.DESCENDANT:
        yield from _iter_descendants(page, record, charge)
    elif axis is Axis.DESCENDANT_OR_SELF:
        yield (False, slot)
        yield from _iter_descendants(page, record, charge)
    elif axis is Axis.PARENT:
        yield from _iter_parent(page, record, charge)
    elif axis is Axis.ANCESTOR:
        yield from _iter_ancestors(page, record, charge)
    elif axis is Axis.ANCESTOR_OR_SELF:
        yield (False, slot)
        yield from _iter_ancestors(page, record, charge)
    elif axis is Axis.FOLLOWING_SIBLING:
        yield from _iter_siblings(page, slot, record, charge, forward=True)
    elif axis is Axis.PRECEDING_SIBLING:
        yield from _iter_siblings(page, slot, record, charge, forward=False)
    else:  # pragma: no cover - exhaustive over Axis
        raise StorageError(f"unsupported axis {axis}")


def _iter_child_list(page: Page, slots: list[int], charge: Charge) -> Iterator[NavResult]:
    records = page.records
    for child_slot in slots:
        charge()
        yield (records[child_slot].is_border, child_slot)


def _iter_descendants(page: Page, record: CoreRecord, charge: Charge) -> Iterator[NavResult]:
    """Preorder DFS below ``record`` within this page."""
    records = page.records
    stack = record.child_slots[::-1]
    pop = stack.pop
    while stack:
        child_slot = pop()
        charge()
        entry = records[child_slot]
        if entry.is_border:
            yield (True, child_slot)
            continue
        yield (False, child_slot)
        children = entry.child_slots
        if children:
            stack.extend(children[::-1])


def _iter_parent(page: Page, record: CoreRecord, charge: Charge) -> Iterator[NavResult]:
    parent_slot = record.parent_slot
    if parent_slot < 0:
        return
    charge()
    entry = page.record(parent_slot)
    yield (isinstance(entry, BorderRecord), parent_slot)


def _iter_ancestors(page: Page, record: CoreRecord, charge: Charge) -> Iterator[NavResult]:
    records = page.records
    current = record
    while True:
        parent_slot = current.parent_slot
        if parent_slot < 0:
            return
        charge()
        entry = records[parent_slot]
        if entry.is_border:
            yield (True, parent_slot)
            return
        yield (False, parent_slot)
        current = entry


def _iter_siblings(
    page: Page, slot: int, record: CoreRecord, charge: Charge, forward: bool
) -> Iterator[NavResult]:
    """Siblings after/before ``slot`` via the holder's child list.

    The holder is the parent core record or a continuation proxy.  If the
    node is a cluster root (parent link is an up-border), the whole
    sibling scan happens across the border; if the holder is a proxy, the
    part of the child list stored in other clusters is reached through the
    proxy's companion.
    """
    parent_slot = record.parent_slot
    if parent_slot < 0:
        return
    charge()
    holder = page.record(parent_slot)
    if isinstance(holder, BorderRecord) and not holder.continuation:
        # cluster root: siblings live with the parent, across this border
        yield (True, parent_slot)
        return
    slots = holder.child_slots if isinstance(holder, BorderRecord) else holder.child_slots
    if slots is None:
        raise StoreCorruptError(
            f"holder at page {page.page_no} slot {parent_slot} has no child list"
        )
    index = slots.index(slot)
    if forward:
        yield from _iter_child_list(page, slots[index + 1 :], charge)
    else:
        yield from _iter_child_list(page, list(reversed(slots[:index])), charge)
        if isinstance(holder, BorderRecord):
            # earlier chunks of the child list live across the proxy's edge
            charge()
            yield (True, parent_slot)


# ------------------------------------------------------------------- resume


def iter_resume(page: Page, entry_slot: int, axis: Axis, charge: Charge) -> Iterator[NavResult]:
    """Continue a paused ``axis`` step at the border record ``entry_slot``.

    ``entry_slot`` is the *target side* of the crossing: an up-border or
    continuation proxy for downward axes, a down-border for upward and
    sibling crossings.  Candidates yielded here are results of the same
    location step that paused in the source cluster.
    """
    entry = page.record(entry_slot)
    if not isinstance(entry, BorderRecord):
        raise StorageError(f"iter_resume at non-border slot {entry_slot}")

    if axis in (Axis.CHILD, Axis.ATTRIBUTE):
        if entry.continuation:
            if entry.child_slots is None:
                raise StoreCorruptError(
                    f"continuation proxy at page {page.page_no} slot {entry_slot} "
                    "has no child list"
                )
            yield from _iter_child_list(page, entry.child_slots, charge)
        else:
            charge()
            yield (False, entry.local_slot)
    elif axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
        if entry.continuation:
            if entry.child_slots is None:
                raise StoreCorruptError(
                    f"continuation proxy at page {page.page_no} slot {entry_slot} "
                    "has no child list"
                )
            for is_border, slot in _iter_child_list(page, entry.child_slots, charge):
                if is_border:
                    yield (True, slot)
                else:
                    child = page.record(slot)
                    if not isinstance(child, CoreRecord):
                        raise StoreCorruptError(
                            f"proxy child at page {page.page_no} slot {slot} "
                            "is not a core record"
                        )
                    yield (False, slot)
                    yield from _iter_descendants(page, child, charge)
        else:
            charge()
            root = page.record(entry.local_slot)
            if not isinstance(root, CoreRecord):
                raise StoreCorruptError(
                    f"up-border at page {page.page_no} slot {entry_slot} points at "
                    f"slot {entry.local_slot}, which is not a core record"
                )
            yield (False, entry.local_slot)
            yield from _iter_descendants(page, root, charge)
    elif axis is Axis.SELF:
        charge()
        yield (False, entry.local_slot)
    elif axis in (Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        yield from _resume_upward(page, entry, axis, charge)
    elif axis is Axis.FOLLOWING_SIBLING:
        yield from _resume_sibling(page, entry_slot, entry, charge, forward=True)
    elif axis is Axis.PRECEDING_SIBLING:
        yield from _resume_sibling(page, entry_slot, entry, charge, forward=False)
    else:  # pragma: no cover - exhaustive over Axis
        raise StorageError(f"unsupported resume axis {axis}")


def _resume_upward(
    page: Page, entry: BorderRecord, axis: Axis, charge: Charge
) -> Iterator[NavResult]:
    """Resume parent/ancestor at the downward border in the parent cluster.

    ``entry.local_slot`` is the holder: the parent core record, or a
    continuation proxy when the crossing edge hangs off a split child
    list — in that case the true parent is yet another cluster away.
    """
    charge()
    holder_slot = entry.local_slot
    holder = page.record(holder_slot)
    if isinstance(holder, BorderRecord):
        # holder is a proxy: the parent core node lies across its edge
        yield (True, holder_slot)
        return
    if axis is Axis.PARENT:
        yield (False, holder_slot)
        return
    # ancestor / ancestor-or-self: the holder and its ancestors all qualify
    yield (False, holder_slot)
    yield from _iter_ancestors(page, holder, charge)


def _resume_sibling(
    page: Page, entry_slot: int, entry: BorderRecord, charge: Charge, forward: bool
) -> Iterator[NavResult]:
    """Resume a sibling scan across a border.

    Three entry shapes occur:

    * a plain *upward* border: the crossing edge led to an exiled sibling
      itself (a candidate), so the local subtree root is the result;
    * a *downward* border (plain or continuation): the scan continues in
      the holder's child list, after (forward) or before (backward) the
      border's own position;
    * a continuation *proxy* (upward side): a forward scan enters the next
      chunk of the child list, so all of the proxy's children qualify.
    """
    if not entry.down:
        if not entry.continuation:
            # candidate crossing: the sibling is this cluster's local root
            charge()
            yield (False, entry.local_slot)
            return
        if entry.child_slots is None:
            raise StoreCorruptError(
                f"continuation proxy at page {page.page_no} slot {entry_slot} "
                "has no child list"
            )
        if forward:
            yield from _iter_child_list(page, entry.child_slots, charge)
        else:
            # backward scan entering a previous chunk: all children of the
            # chunk precede the origin, in reverse order; earlier chunks
            # follow through the proxy's own companion if any precede it.
            yield from _iter_child_list(page, list(reversed(entry.child_slots)), charge)
        return
    charge()
    holder = page.record(entry.local_slot)
    slots = holder.child_slots
    if slots is None:
        raise StoreCorruptError(
            f"holder at page {page.page_no} slot {entry.local_slot} has no child list"
        )
    index = slots.index(entry_slot)
    if forward:
        yield from _iter_child_list(page, slots[index + 1 :], charge)
    else:
        yield from _iter_child_list(page, list(reversed(slots[:index])), charge)
        if isinstance(holder, BorderRecord):
            charge()
            yield (True, entry.local_slot)


# -------------------------------------------------------------- speculation


def speculative_entries(page: Page, axis: Axis) -> Iterator[int]:
    """Border slots of ``page`` at which a paused ``axis`` step could enter.

    Used by XScan (and speculative XSchedule) to generate left-incomplete
    path instances: one per entry border per step (paper Sec. 5.4.3).

    A ``self`` step can never pause at a border (it yields only its own
    core node), so no junction for it can ever be proven: no entries.

    The batched datapath serves the same enumeration from the columnar
    view's precomputed border lists
    (:meth:`~repro.storage.colview.ColumnView.entry_slots`); both sides
    must keep yielding ascending slot order and charging nothing.
    """
    if axis is Axis.SELF:
        return
    for slot, record in enumerate(page.records):
        if not isinstance(record, BorderRecord):
            continue
        if axis.is_downward:
            # downward steps enter through upward borders (incl. proxies)
            if not record.down:
                yield slot
        elif axis.is_upward:
            if record.down:
                yield slot
        else:
            # sibling axes can enter through every border kind: plain
            # upward (an exiled sibling candidate), downward (scan resumes
            # in the holder's list) and continuations (next/previous chunk)
            yield slot
