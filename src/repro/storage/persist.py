"""Binary persistence for document stores.

Serialises a :class:`~repro.storage.store.DocumentStore` — tag
dictionary, pages with their records, and the document catalog — to a
compact binary file and back.  The format is a custom struct-based
layout (no pickle: the on-disk image must be stable, inspectable, and
safe to load).

Format (all integers little-endian)::

    header:   magic "RPRO" | u16 version | u32 page_size
              | u64 checkpoint_lsn | u32 body_crc32 | u64 body_len (v3+)
    body:     tags | pages | catalog                 (crc32-covered in v3+)
    tags:     u32 count | count x (u16 len | utf-8 bytes)
    pages:    u32 count | count x page
    page:     u32 page_no | u32 used_bytes | u32 n_slots | n_slots x record
    record:   u8 kind_tag:
                0 tombstone
                1 core: u8 kind | u32 tag | ordpath | i32 parent
                        | u32 n_children | children | value?
                2 border: u64 companion+1 (0 = unpatched) | i32 local
                        | u8 flags (1=down, 2=continuation)
                        | u32 n_children+1 (0 = no list) | children
    ordpath:  u16 n_components | n_components x i32
    value:    u8 present | (u32 len | utf-8 bytes)?
    catalog:  u32 count | count x document
    document: str name | u64 root | u32 n_pages | page_nos
              | u64 n_nodes | u32 borders | u32 continuations
              | synopsis                                     (version >= 2)
              | pathsummary                                  (version >= 4)
    synopsis: u8 present | (u32 n_rows | n_rows x row)?
    row:      u32 page_no | bitset tag_bits | bitset entry_bits
              | u8 flags | u32 occupancy
    bitset:   u16 n_bytes | n_bytes little-endian bytes
    pathsummary: u8 present | (u32 n_pages | n_pages x pagerow)?
    pagerow:  u32 page_no | u32 n_paths | n_paths x path
    path:     u16 chain_len | chain_len x u32 tag | u8 kind | u32 count

Version 4 appends the per-document path summary (per-page path rows,
from which counts and cluster postings are re-aggregated at load); the
cluster postings themselves are never serialised — page rows are the
canonical decomposition, exactly as for the synopsis.  Version 3 adds
durability to the *file*, not the layout: the body bytes
are identical to version 2, but the header carries the checkpoint LSN
(see :mod:`repro.storage.wal`), a CRC32 over the body, and the body
length — so a torn or bit-rotted checkpoint is *detected* at load time
(:class:`~repro.errors.StoreCorruptError`) instead of silently parsed.
:func:`save_store` is atomic: the image is written to ``path + ".tmp"``,
fsynced, then installed with :func:`os.replace`, so a crash mid-save
leaves the previous checkpoint intact.  Version 1 files (no synopsis
block) and version 2 files (no checksum) still load; short reads at any
offset raise typed :class:`~repro.errors.StoreCorruptError` with offset
context, never a bare :class:`struct.error`.

Statistics and import results are not persisted; use
:func:`repro.storage.store.recollect_statistics` /
:func:`~repro.storage.store.recollect_synopsis` /
:func:`~repro.storage.store.recollect_pathsummary` after loading if the
AUTO plan chooser and the pruning layers should have them.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from typing import TYPE_CHECKING, BinaryIO

from repro.errors import StorageError, StoreCorruptError
from repro.model.tree import Kind
from repro.sim.faults import (
    CRASH_CHECKPOINT_RENAME,
    CRASH_CHECKPOINT_TEMP,
    CRASH_PAGE_WRITE,
)
from repro.storage.nodeid import NodeID
from repro.storage.ordpath import OrdPath
from repro.storage.page import Page
from repro.storage.record import BorderRecord, CoreRecord
from repro.storage.pathsummary import PathSummary
from repro.storage.store import DocumentStore, StoredDocument
from repro.storage.synopsis import ClusterSynopsis

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.faults import CrashInjector

_MAGIC = b"RPRO"
_VERSION = 4
_MIN_VERSION = 1

#: v3 header tail after ``magic | u16 version | u32 page_size``:
#: ``u64 checkpoint_lsn | u32 body_crc32 | u64 body_len``.
_HEADER_V3 = struct.Struct("<QIQ")


def _read_exact(inp: BinaryIO, n: int, what: str) -> bytes:
    """Read exactly ``n`` bytes or raise a typed corruption error.

    Every read in this module funnels through here so a truncated file
    surfaces as :class:`StoreCorruptError` with offset context instead
    of a bare :class:`struct.error` from an undersized buffer.
    """
    data = inp.read(n)
    if len(data) != n:
        offset = inp.tell() - len(data)
        raise StoreCorruptError(
            f"truncated store data: wanted {n} byte(s) of {what} at "
            f"offset {offset}, got {len(data)}"
        )
    return data


def _write_str(out: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    out.write(struct.pack("<H", len(data)))
    out.write(data)


def _read_str(inp: BinaryIO, what: str) -> str:
    (length,) = struct.unpack("<H", _read_exact(inp, 2, what))
    return _read_exact(inp, length, what).decode("utf-8")


def _write_value(out: BinaryIO, value: str | None) -> None:
    if value is None:
        out.write(b"\x00")
    else:
        data = value.encode("utf-8")
        out.write(b"\x01")
        out.write(struct.pack("<I", len(data)))
        out.write(data)


def _read_value(inp: BinaryIO) -> str | None:
    present = _read_exact(inp, 1, "value marker")
    if present == b"\x00":
        return None
    (length,) = struct.unpack("<I", _read_exact(inp, 4, "value length"))
    return _read_exact(inp, length, "value bytes").decode("utf-8")


def _write_bitset(out: BinaryIO, bits: int) -> None:
    data = bits.to_bytes((bits.bit_length() + 7) // 8, "little")
    out.write(struct.pack("<H", len(data)))
    out.write(data)


def _read_bitset(inp: BinaryIO) -> int:
    (length,) = struct.unpack("<H", _read_exact(inp, 2, "bitset length"))
    return int.from_bytes(_read_exact(inp, length, "bitset bytes"), "little")


def _write_synopsis(out: BinaryIO, synopsis: ClusterSynopsis | None) -> None:
    if synopsis is None:
        out.write(b"\x00")
        return
    out.write(b"\x01")
    rows = synopsis.rows()
    out.write(struct.pack("<I", len(rows)))
    for page_no in sorted(rows):
        tag_bits, entry_bits, flags, occupancy = rows[page_no]
        out.write(struct.pack("<I", page_no))
        _write_bitset(out, tag_bits)
        _write_bitset(out, entry_bits)
        out.write(struct.pack("<BI", flags, occupancy))


def _read_synopsis(inp: BinaryIO) -> ClusterSynopsis | None:
    present = _read_exact(inp, 1, "synopsis marker")
    if present == b"\x00":
        return None
    (n_rows,) = struct.unpack("<I", _read_exact(inp, 4, "synopsis row count"))
    rows: dict[int, tuple[int, int, int, int]] = {}
    for _ in range(n_rows):
        (page_no,) = struct.unpack("<I", _read_exact(inp, 4, "synopsis row header"))
        tag_bits = _read_bitset(inp)
        entry_bits = _read_bitset(inp)
        flags, occupancy = struct.unpack("<BI", _read_exact(inp, 5, "synopsis row"))
        rows[page_no] = (tag_bits, entry_bits, flags, occupancy)
    return ClusterSynopsis.from_rows(rows)


def _write_pathsummary(out: BinaryIO, summary: PathSummary | None) -> None:
    if summary is None:
        out.write(b"\x00")
        return
    out.write(b"\x01")
    pages = summary.page_rows()
    out.write(struct.pack("<I", len(pages)))
    for page_no in sorted(pages):
        rows = pages[page_no]
        out.write(struct.pack("<II", page_no, len(rows)))
        for chain, kind in sorted(rows):
            out.write(struct.pack("<H", len(chain)))
            if chain:
                out.write(struct.pack(f"<{len(chain)}I", *chain))
            out.write(struct.pack("<BI", kind, rows[(chain, kind)]))


def _read_pathsummary(inp: BinaryIO) -> PathSummary | None:
    present = _read_exact(inp, 1, "path summary marker")
    if present == b"\x00":
        return None
    (n_pages,) = struct.unpack("<I", _read_exact(inp, 4, "path summary page count"))
    pages: dict[int, dict[tuple[tuple[int, ...], int], int]] = {}
    for _ in range(n_pages):
        page_no, n_paths = struct.unpack(
            "<II", _read_exact(inp, 8, "path summary page header")
        )
        rows: dict[tuple[tuple[int, ...], int], int] = {}
        for _ in range(n_paths):
            (chain_len,) = struct.unpack(
                "<H", _read_exact(inp, 2, "path chain length")
            )
            chain = struct.unpack(
                f"<{chain_len}I",
                _read_exact(inp, 4 * chain_len, "path chain tags"),
            )
            kind, count = struct.unpack(
                "<BI", _read_exact(inp, 5, "path row")
            )
            rows[(chain, kind)] = count
        pages[page_no] = rows
    return PathSummary.from_page_rows(pages)


def _write_record(out: BinaryIO, record) -> None:
    if record is None:
        out.write(b"\x00")
        return
    if isinstance(record, CoreRecord):
        out.write(b"\x01")
        out.write(struct.pack("<BIi", int(record.kind), record.tag, record.parent_slot))
        components = record.ordpath.components
        out.write(struct.pack("<H", len(components)))
        out.write(struct.pack(f"<{len(components)}i", *components))
        out.write(struct.pack("<I", len(record.child_slots)))
        if record.child_slots:
            out.write(struct.pack(f"<{len(record.child_slots)}I", *record.child_slots))
        _write_value(out, record.value)
        return
    if not isinstance(record, BorderRecord):
        raise StoreCorruptError(
            f"unserialisable record type {type(record).__name__} in segment"
        )
    out.write(b"\x02")
    companion = 0 if record.companion is None else int(record.companion) + 1
    flags = (1 if record.down else 0) | (2 if record.continuation else 0)
    out.write(struct.pack("<QiB", companion, record.local_slot, flags))
    if record.child_slots is None:
        out.write(struct.pack("<I", 0))
    else:
        out.write(struct.pack("<I", len(record.child_slots) + 1))
        if record.child_slots:
            out.write(struct.pack(f"<{len(record.child_slots)}I", *record.child_slots))


def _read_record(inp: BinaryIO):
    kind_tag = _read_exact(inp, 1, "record tag")
    if kind_tag == b"\x00":
        return None
    if kind_tag == b"\x01":
        kind, tag, parent_slot = struct.unpack(
            "<BIi", _read_exact(inp, 9, "core record header")
        )
        (n_components,) = struct.unpack(
            "<H", _read_exact(inp, 2, "ordpath length")
        )
        components = struct.unpack(
            f"<{n_components}i",
            _read_exact(inp, 4 * n_components, "ordpath components"),
        )
        record = CoreRecord(Kind(kind), tag, OrdPath(components), parent_slot)
        (n_children,) = struct.unpack(
            "<I", _read_exact(inp, 4, "child-slot count")
        )
        if n_children:
            record.child_slots = list(
                struct.unpack(
                    f"<{n_children}I",
                    _read_exact(inp, 4 * n_children, "child slots"),
                )
            )
        record.value = _read_value(inp)
        return record
    if kind_tag == b"\x02":
        companion_raw, local_slot, flags = struct.unpack(
            "<QiB", _read_exact(inp, 13, "border record header")
        )
        (n_children_raw,) = struct.unpack(
            "<I", _read_exact(inp, 4, "border child-slot count")
        )
        child_slots = None
        if n_children_raw:
            n_children = n_children_raw - 1
            child_slots = list(
                struct.unpack(
                    f"<{n_children}I",
                    _read_exact(inp, 4 * n_children, "border child slots"),
                )
            )
        return BorderRecord(
            None if companion_raw == 0 else NodeID(companion_raw - 1),
            local_slot,
            down=bool(flags & 1),
            continuation=bool(flags & 2),
            child_slots=child_slots,
        )
    raise StoreCorruptError(f"corrupt store file: unknown record tag {kind_tag!r}")


def _write_body(store: DocumentStore, out: BinaryIO, version: int) -> None:
    """Serialise tags, pages and catalog for the given format version.

    The v2/v3 bodies are byte-identical; v4 appends the path-summary
    block after each document's synopsis.  ``version`` is threaded in
    (rather than read from the module) so the caller resolves the
    monkeypatchable ``_VERSION`` exactly once per save.
    """
    names = store.tags.names()
    out.write(struct.pack("<I", len(names)))
    for name in names:
        _write_str(out, name)
    out.write(struct.pack("<I", store.segment.n_pages))
    for page in store.segment.pages():
        out.write(struct.pack("<III", page.page_no, page.used_bytes, len(page.records)))
        for record in page.records:
            _write_record(out, record)
    out.write(struct.pack("<I", len(store.documents)))
    for doc in store.documents.values():
        _write_str(out, doc.name)
        out.write(struct.pack("<QI", int(doc.root), len(doc.page_nos)))
        out.write(struct.pack(f"<{len(doc.page_nos)}I", *doc.page_nos))
        out.write(
            struct.pack("<QII", doc.n_nodes, doc.n_border_pairs, doc.n_continuations)
        )
        _write_synopsis(out, doc.synopsis)
        if version >= 4:
            _write_pathsummary(out, doc.pathsummary)


def _read_body(inp: BinaryIO, version: int, page_size: int) -> DocumentStore:
    """Parse a serialised body into a fresh store (any format version)."""
    store = DocumentStore(page_size)
    (n_tags,) = struct.unpack("<I", _read_exact(inp, 4, "tag count"))
    for index in range(n_tags):
        name = _read_str(inp, "tag name")
        interned = store.tags.intern(name)
        if interned != index:
            raise StoreCorruptError(
                f"corrupt store file: tag {name!r} maps to {interned}, expected {index}"
            )
    (n_pages,) = struct.unpack("<I", _read_exact(inp, 4, "page count"))
    for _ in range(n_pages):
        page_no, used_bytes, n_slots = struct.unpack(
            "<III", _read_exact(inp, 12, "page header")
        )
        page = Page(page_no, page_size)
        for slot in range(n_slots):
            record = _read_record(inp)
            page.records.append(record)
            if record is None:
                # scanned ascending, so the rebuilt free list is already
                # in the canonical (sorted) order Page maintains live
                page.free_slots.append(slot)
        page.used_bytes = used_bytes
        store.segment.adopt(page)
    (n_documents,) = struct.unpack("<I", _read_exact(inp, 4, "document count"))
    for _ in range(n_documents):
        name = _read_str(inp, "document name")
        root, n_page_nos = struct.unpack(
            "<QI", _read_exact(inp, 12, "document header")
        )
        page_nos = list(
            struct.unpack(
                f"<{n_page_nos}I",
                _read_exact(inp, 4 * n_page_nos, "document page numbers"),
            )
        )
        n_nodes, borders, continuations = struct.unpack(
            "<QII", _read_exact(inp, 16, "document counters")
        )
        synopsis = _read_synopsis(inp) if version >= 2 else None
        pathsummary = _read_pathsummary(inp) if version >= 4 else None
        store.documents[name] = StoredDocument(
            name=name,
            root=NodeID(root),
            page_nos=page_nos,
            n_nodes=n_nodes,
            n_border_pairs=borders,
            n_continuations=continuations,
            import_result=None,  # type: ignore[arg-type]
            statistics=None,
            synopsis=synopsis,
            pathsummary=pathsummary,
        )
    return store


def save_store(
    store: DocumentStore, path: str, *, crash: "CrashInjector | None" = None
) -> None:
    """Atomically write the whole store (segment + catalog) to ``path``.

    The image is staged at ``path + ".tmp"``, flushed and fsynced, then
    installed over ``path`` with :func:`os.replace` — a crash at any
    point leaves either the old file or the new file, never a torn mix.
    The v3 header's CRC32 additionally catches a torn *temp* file that a
    later recovery might be pointed at.

    ``crash`` is the deterministic kill switch for recovery tests: body
    chunks (one simulated page each) are routed through
    :meth:`~repro.sim.faults.CrashInjector.write` and the
    ``checkpoint-temp`` / ``checkpoint-rename`` steps are announced, so
    a :class:`~repro.sim.faults.CrashPoint` can die at any stage of the
    checkpoint.
    """
    # _VERSION is read at call time (not closure-bound) so tests can
    # monkeypatch it to synthesize older-format files; the checksum
    # block only exists in v3+ headers and the path-summary block
    # only in v4+ bodies
    version = _VERSION
    body_io = io.BytesIO()
    _write_body(store, body_io, version)
    body = body_io.getvalue()
    page_size = store.segment.page_size
    header = _MAGIC + struct.pack("<HI", version, page_size)
    if version >= 3:
        header += _HEADER_V3.pack(store.checkpoint_lsn, zlib.crc32(body), len(body))
    tmp = path + ".tmp"
    with open(tmp, "wb") as out:
        out.write(header)
        for start in range(0, len(body), page_size):
            chunk = body[start : start + page_size]
            if crash is not None:
                crash.write(CRASH_PAGE_WRITE, out, chunk)
            else:
                out.write(chunk)
        out.flush()
        os.fsync(out.fileno())
    if crash is not None:
        crash.check(CRASH_CHECKPOINT_TEMP)
    os.replace(tmp, path)
    if crash is not None:
        crash.check(CRASH_CHECKPOINT_RENAME)


def load_store(path: str) -> DocumentStore:
    """Load a store previously written by :func:`save_store`.

    Raises :class:`StorageError` for files that are not store images at
    all, and :class:`StoreCorruptError` (with offset context) for store
    files that are truncated, torn, or fail the v3 body checksum.
    """
    with open(path, "rb") as inp:
        if inp.read(4) != _MAGIC:
            raise StorageError(f"{path} is not a repro store file")
        version, page_size = struct.unpack(
            "<HI", _read_exact(inp, 6, "store header")
        )
        if not _MIN_VERSION <= version <= _VERSION:
            raise StorageError(f"unsupported store version {version}")
        checkpoint_lsn = 0
        if version >= 3:
            checkpoint_lsn, body_crc, body_len = _HEADER_V3.unpack(
                _read_exact(inp, _HEADER_V3.size, "store header checksum block")
            )
            body = _read_exact(inp, body_len, "store body")
            if zlib.crc32(body) != body_crc:
                raise StoreCorruptError(
                    f"store body checksum mismatch in {path}: the checkpoint "
                    "image is torn or damaged"
                )
            src: BinaryIO = io.BytesIO(body)
        else:
            src = inp
        store = _read_body(src, version, page_size)
        store.checkpoint_lsn = checkpoint_lsn
        return store
