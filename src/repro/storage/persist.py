"""Binary persistence for document stores.

Serialises a :class:`~repro.storage.store.DocumentStore` — tag
dictionary, pages with their records, and the document catalog — to a
compact binary file and back.  The format is a custom struct-based
layout (no pickle: the on-disk image must be stable, inspectable, and
safe to load).

Format (all integers little-endian)::

    header:   magic "RPRO" | u16 version | u32 page_size
    tags:     u32 count | count x (u16 len | utf-8 bytes)
    pages:    u32 count | count x page
    page:     u32 page_no | u32 used_bytes | u32 n_slots | n_slots x record
    record:   u8 kind_tag:
                0 tombstone
                1 core: u8 kind | u32 tag | ordpath | i32 parent
                        | u32 n_children | children | value?
                2 border: u64 companion+1 (0 = unpatched) | i32 local
                        | u8 flags (1=down, 2=continuation)
                        | u32 n_children+1 (0 = no list) | children
    ordpath:  u16 n_components | n_components x i32
    value:    u8 present | (u32 len | utf-8 bytes)?
    catalog:  u32 count | count x document
    document: str name | u64 root | u32 n_pages | page_nos
              | u64 n_nodes | u32 borders | u32 continuations
              | synopsis                                     (version >= 2)
    synopsis: u8 present | (u32 n_rows | n_rows x row)?
    row:      u32 page_no | bitset tag_bits | bitset entry_bits
              | u8 flags | u32 occupancy
    bitset:   u16 n_bytes | n_bytes little-endian bytes

Version 1 files (no synopsis block) still load; their documents come
back with ``synopsis=None``.  Statistics and import results are not
persisted; use :func:`repro.storage.store.recollect_statistics` /
:func:`~repro.storage.store.recollect_synopsis` after loading if the
AUTO plan chooser and the pruning layers should have them.
"""

from __future__ import annotations

import struct
from typing import BinaryIO

from repro.errors import StorageError, StoreCorruptError
from repro.model.tree import Kind
from repro.storage.nodeid import NodeID
from repro.storage.ordpath import OrdPath
from repro.storage.page import Page
from repro.storage.record import BorderRecord, CoreRecord
from repro.storage.store import DocumentStore, StoredDocument
from repro.storage.synopsis import ClusterSynopsis

_MAGIC = b"RPRO"
_VERSION = 2
_MIN_VERSION = 1


def _write_str(out: BinaryIO, text: str) -> None:
    data = text.encode("utf-8")
    out.write(struct.pack("<H", len(data)))
    out.write(data)


def _read_str(inp: BinaryIO) -> str:
    (length,) = struct.unpack("<H", inp.read(2))
    return inp.read(length).decode("utf-8")


def _write_value(out: BinaryIO, value: str | None) -> None:
    if value is None:
        out.write(b"\x00")
    else:
        data = value.encode("utf-8")
        out.write(b"\x01")
        out.write(struct.pack("<I", len(data)))
        out.write(data)


def _read_value(inp: BinaryIO) -> str | None:
    present = inp.read(1)
    if present == b"\x00":
        return None
    (length,) = struct.unpack("<I", inp.read(4))
    return inp.read(length).decode("utf-8")


def _write_bitset(out: BinaryIO, bits: int) -> None:
    data = bits.to_bytes((bits.bit_length() + 7) // 8, "little")
    out.write(struct.pack("<H", len(data)))
    out.write(data)


def _read_bitset(inp: BinaryIO) -> int:
    (length,) = struct.unpack("<H", inp.read(2))
    return int.from_bytes(inp.read(length), "little")


def _write_synopsis(out: BinaryIO, synopsis: ClusterSynopsis | None) -> None:
    if synopsis is None:
        out.write(b"\x00")
        return
    out.write(b"\x01")
    rows = synopsis.rows()
    out.write(struct.pack("<I", len(rows)))
    for page_no in sorted(rows):
        tag_bits, entry_bits, flags, occupancy = rows[page_no]
        out.write(struct.pack("<I", page_no))
        _write_bitset(out, tag_bits)
        _write_bitset(out, entry_bits)
        out.write(struct.pack("<BI", flags, occupancy))


def _read_synopsis(inp: BinaryIO) -> ClusterSynopsis | None:
    present = inp.read(1)
    if present == b"\x00":
        return None
    (n_rows,) = struct.unpack("<I", inp.read(4))
    rows: dict[int, tuple[int, int, int, int]] = {}
    for _ in range(n_rows):
        (page_no,) = struct.unpack("<I", inp.read(4))
        tag_bits = _read_bitset(inp)
        entry_bits = _read_bitset(inp)
        flags, occupancy = struct.unpack("<BI", inp.read(5))
        rows[page_no] = (tag_bits, entry_bits, flags, occupancy)
    return ClusterSynopsis.from_rows(rows)


def _write_record(out: BinaryIO, record) -> None:
    if record is None:
        out.write(b"\x00")
        return
    if isinstance(record, CoreRecord):
        out.write(b"\x01")
        out.write(struct.pack("<BIi", int(record.kind), record.tag, record.parent_slot))
        components = record.ordpath.components
        out.write(struct.pack("<H", len(components)))
        out.write(struct.pack(f"<{len(components)}i", *components))
        out.write(struct.pack("<I", len(record.child_slots)))
        if record.child_slots:
            out.write(struct.pack(f"<{len(record.child_slots)}I", *record.child_slots))
        _write_value(out, record.value)
        return
    if not isinstance(record, BorderRecord):
        raise StoreCorruptError(
            f"unserialisable record type {type(record).__name__} in segment"
        )
    out.write(b"\x02")
    companion = 0 if record.companion is None else int(record.companion) + 1
    flags = (1 if record.down else 0) | (2 if record.continuation else 0)
    out.write(struct.pack("<QiB", companion, record.local_slot, flags))
    if record.child_slots is None:
        out.write(struct.pack("<I", 0))
    else:
        out.write(struct.pack("<I", len(record.child_slots) + 1))
        if record.child_slots:
            out.write(struct.pack(f"<{len(record.child_slots)}I", *record.child_slots))


def _read_record(inp: BinaryIO):
    kind_tag = inp.read(1)
    if kind_tag == b"\x00":
        return None
    if kind_tag == b"\x01":
        kind, tag, parent_slot = struct.unpack("<BIi", inp.read(9))
        (n_components,) = struct.unpack("<H", inp.read(2))
        components = struct.unpack(f"<{n_components}i", inp.read(4 * n_components))
        record = CoreRecord(Kind(kind), tag, OrdPath(components), parent_slot)
        (n_children,) = struct.unpack("<I", inp.read(4))
        if n_children:
            record.child_slots = list(
                struct.unpack(f"<{n_children}I", inp.read(4 * n_children))
            )
        record.value = _read_value(inp)
        return record
    if kind_tag == b"\x02":
        companion_raw, local_slot, flags = struct.unpack("<QiB", inp.read(13))
        (n_children_raw,) = struct.unpack("<I", inp.read(4))
        child_slots = None
        if n_children_raw:
            n_children = n_children_raw - 1
            child_slots = list(
                struct.unpack(f"<{n_children}I", inp.read(4 * n_children))
            )
        return BorderRecord(
            None if companion_raw == 0 else NodeID(companion_raw - 1),
            local_slot,
            down=bool(flags & 1),
            continuation=bool(flags & 2),
            child_slots=child_slots,
        )
    raise StoreCorruptError(f"corrupt store file: unknown record tag {kind_tag!r}")


def save_store(store: DocumentStore, path: str) -> None:
    """Write the whole store (segment + catalog) to ``path``."""
    with open(path, "wb") as out:
        out.write(_MAGIC)
        out.write(struct.pack("<HI", _VERSION, store.segment.page_size))
        names = store.tags.names()
        out.write(struct.pack("<I", len(names)))
        for name in names:
            _write_str(out, name)
        out.write(struct.pack("<I", store.segment.n_pages))
        for page in store.segment.pages():
            out.write(struct.pack("<III", page.page_no, page.used_bytes, len(page.records)))
            for record in page.records:
                _write_record(out, record)
        out.write(struct.pack("<I", len(store.documents)))
        for doc in store.documents.values():
            _write_str(out, doc.name)
            out.write(struct.pack("<QI", int(doc.root), len(doc.page_nos)))
            out.write(struct.pack(f"<{len(doc.page_nos)}I", *doc.page_nos))
            out.write(
                struct.pack("<QII", doc.n_nodes, doc.n_border_pairs, doc.n_continuations)
            )
            _write_synopsis(out, doc.synopsis)


def load_store(path: str) -> DocumentStore:
    """Load a store previously written by :func:`save_store`."""
    with open(path, "rb") as inp:
        if inp.read(4) != _MAGIC:
            raise StorageError(f"{path} is not a repro store file")
        version, page_size = struct.unpack("<HI", inp.read(6))
        if not _MIN_VERSION <= version <= _VERSION:
            raise StorageError(f"unsupported store version {version}")
        store = DocumentStore(page_size)
        (n_tags,) = struct.unpack("<I", inp.read(4))
        for index in range(n_tags):
            name = _read_str(inp)
            interned = store.tags.intern(name)
            if interned != index:
                raise StoreCorruptError(
                    f"corrupt store file: tag {name!r} maps to {interned}, expected {index}"
                )
        (n_pages,) = struct.unpack("<I", inp.read(4))
        for _ in range(n_pages):
            page_no, used_bytes, n_slots = struct.unpack("<III", inp.read(12))
            page = Page(page_no, page_size)
            for slot in range(n_slots):
                record = _read_record(inp)
                page.records.append(record)
                if record is None:
                    page.free_slots.append(slot)
            page.used_bytes = used_bytes
            store.segment.adopt(page)
        (n_documents,) = struct.unpack("<I", inp.read(4))
        for _ in range(n_documents):
            name = _read_str(inp)
            root, n_page_nos = struct.unpack("<QI", inp.read(12))
            page_nos = list(struct.unpack(f"<{n_page_nos}I", inp.read(4 * n_page_nos)))
            n_nodes, borders, continuations = struct.unpack("<QII", inp.read(16))
            synopsis = _read_synopsis(inp) if version >= 2 else None
            store.documents[name] = StoredDocument(
                name=name,
                root=NodeID(root),
                page_nos=page_nos,
                n_nodes=n_nodes,
                n_border_pairs=borders,
                n_continuations=continuations,
                import_result=None,  # type: ignore[arg-type]
                statistics=None,
                synopsis=synopsis,
            )
        return store
