"""Cost-accounted document export (paper Sec. 7 outlook).

"We also want to investigate how our method can be used to speed up
document export, where our 'path instance' becomes the textual
representation of a whole document (or subtree)."

Two exporters, mirroring the query-side plan split:

* :func:`export_navigate` — depth-first traversal in document order,
  crossing borders eagerly: the Simple method's access pattern (random
  I/O per crossing, revisits when the buffer thrashes).
* :func:`export_scan` — one sequential pass in *physical* order.  Each
  cluster is serialised into text fragments with *holes* at its downward
  borders (the textual analogue of right-incomplete path instances);
  fragments are keyed by their entry border (left-incomplete analogue)
  and stitched together at the end.  Every page is read exactly once, at
  streaming cost, regardless of layout.

Both charge the same simulated costs as query evaluation (swizzles,
I/O, per-node serialisation work), so they can be benchmarked against
each other.
"""

from __future__ import annotations

from repro.algebra.context import EvalContext
from repro.errors import StorageError, StoreCorruptError
from repro.model.tree import Kind
from repro.storage.nodeid import NodeID, make_nodeid, page_of, slot_of
from repro.storage.record import BorderRecord, CoreRecord
from repro.storage.store import StoredDocument
from repro.xml.escape import escape_attribute, escape_text

#: marker prefix for fragment holes (resolved during stitching)
_HOLE = "\x00"


def _serialize_local(
    ctx: EvalContext, page, entry_slot: int, out: list[str], holes: list[NodeID]
) -> None:
    """Serialise the page-local subtree under ``entry_slot`` into ``out``.

    Downward borders become holes: a marker is emitted and the border's
    target NodeID recorded in ``holes``.
    """
    stack: list[object] = [("node", entry_slot)]
    while stack:
        action = stack.pop()
        if action[0] == "close":
            ctx.charge_instance()
            out.append(f"</{action[1]}>")
            continue
        slot = action[1]
        record = page.record(slot)
        ctx.charge_hop()
        if isinstance(record, BorderRecord):
            # a hole to be filled by the fragment behind this border
            out.append(_HOLE)
            holes.append(record.target())
            continue
        if not isinstance(record, CoreRecord):
            raise StoreCorruptError(
                f"tombstone in a live subtree at page {page.page_no} slot {slot}"
            )
        ctx.charge_instance()
        if record.kind == Kind.TEXT:
            out.append(escape_text(record.value or ""))
            continue
        if record.kind == Kind.ATTRIBUTE:
            # attributes are emitted with their owner's start tag below;
            # the importer and the update layer guarantee co-location, so
            # a standalone attribute entry is a corruption
            raise StorageError(
                f"exiled attribute record on page {page.page_no} slot {slot}"
            )
        children = list(record.child_slots)
        attributes: list[int] = []
        content: list[int] = []
        for child_slot in children:
            child = page.record(child_slot)
            if isinstance(child, CoreRecord) and child.kind == Kind.ATTRIBUTE:
                attributes.append(child_slot)
            else:
                content.append(child_slot)
        if record.kind == Kind.DOCUMENT:
            for child_slot in reversed(content):
                stack.append(("node", child_slot))
            continue
        tag = _tag_name(ctx, record)
        out.append(f"<{tag}")
        for attribute_slot in attributes:
            attribute = page.record(attribute_slot)
            ctx.charge_hop()
            ctx.charge_instance()
            out.append(
                f' {_tag_name(ctx, attribute)}="{escape_attribute(attribute.value or "")}"'
            )
        if not content:
            out.append("/>")
            continue
        out.append(">")
        stack.append(("close", tag))
        for child_slot in reversed(content):
            stack.append(("node", child_slot))


def _tag_name(ctx: EvalContext, record: CoreRecord) -> str:
    return ctx.tags.name_of(record.tag)  # type: ignore[attr-defined]


def export_scan(ctx: EvalContext, document: StoredDocument) -> str:
    """Export via one sequential scan with fragment stitching."""
    fragments: dict[NodeID, tuple[list[str], list[NodeID]]] = {}
    root_key = document.root
    for page_no in document.page_nos:
        frame = ctx.buffer.try_fix_resident(page_no)
        if frame is None:
            frame = ctx.buffer.fix(page_no)  # sequential: streaming cost
        ctx.set_current_frame(frame)
        ctx.stats.clusters_visited += 1
        if ctx.tracer is not None:
            ctx.tracer.count("clusters_visited")
        page = frame.page
        for slot, record in enumerate(page.records):
            entry_key: NodeID | None = None
            entry_slot = slot
            if isinstance(record, BorderRecord):
                if record.down or (record.continuation and record.child_slots is None):
                    continue
                # an upward border (or proxy): a fragment entry point
                entry_key = make_nodeid(page_no, slot)
                if record.continuation:
                    # proxy: serialise each member in order
                    out: list[str] = []
                    holes: list[NodeID] = []
                    for member in record.child_slots or ():
                        _serialize_local(ctx, page, member, out, holes)
                    fragments[entry_key] = (out, holes)
                    continue
                entry_slot = record.local_slot
            elif isinstance(record, CoreRecord) and record.kind == Kind.DOCUMENT:
                entry_key = root_key
            if entry_key is None:
                continue
            out = []
            holes = []
            _serialize_local(ctx, page, entry_slot, out, holes)
            fragments[entry_key] = (out, holes)
    ctx.release()
    return _stitch(ctx, fragments, root_key)


def _stitch(
    ctx: EvalContext,
    fragments: dict[NodeID, tuple[list[str], list[NodeID]]],
    root_key: NodeID,
) -> str:
    """Resolve fragment holes from the root down (iteratively)."""
    result: list[str] = []
    if root_key not in fragments:
        raise StorageError("export: document root fragment missing")
    stack: list[tuple[list[str], list[NodeID], int, int]] = []
    out, holes = fragments[root_key]
    position = hole_index = 0
    while True:
        if position >= len(out):
            if not stack:
                return "".join(result)
            out, holes, position, hole_index = stack.pop()
            continue
        piece = out[position]
        position += 1
        if piece != _HOLE:
            result.append(piece)
            continue
        ctx.charge_set_op()
        key = holes[hole_index]
        hole_index += 1
        try:
            child_out, child_holes = fragments[key]
        except KeyError:
            raise StorageError(f"export: missing fragment for border {key}") from None
        stack.append((out, holes, position, hole_index))
        out, holes, position, hole_index = child_out, child_holes, 0, 0


def export_navigate(ctx: EvalContext, document: StoredDocument) -> str:
    """Export by logical-order traversal with eager border crossing."""
    out: list[str] = []
    root = document.root

    def emit_entry(page_no: int, slot: int) -> None:
        frame = ctx.buffer.fix(page_no)
        page = frame.page
        local: list[str] = []
        holes: list[NodeID] = []
        _serialize_local(ctx, page, slot, local, holes)
        ctx.buffer.unfix(frame)
        hole_index = 0
        for piece in local:
            if piece != _HOLE:
                out.append(piece)
                continue
            target = holes[hole_index]
            hole_index += 1
            emit_border(target)

    def emit_border(target: NodeID) -> None:
        frame = ctx.buffer.fix(page_of(target))
        record = frame.page.record(slot_of(target))
        if not isinstance(record, BorderRecord):
            raise StoreCorruptError(
                f"border companion {target!r} does not point at a border record"
            )
        if record.continuation:
            members = list(record.child_slots or ())
            ctx.buffer.unfix(frame)
            for member in members:
                emit_entry(page_of(target), member)
        else:
            local_slot = record.local_slot
            ctx.buffer.unfix(frame)
            emit_entry(page_of(target), local_slot)

    emit_entry(page_of(root), slot_of(root))
    return "".join(out)
