"""Slotted pages and segments.

A :class:`Page` is the unit of clustering and of I/O (paper Sec. 3.3):
whole pages move between disk and the buffer.  A :class:`Segment` is the
on-disk image — an ordered sequence of pages whose index is the physical
position used by the disk model's seek calculation.
"""

from __future__ import annotations

from bisect import insort
from typing import Iterator, Union

from repro.errors import StorageError
from repro.storage.colview import ColumnView
from repro.storage.record import BorderRecord, CoreRecord

Record = Union[CoreRecord, BorderRecord]

#: Fixed page header (simulated bytes).
PAGE_HEADER = 32
#: Slot directory entry per record (simulated bytes).
SLOT_ENTRY = 4


class Page:
    """A slotted page holding core and border records.

    Slots are stable: deleting a record leaves a tombstone (``None``)
    whose slot-directory entry may later be reused by :meth:`add`, so
    NodeIDs of other records are never invalidated.

    ``free_slots`` is kept sorted ascending and :meth:`add` always reuses
    the *highest* free slot.  The order is a durability invariant, not a
    style choice: persistence rebuilds the free list by scanning slots in
    ascending order, so canonicalising the live list the same way makes
    slot reuse — and therefore the NodeIDs minted by replayed updates —
    identical between a store that kept running and one that was
    recovered from a checkpoint (see ``docs/robustness.md``).
    """

    __slots__ = (
        "page_no",
        "capacity",
        "records",
        "used_bytes",
        "free_slots",
        "version",
        "_colview",
    )

    def __init__(self, page_no: int, capacity: int) -> None:
        self.page_no = page_no
        self.capacity = capacity
        self.records: list[Record | None] = []
        self.used_bytes = PAGE_HEADER
        self.free_slots: list[int] = []
        #: mutation counter: bumped by every record/byte mutation, never
        #: by reads.  The WAL manager snapshots it to find pages touched
        #: by an update run (incremental synopsis repair); it is runtime
        #: state and is not persisted.
        self.version = 0
        #: lazily built columnar mirror; None = not built or invalidated
        self._colview: ColumnView | None = None

    def free_bytes(self) -> int:
        return self.capacity - self.used_bytes

    def fits(self, nbytes: int) -> bool:
        """Can a record of ``nbytes`` be added (reusing a tombstone slot
        if one exists, else paying for a new slot entry)?"""
        slot_cost = 0 if self.free_slots else SLOT_ENTRY
        return self.used_bytes + nbytes + slot_cost <= self.capacity

    def add(self, record: Record) -> int:
        """Store ``record``; returns its slot number."""
        nbytes = record.size()
        if not self.fits(nbytes):
            raise StorageError(
                f"page {self.page_no} overflow: {nbytes} bytes requested, "
                f"{self.free_bytes()} free"
            )
        self._colview = None
        self.version += 1
        if self.free_slots:
            # reusing a tombstoned slot mutates the middle of the record
            # array: the columnar mirror must drop here exactly as it does
            # for deletes, or a stale view would keep reporting the slot
            # as a tombstone (update-then-query staleness).  The list is
            # sorted ascending, so pop() reuses the highest free slot —
            # the canonical choice replay reproduces after recovery.
            slot = self.free_slots.pop()
            self.records[slot] = record
            self.used_bytes += nbytes
            return slot
        self.records.append(record)
        self.used_bytes += nbytes + SLOT_ENTRY
        return len(self.records) - 1

    def tombstone(self, slot: int) -> None:
        """Delete the record at ``slot``, reclaiming its bytes; the slot
        entry remains and becomes reusable."""
        record = self.record(slot)
        if record is None:
            raise StorageError(f"double tombstone of slot {slot} on page {self.page_no}")
        self._colview = None
        self.version += 1
        self.used_bytes -= record.size()
        self.records[slot] = None
        insort(self.free_slots, slot)

    def grow(self, extra_bytes: int) -> None:
        """Account for a record growing in place (e.g. a new child link).

        Used by the importer when appending child links to an
        already-placed core record.
        """
        if self.used_bytes + extra_bytes > self.capacity:
            raise StorageError(f"page {self.page_no} overflow while growing a record")
        self.version += 1
        self.used_bytes += extra_bytes

    def record(self, slot: int) -> Record:
        try:
            return self.records[slot]
        except IndexError:
            raise StorageError(f"bad slot {slot} on page {self.page_no}") from None

    def colview(self) -> ColumnView:
        """The page's columnar mirror, built lazily on first hot access."""
        view = self._colview
        if view is None:
            view = self._colview = ColumnView(self)
        return view

    def invalidate_colview(self) -> None:
        """Drop the columnar mirror after a direct record mutation.

        :meth:`add` and :meth:`tombstone` invalidate automatically; any
        code that mutates ``records`` entries, child-slot lists or
        parent/local links *in place* (the update module does) must call
        this itself — the coherence contract of the batched datapath.
        Those in-place mutations bump :attr:`version` through this call,
        which is why it also feeds touched-page detection.
        """
        self._colview = None
        self.version += 1

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Page({self.page_no}, records={len(self.records)}, used={self.used_bytes})"


class Segment:
    """The on-disk page sequence of a document store."""

    def __init__(self, page_size: int) -> None:
        if page_size <= PAGE_HEADER + SLOT_ENTRY:
            raise StorageError(f"page size {page_size} too small")
        self.page_size = page_size
        self._pages: list[Page] = []

    def allocate(self) -> Page:
        """Append a fresh page and return it."""
        page = Page(len(self._pages), self.page_size)
        self._pages.append(page)
        return page

    def page(self, page_no: int) -> Page:
        try:
            return self._pages[page_no]
        except IndexError:
            raise StorageError(f"no such page: {page_no}") from None

    @property
    def n_pages(self) -> int:
        return len(self._pages)

    def pages(self) -> Iterator[Page]:
        return iter(self._pages)

    def total_bytes(self) -> int:
        """Simulated document size on disk."""
        return self.n_pages * self.page_size

    def adopt(self, page: Page) -> None:
        """Install an externally built page at its ``page_no`` position.

        Used by the importer, which assigns physical page numbers itself
        (possibly permuted, to model layout fragmentation) and back-patches
        NodeIDs before handing pages over.  Pages must arrive in page-number
        order.
        """
        if page.page_no != len(self._pages):
            raise StorageError(
                f"adopt out of order: expected page {len(self._pages)}, got {page.page_no}"
            )
        self._pages.append(page)
