"""In-place document updates (paper Sec. 2 and 3.3).

A central argument of the paper is that scan-optimised storage formats
"are not easily updated, as they use preorder numbers to identify nodes,
or require the nodes to be stored in a particular order", while the
clustered tree store works with any physical placement.  This module
demonstrates that claim: nodes can be inserted at arbitrary positions and
subtrees deleted *without relabeling or moving existing records*:

* order labels come from ORDPATH careting (:func:`label_between`), so
  document order stays consistent forever;
* a new node goes onto its parent's page if there is room, otherwise
  onto any page with free space, linked through a fresh border pair —
  exactly the fragmentation process the evaluation's layout models;
* deletions tombstone records in place (slots are never reused, so
  existing NodeIDs stay valid).

Updates run directly against the segment: maintenance cost modeling is
out of scope (the paper measures queries only), but the *consequences*
of updates — fragmented layouts — are what the benchmarks simulate.
"""

from __future__ import annotations

import os

from repro.errors import StorageError, StoreCorruptError
from repro.model.tree import Kind
from repro.sim.faults import CRASH_UPDATE_APPLY
from repro.storage.nodeid import NodeID, make_nodeid, page_of, slot_of
from repro.storage.ordpath import OrdPath, label_between
from repro.storage.page import Page, Segment
from repro.storage.record import BorderRecord, CoreRecord
from repro.storage.store import DocumentStore, StoredDocument


def _san_colviews(store: DocumentStore, page_nos) -> None:
    """Mutation-sanitizer hook (:mod:`repro.analysis.sanitize`): after a
    successful update, any cached columnar view of the touched pages must
    match one rebuilt from the records.  One environment-dict lookup when
    ``REPRO_SAN`` is unset."""
    if os.environ.get("REPRO_SAN"):
        from repro.analysis import sanitize

        if "mutation" in sanitize.modes():
            from repro.analysis.sanitize.mutation import check_colviews

            check_colviews(store.segment, page_nos)


def _crash_check(store: DocumentStore) -> None:
    """Announce a mid-operation step to the crash injector, if one is
    armed (kill-and-recover testing: the process "dies" with the
    operation partially applied)."""
    crash = store.crash
    if crash is not None:
        crash.check(CRASH_UPDATE_APPLY)


def _resolve_core(segment: Segment, nid: NodeID) -> tuple[Page, int, CoreRecord]:
    page = segment.page(page_of(nid))
    record = page.record(slot_of(nid))
    if not isinstance(record, CoreRecord):
        raise StorageError(f"NodeID {nid} does not reference a core record")
    return page, slot_of(nid), record


def _entry_ordpath(segment: Segment, page: Page, slot: int) -> OrdPath:
    """ORDPATH of a child-list entry, following borders to the core node."""
    record = page.record(slot)
    while isinstance(record, BorderRecord):
        if record.continuation and not record.down and record.child_slots:
            # proxy: the first entry of the chunk carries the position
            return _entry_ordpath(segment, page, record.child_slots[0])
        if not record.down and record.local_slot >= 0:
            record = page.record(record.local_slot)
            continue
        target = record.target()
        page = segment.page(page_of(target))
        record = page.record(slot_of(target))
    return record.ordpath


def _chunks_of(segment: Segment, page: Page, record: CoreRecord) -> list[tuple[Page, object]]:
    """The chunks of a (possibly continuation-split) child list.

    Returns ``(page, holder)`` pairs; the holder is the core record for
    the first chunk and the continuation proxy for later ones.
    """
    chunks: list[tuple[Page, object]] = [(page, record)]
    current_page, holder = page, record
    while True:
        slots = holder.child_slots
        if not slots:
            return chunks
        last = current_page.record(slots[-1])
        if isinstance(last, BorderRecord) and last.continuation and last.down:
            target = last.target()
            current_page = segment.page(page_of(target))
            holder = current_page.record(slot_of(target))
            chunks.append((current_page, holder))
        else:
            return chunks


def _logical_entries(segment: Segment, chunks) -> list[tuple[Page, object, int, int]]:
    """Flatten chunked child slots to (page, holder, list-index, slot),
    excluding the trailing continuation borders themselves."""
    out = []
    for page, holder in chunks:
        for index, slot in enumerate(holder.child_slots or ()):
            entry = page.record(slot)
            if isinstance(entry, BorderRecord) and entry.continuation and entry.down:
                continue
            out.append((page, holder, index, slot))
    return out


def _relocate_closure(
    segment: Segment, doc: StoredDocument, page: Page, slot: int, closure: list[int]
) -> int:
    """Move the page-local subtree rooted at ``slot`` to another page.

    The vacated root slot is reused for the downward border of a fresh
    border pair, so the parent's child link stays valid while net bytes
    are freed (the whole closure leaves, one border record arrives).
    Returns the old->new NodeID mapping of the relocated records.
    """
    closure_bytes = sum(page.record(s).size() for s in closure)
    parent_slot = page.record(slot).parent_slot
    slack = min(256, page.capacity // 4)
    need = closure_bytes + 16 + 4 * (len(closure) + 1)
    target_page = _find_space(segment, min(page.capacity - 48, need + slack))
    if target_page is page:
        # it has free space, this page does not — picking the source again
        # would loop forever
        raise StorageError(
            f"relocation chose the full source page {page.page_no} as its target"
        )
    up = BorderRecord(None, -1, down=False)
    up_slot = target_page.add(up)
    root_new = _move_closure(segment, page, target_page, closure, up_slot)
    up.local_slot = root_new
    up.companion = make_nodeid(page.page_no, slot)
    down = BorderRecord(
        make_nodeid(target_page.page_no, up_slot), parent_slot, down=True
    )
    # reclaim the root's exact slot for the downward border: the parent's
    # child link keeps pointing at it
    page.free_slots.remove(slot)
    page.records[slot] = down
    page.invalidate_colview()  # direct records[] write bypasses Page.add
    page.used_bytes += down.size()
    if target_page.page_no not in doc.page_nos:
        doc.page_nos.append(target_page.page_no)
        doc.page_nos.sort()
    return _nid_mapping(page, target_page, _move_closure.last_mapping)  # type: ignore[attr-defined]


def _make_room(
    segment: Segment,
    doc: StoredDocument,
    page: Page,
    need: int,
    holder=None,
    holder_slot: int = -1,
) -> dict[NodeID, NodeID]:
    """Free at least ``need`` bytes on ``page``.

    Relocates page-local subtrees (or whole cluster-local trees together
    with their entry border) to other pages; if nothing is relocatable,
    splits ``holder``'s child list with a continuation pair.  Returns a
    mapping of relocated NodeIDs so callers can chase nodes they hold —
    including the very parent an insert is targeting.
    """
    moved: dict[NodeID, NodeID] = {}
    while not page.fits(need):
        # (avoids-holder, net gain, root slot or None-for-cluster, closure)
        best: tuple[bool, int, int | None, list[int]] | None = None
        for slot, record in enumerate(page.records):
            if not isinstance(record, CoreRecord):
                continue
            if record.kind == Kind.DOCUMENT or record.parent_slot < 0:
                continue
            parent = page.record(record.parent_slot)
            closure = _local_closure(page, slot, limit=16)
            if closure is None:
                continue
            size = sum(page.record(s).size() for s in closure)
            if isinstance(parent, BorderRecord) and not parent.continuation:
                # cluster root: relocate together with its up-border; the
                # remote companion is re-patched, nothing stays behind
                gain = size + parent.size()
                batch = gain
                candidate_slots = [record.parent_slot] + closure
                root_slot: int | None = None
            else:
                gain = size - 12  # a down border stays in the child list
                batch = size + 16  # plus a fresh up-border on the target
                candidate_slots = closure
                root_slot = slot
            if gain <= 4:
                continue
            if batch + 4 * (len(closure) + 2) + 64 > page.capacity - 32:
                # the batch must land on a fresh page *with slack left*,
                # or relocations chase the insert target page to page
                continue
            avoids_holder = holder_slot not in candidate_slots
            candidate = (avoids_holder, gain, root_slot, candidate_slots)
            if best is None or (avoids_holder, gain) > (best[0], best[1]):
                best = candidate
        if best is not None:
            _, _, root_slot, closure = best
            if root_slot is None:
                moved.update(_relocate_cluster(segment, doc, page, closure))
            else:
                moved.update(_relocate_closure(segment, doc, page, root_slot, closure))
            continue
        if holder is None:
            raise StorageError(
                f"page {page.page_no} is full and holds no relocatable records"
            )
        _split_child_list(segment, doc, page, holder, holder_slot)
        holder = None  # a second split of the same holder cannot help
    return moved


def _relocate_cluster(segment: Segment, doc: StoredDocument, page: Page, closure: list[int]) -> None:
    """Move a whole cluster-local subtree INCLUDING its entry up-border.

    The remote downward border's companion is re-patched by
    :func:`_move_closure`, so nothing remains on the source page.
    ``closure[0]`` must be the up-border, ``closure[1]`` its core root.
    """
    total = sum(page.record(s).size() for s in closure)
    slack = min(256, page.capacity // 4)
    need = total + 4 * (len(closure) + 1)
    target = _find_space(segment, min(page.capacity - 48, need + slack))
    _move_closure(segment, page, target, closure, parent_new_slot=-1)
    if target.page_no not in doc.page_nos:
        doc.page_nos.append(target.page_no)
        doc.page_nos.sort()
    return _nid_mapping(page, target, _move_closure.last_mapping)  # type: ignore[attr-defined]


def _split_child_list(segment: Segment, doc: StoredDocument, page: Page, holder, holder_slot: int) -> None:
    """Move a tail run of ``holder``'s child entries into a new proxy chunk.

    Movable entries are border records and childless core records; they
    are re-created on the proxy's page and their home-page slots are
    tombstoned, freeing both the records and their child links.  One
    continuation border replaces the whole run.
    """
    usable = page.capacity - 48  # fresh-page budget (header + slot slack)
    slack = min(160, max(40, usable // 4))  # headroom kept on the target
    slots = holder.child_slots
    run: list[tuple[int, list[int]]] = []  # (list index, local closure slots)
    moved_bytes = 0
    for index in range(len(slots) - 1, -1, -1):
        closure = _local_closure(page, slots[index], limit=8)
        if closure is None:
            break
        closure_bytes = sum(page.record(s).size() for s in closure) + 4
        projected = 16 + moved_bytes + closure_bytes + 8 * (len(run) + 1) + slack
        if projected > usable:
            break  # the batch must fit a fresh page with headroom left
        run.append((index, closure))
        moved_bytes += closure_bytes
        if len(run) >= 8:
            break
    # the continuation border costs 12 + 4 (slot) + 4 (link)
    if not run or moved_bytes < 24 + 16:
        raise StorageError(
            f"page {page.page_no} is full and its child list has no movable tail"
        )
    run.reverse()  # document order
    first_index = run[0][0]

    proxy = BorderRecord(None, -1, down=False, continuation=True, child_slots=[])
    target = _find_space(segment, min(usable, proxy.size() + moved_bytes + 8 * len(run) + slack))
    proxy_slot = target.add(proxy)

    for _, closure in run:
        root_new = _move_closure(segment, page, target, closure, proxy_slot)
        proxy.child_slots.append(root_new)
        target.grow(4)
    target.invalidate_colview()  # proxy child links appended in place

    del holder.child_slots[first_index:]
    page.invalidate_colview()  # holder child list truncated in place
    page.used_bytes -= 4 * len(run)
    cont = BorderRecord(
        make_nodeid(target.page_no, proxy_slot), holder_slot, down=True, continuation=True
    )
    cont_slot = page.add(cont)
    holder.child_slots.append(cont_slot)
    page.grow(4)
    proxy.companion = make_nodeid(page.page_no, cont_slot)
    if target.page_no not in doc.page_nos:
        doc.page_nos.append(target.page_no)
        doc.page_nos.sort()


def _local_closure(page: Page, slot: int, limit: int) -> list[int] | None:
    """Slots of the page-local subtree rooted at ``slot``, preorder.

    Border records are their own closure (their remote side moves by
    companion re-patching).  Returns None if the closure exceeds
    ``limit`` records — such an entry is too big to relocate cheaply.
    """
    out: list[int] = []
    stack = [slot]
    while stack:
        current = stack.pop()
        out.append(current)
        if len(out) > limit:
            return None
        record = page.record(current)
        if isinstance(record, CoreRecord):
            stack.extend(reversed(record.child_slots))
    return out


def _move_closure(
    segment: Segment, page: Page, target: Page, closure: list[int], parent_new_slot: int
) -> int:
    """Clone a local closure onto ``target``; tombstone the old slots.

    Returns the new slot of the closure's root.  Internal parent/child
    links are remapped; companions of moved border records are re-patched.
    The full old-slot -> new-slot mapping is left in
    ``_move_closure.last_mapping`` for callers that must chase NodeIDs.
    """
    mapping: dict[int, int] = {}
    for old_slot in closure:
        record = page.record(old_slot)
        if isinstance(record, BorderRecord):
            clone: object = BorderRecord(
                record.companion,
                -1,  # local link fixed below
                down=record.down,
                continuation=record.continuation,
                child_slots=list(record.child_slots) if record.child_slots else None,
            )
        else:
            clone = CoreRecord(
                record.kind, record.tag, record.ordpath, parent_slot=-1, value=record.value
            )
            clone.child_slots = list(record.child_slots)
        mapping[old_slot] = target.add(clone)
    root_old = closure[0]
    for old_slot in closure:
        record = page.record(old_slot)
        clone = target.record(mapping[old_slot])
        if isinstance(record, BorderRecord):
            if record.local_slot >= 0 and record.local_slot in mapping:
                clone.local_slot = mapping[record.local_slot]
            elif old_slot == root_old:
                # a border entry's local link is its parent: now the proxy
                clone.local_slot = parent_new_slot
            else:
                clone.local_slot = -1
            if clone.child_slots:
                clone.child_slots = [mapping[s] for s in clone.child_slots]
            companion_id = record.target()
            companion = segment.page(page_of(companion_id)).record(slot_of(companion_id))
            companion.companion = make_nodeid(target.page_no, mapping[old_slot])
        else:
            clone.parent_slot = (
                parent_new_slot if old_slot == root_old else mapping[record.parent_slot]
            )
            clone.child_slots = [mapping[s] for s in record.child_slots]
        page.tombstone(old_slot)
    # the clones' links were patched after target.add() placed them
    target.invalidate_colview()
    _move_closure.last_mapping = mapping  # type: ignore[attr-defined]
    return mapping[root_old]


def _nid_mapping(page: Page, target: Page, mapping: dict[int, int]) -> dict[NodeID, NodeID]:
    """Translate a slot mapping into a NodeID mapping for callers that
    hold NodeIDs across a relocation."""
    return {
        make_nodeid(page.page_no, old): make_nodeid(target.page_no, new)
        for old, new in mapping.items()
    }


def _find_space(segment: Segment, need: int) -> Page:
    """A page with at least ``need`` free bytes; allocates a new one if
    nothing fits (scanning backwards: recent pages are likelier open).

    ``need`` must fit on a fresh page — callers size their relocation
    batches accordingly.
    """
    for page_no in range(segment.n_pages - 1, max(-1, segment.n_pages - 64), -1):
        page = segment.page(page_no)
        if page.fits(need):
            return page
    fresh = segment.allocate()
    if not fresh.fits(need):
        raise StorageError(
            f"relocation batch of {need} bytes exceeds the page capacity"
        )
    return fresh


def insert_node(
    store: DocumentStore,
    doc: StoredDocument,
    parent: NodeID,
    position: int,
    tag_name: str,
    kind: Kind = Kind.ELEMENT,
    value: str | None = None,
    _retries: int = 0,
) -> NodeID:
    """Insert a new node as the ``position``-th child of ``parent``.

    Returns the new node's NodeID.  ``position`` counts logical children
    (attributes included, continuations transparent); ``position`` may
    equal the child count to append.

    NodeIDs of *other* nodes are stable across inserts except for records
    the space manager relocates (leaves moved off a full page, tail runs
    of split child lists); callers should treat structural updates as
    invalidating previously obtained NodeIDs, as with any RID-based store.
    """
    if kind == Kind.DOCUMENT:
        raise StorageError("cannot insert a document node")
    segment = store.segment
    parent_page, parent_slot, parent_record = _resolve_core(segment, parent)
    chunks = _chunks_of(segment, parent_page, parent_record)
    entries = _logical_entries(segment, chunks)
    if not 0 <= position <= len(entries):
        raise StorageError(
            f"insert position {position} out of range 0..{len(entries)}"
        )
    # invalidate *before* the first mutation, not after the last: an
    # operation that fails (or a process that dies) midway must not
    # leave an import-time synopsis describing pages it already changed
    # — a stale row can understate a page's content and make pruning
    # skip real results
    _invalidate_statistics(doc)

    left = (
        _entry_ordpath(segment, entries[position - 1][0], entries[position - 1][3])
        if position > 0
        else None
    )
    right = (
        _entry_ordpath(segment, entries[position][0], entries[position][3])
        if position < len(entries)
        else None
    )
    if left is None and right is None:
        ordpath = parent_record.ordpath.child(0)
    else:
        ordpath = label_between(left, right)

    # where (in which chunk, at which list index) does the link go?
    if position < len(entries):
        home_page, holder, list_index, _ = entries[position]
    elif entries:
        home_page, holder, list_index, _ = entries[-1]
        list_index += 1
    else:
        home_page, holder, list_index = chunks[0][0], chunks[0][1], 0
    holder_slot = (
        parent_slot
        if holder is parent_record
        else home_page.records.index(holder)
    )

    tag = store.tags.intern(tag_name)
    record = CoreRecord(kind, tag, ordpath, parent_slot=holder_slot, value=value)
    link_cost = 4  # CHILD_LINK_SIZE
    if home_page.fits(record.size() + link_cost):
        slot = home_page.add(record)
        _crash_check(store)  # record placed but not yet linked
        home_page.grow(link_cost)
        holder.child_slots.insert(list_index, slot)
        home_page.invalidate_colview()  # holder child list grown in place
        new_nid = make_nodeid(home_page.page_no, slot)
    elif kind == Kind.ATTRIBUTE:
        # attributes must stay co-located with their owner (exports and
        # the attribute axis rely on it): free room instead of exiling
        if _retries >= 16:
            raise StorageError(
                f"unable to co-locate attribute on page {home_page.page_no}"
            )
        moved = _make_room(
            segment, doc, home_page, record.size() + link_cost, holder, holder_slot
        )
        return insert_node(
            store, doc, moved.get(parent, parent), position, tag_name, kind, value,
            _retries + 1,
        )
    else:
        # exile through a fresh border pair
        down = BorderRecord(None, holder_slot, down=True)
        if not home_page.fits(down.size() + link_cost):
            if _retries >= 16:
                raise StorageError(
                    f"unable to free space on page {home_page.page_no} after "
                    f"{_retries} attempts"
                )  # each retry makes progress (entries leave the full page)
            moved = _make_room(
                segment, doc, home_page, down.size() + link_cost, holder, holder_slot
            )
            # the holder's child list may have been restructured (and the
            # parent itself relocated): redo everything from scratch
            return insert_node(
                store, doc, moved.get(parent, parent), position, tag_name, kind, value,
                _retries + 1,
            )
        target_page = _find_space(segment, record.size() + 16 + 8)
        up = BorderRecord(None, -1, down=False)
        up_slot = target_page.add(up)
        _crash_check(store)  # half-created border pair
        record.parent_slot = up_slot
        slot = target_page.add(record)
        up.local_slot = slot
        down_slot = home_page.add(down)
        home_page.grow(link_cost)
        holder.child_slots.insert(list_index, down_slot)
        home_page.invalidate_colview()  # holder child list grown in place
        down.companion = make_nodeid(target_page.page_no, up_slot)
        up.companion = make_nodeid(home_page.page_no, down_slot)
        target_page.invalidate_colview()  # up.local_slot patched after add
        if target_page.page_no not in doc.page_nos:
            doc.page_nos.append(target_page.page_no)
            doc.page_nos.sort()
        new_nid = make_nodeid(target_page.page_no, slot)

    doc.n_nodes += 1
    _san_colviews(store, doc.page_nos)
    return new_nid


def delete_subtree(store: DocumentStore, doc: StoredDocument, nid: NodeID) -> int:
    """Delete the node at ``nid`` and its whole subtree.

    Records become unreachable (their parent link entry is removed); slots
    are left in place so other NodeIDs remain stable.  Returns the number
    of core nodes removed.
    """
    segment = store.segment
    page, slot, record = _resolve_core(segment, nid)
    if record.kind == Kind.DOCUMENT:
        raise StorageError("cannot delete the document root")
    # invalidated before the first mutation (see insert_node): a
    # partially tombstoned subtree must not coexist with a synopsis that
    # still describes the pre-delete pages
    _invalidate_statistics(doc)

    # detach from the parent's child list (parent may be across a border)
    parent_page, holder, entry_slot = page, None, slot
    parent_entry = page.record(record.parent_slot)
    extra_garbage: list[tuple[Page, int]] = []
    if isinstance(parent_entry, BorderRecord) and not parent_entry.continuation:
        # this node is a cluster root: unlink the downward border in the
        # parent's cluster and reclaim the now-dangling border pair
        target = parent_entry.target()
        parent_page = segment.page(page_of(target))
        down = parent_page.record(slot_of(target))
        if not isinstance(down, BorderRecord):
            raise StoreCorruptError(
                f"border companion {target!r} does not point at a border record"
            )
        holder = parent_page.record(down.local_slot)
        entry_slot = slot_of(target)
        extra_garbage.append((page, record.parent_slot))
        extra_garbage.append((parent_page, entry_slot))
    else:
        holder = parent_entry
    try:
        holder.child_slots.remove(entry_slot)
    except ValueError:
        raise StorageError(f"corrupt child list while deleting {nid}") from None
    parent_page.invalidate_colview()  # holder child list shrunk in place
    parent_page.used_bytes -= 4  # the removed child link

    # walk the subtree, crossing downward borders and continuation
    # chunks; tombstone every record and reclaim its bytes
    removed = 0
    stack = [(page, slot)]
    while stack:
        _crash_check(store)  # one occurrence per partially deleted record
        current_page, current_slot = stack.pop()
        current = current_page.record(current_slot)
        if current is None:
            continue
        if isinstance(current, BorderRecord):
            if current.down:
                target = current.target()
                stack.append((segment.page(page_of(target)), slot_of(target)))
            elif current.continuation:
                # proxy chunk: its members are subtree content
                for child_slot in current.child_slots or ():
                    stack.append((current_page, child_slot))
            elif current.local_slot >= 0:
                stack.append((current_page, current.local_slot))
            current_page.tombstone(current_slot)
            continue
        removed += 1
        for child_slot in current.child_slots:
            stack.append((current_page, child_slot))
        current_page.tombstone(current_slot)
    for garbage_page, garbage_slot in extra_garbage:
        if garbage_page.record(garbage_slot) is not None:
            garbage_page.tombstone(garbage_slot)
    doc.n_nodes -= removed
    _san_colviews(store, doc.page_nos)
    return removed


def update_value(store: DocumentStore, nid: NodeID, value: str) -> None:
    """Replace the value of a text or attribute node in place."""
    segment = store.segment
    page, _, record = _resolve_core(segment, nid)
    if record.kind not in (Kind.TEXT, Kind.ATTRIBUTE):
        raise StorageError("update_value only applies to text and attribute nodes")
    old = len(record.value or "")
    new = len(value)
    if new > old and not page.fits(new - old - 4):  # grow within the page
        raise StorageError(
            f"value growth of {new - old} bytes does not fit on page {page.page_no}"
        )
    if new > old:
        page.grow(new - old)
    else:
        page.used_bytes -= old - new
        page.version += 1  # grow() bumps it on the other branch
    _crash_check(store)  # bytes re-accounted, value not yet replaced
    record.value = value
    _san_colviews(store, [page.page_no])


def _invalidate_statistics(doc: StoredDocument) -> None:
    """Schema statistics, cluster synopsis and path summary are
    import-time snapshots; drop all three on structural update.

    Called *before* an operation's first mutation, so even a failed or
    interrupted update leaves no stale snapshot behind.  The AUTO plan
    chooser then degrades to its statistics-free default and synopsis/
    path-summary pruning disables itself until the document is
    re-imported, the snapshots recollected, or — under WAL management
    (:mod:`repro.storage.wal`) — the synopsis and path summary repaired
    incrementally right after the operation.
    """
    doc.statistics = None
    doc.synopsis = None
    doc.pathsummary = None
