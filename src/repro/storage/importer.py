"""Subtree clustering: mapping a logical tree onto pages (paper Sec. 3.2-3.4).

The importer re-encodes a :class:`~repro.model.tree.LogicalTree` as
records on slotted pages, following the Natix storage design the paper
builds on [9]:

* connected subtrees are packed onto a page while they fit;
* a subtree that does not fit next to its parent is *exiled* to another
  page, materialising a pair of border records (one on each side of the
  crossing edge);
* a subtree larger than a page is placed partially: its root record goes
  first and each child is placed by the same rules recursively;
* child lists that outgrow their page are split with *continuation*
  border pairs (Natix proxy nodes), so no record ever exceeds a page.

Placement policy: by default exiled subtrees go to the *best-fitting*
partially-filled page (space-efficient import — the paper's introduction
notes that "a document import algorithm might regroup nodes to avoid
wasting space").  This regrouping is precisely what makes naive
navigation pay random I/O.  A ``sequential`` policy (strict document-order
fill) and a ``fragmentation`` knob (random page transpositions emulating
incremental updates) are available for ablations.

Every core record receives its ORDPATH label during import, so document
order can be re-established after cost-based reordering (paper Sec. 5.5).
"""

from __future__ import annotations

import enum
import random
from array import array
from dataclasses import dataclass

from repro.errors import StorageError, StoreCorruptError
from repro.model.tree import Kind, LogicalTree
from repro.storage.nodeid import NodeID, make_nodeid
from repro.storage.ordpath import OrdPath
from repro.storage.page import PAGE_HEADER, SLOT_ENTRY, Page
from repro.storage.record import (
    BORDER_RECORD_SIZE,
    CHILD_LINK_SIZE,
    CORE_RECORD_HEADER,
    BorderRecord,
    CoreRecord,
    ordpath_stored_size,
)

#: Worst case cost of handling one child locally: a child link in the
#: holder plus an exile border record plus its slot entry.
_CHILD_WORST = CHILD_LINK_SIZE + BORDER_RECORD_SIZE + SLOT_ENTRY
#: Space reserved per open holder so a continuation border always fits.
_CONT_RESERVE = CHILD_LINK_SIZE + BORDER_RECORD_SIZE + SLOT_ENTRY
#: Pages with less free space than this leave the best-fit pool.
_MIN_OPEN = 48
#: Granularity of the best-fit pool's free-space buckets.
_BUCKET = 256


class ClusterPolicy(enum.Enum):
    """How exiled subtrees choose their page."""

    BEST_FIT = "best_fit"  #: space-efficient regrouping (default, Natix-like)
    SEQUENTIAL = "sequential"  #: strict document-order fill (scan-friendly)


@dataclass(frozen=True)
class ImportOptions:
    """Knobs of the physical import."""

    page_size: int = 8192
    policy: ClusterPolicy = ClusterPolicy.BEST_FIT
    #: Fraction of pages displaced by random transpositions after import,
    #: modeling fragmentation from incremental updates.  0.0 = layout in
    #: cluster-creation (roughly document) order; 1.0 = fully shuffled.
    fragmentation: float = 0.0
    seed: int = 0


@dataclass
class ImportResult:
    """Outcome of one document import."""

    pages: list[Page]  #: pages in physical (page-number) order
    root: NodeID  #: NodeID of the stored document root record
    page_nos: list[int]  #: physical page numbers, ascending
    n_border_pairs: int
    n_continuations: int
    #: physical location of every logical node: parallel arrays indexed by
    #: logical node id.
    node_page: array
    node_slot: array

    def nodeid_of(self, logical_node: int) -> NodeID:
        """NodeID of a logical node (testing / context-node helper)."""
        return make_nodeid(self.node_page[logical_node], self.node_slot[logical_node])


class _OpenCluster:
    """A page being filled, with reservation accounting."""

    __slots__ = ("index", "page", "reserved")

    def __init__(self, index: int, page: Page) -> None:
        self.index = index
        self.page = page
        self.reserved = 0

    def effective_free(self) -> int:
        return self.page.free_bytes() - self.reserved


class _Importer:
    def __init__(self, tree: LogicalTree, options: ImportOptions, first_page_no: int) -> None:
        self.tree = tree
        self.opts = options
        self.first_page_no = first_page_no
        self.clusters: list[_OpenCluster] = []
        self.pairs: list[tuple[int, int, int, int]] = []  # (ci, si, cj, sj)
        self.n_continuations = 0
        n = len(tree)
        self.node_page = array("i", [0] * n)
        self.node_slot = array("i", [0] * n)
        self._pool: dict[int, list[int]] = {}
        self._seq_current: int | None = None
        self._sizes = self._compute_packed_sizes()

    # ------------------------------------------------------------ size model

    def _compute_packed_sizes(self) -> array:
        """Exact all-intra byte cost of each subtree (record + slot costs)."""
        tree = self.tree
        n = len(tree)
        depth = array("i", [0] * n)
        nchildren = array("i", [0] * n)
        sizes = array("q", [0] * n)
        parent = tree.parent
        for node in range(1, n):
            depth[node] = depth[parent[node]] + 1
        for node in range(n):
            value = tree.values.get(node)
            base = (
                SLOT_ENTRY
                + CORE_RECORD_HEADER
                + ordpath_stored_size(depth[node] + 1)
                + (len(value) if value is not None else 0)
            )
            sizes[node] = base
        # children are appended after parents (document order), so a reverse
        # sweep accumulates subtree sizes bottom-up without recursion
        for node in range(n - 1, 0, -1):
            p = parent[node]
            nchildren[p] += 1
            sizes[p] += sizes[node] + CHILD_LINK_SIZE
        self._nchildren = nchildren
        self._depth = depth
        return sizes

    def _record_base_size(self, node: int) -> int:
        value = self.tree.values.get(node)
        return (
            CORE_RECORD_HEADER
            + ordpath_stored_size(self._depth[node] + 1)
            + (len(value) if value is not None else 0)
        )

    # ------------------------------------------------------------- clusters

    def _new_cluster(self) -> _OpenCluster:
        cluster = _OpenCluster(len(self.clusters), Page(len(self.clusters), self.opts.page_size))
        self.clusters.append(cluster)
        return cluster

    def _pool_insert(self, cluster: _OpenCluster) -> None:
        if self.opts.policy is ClusterPolicy.SEQUENTIAL:
            self._seq_current = cluster.index
            return
        free = cluster.effective_free()
        if free >= _MIN_OPEN:
            self._pool.setdefault(free // _BUCKET, []).append(cluster.index)

    def _choose_target(self, need: int) -> _OpenCluster:
        """A cluster with at least ``need`` effective free bytes."""
        if self.opts.policy is ClusterPolicy.SEQUENTIAL:
            if self._seq_current is not None:
                cluster = self.clusters[self._seq_current]
                if cluster.effective_free() >= need:
                    return cluster
            cluster = self._new_cluster()
            self._seq_current = cluster.index
            return cluster
        # best fit: scan free-space buckets from the smallest sufficient one
        start = need // _BUCKET
        if self._pool:
            for bucket in sorted(b for b in self._pool if b >= start):
                entries = self._pool[bucket]
                while entries:
                    index = entries.pop()
                    cluster = self.clusters[index]
                    free = cluster.effective_free()
                    if free // _BUCKET != bucket:
                        # stale entry: free space changed since insertion
                        if free >= _MIN_OPEN:
                            self._pool.setdefault(free // _BUCKET, []).append(index)
                        continue
                    if free >= need:
                        return cluster
                    entries.append(index)
                    break
                if not entries:
                    del self._pool[bucket]
        return self._new_cluster()

    # ------------------------------------------------------------- placement

    def run(self) -> ImportResult:
        tree = self.tree
        root_ord = OrdPath.root()
        cluster = self._new_cluster()
        record = CoreRecord(Kind.DOCUMENT, tree.tag_of(0), root_ord, parent_slot=-1)
        slot = cluster.page.add(record)
        self.node_page[0] = cluster.index
        self.node_slot[0] = slot
        self._place_children(0, cluster, record, slot, root_ord)
        self._pool_insert(cluster)
        return self._finalize()

    def _place_children(
        self,
        parent_node: int,
        cluster: _OpenCluster,
        holder: CoreRecord | BorderRecord,
        holder_slot: int,
        parent_ord: OrdPath,
    ) -> None:
        """Place all children of ``parent_node``; ``holder`` receives links."""
        tree = self.tree
        cur = cluster
        cur.reserved += _CONT_RESERVE
        index = 0
        for child in tree.children(parent_node):
            child_ord = parent_ord.child(index)
            index += 1
            if cur.effective_free() < _CHILD_WORST:
                cur, holder, holder_slot = self._continue_child_list(cur, holder, holder_slot)
            if cur.effective_free() >= CHILD_LINK_SIZE + self._sizes[child]:
                slot = self._place_whole(child, cur, child_ord, holder_slot)
                self._append_link(cur, holder, slot)
            else:
                self._exile(child, cur, holder, holder_slot, child_ord)
        cur.reserved -= _CONT_RESERVE
        if cur is not cluster:
            self._pool_insert(cur)

    def _append_link(self, cluster: _OpenCluster, holder, slot: int) -> None:
        if isinstance(holder, CoreRecord):
            holder.child_slots.append(slot)
        else:
            if holder.child_slots is None:
                raise StoreCorruptError(
                    "continuation proxy lost its child list during import"
                )
            holder.child_slots.append(slot)
        cluster.page.grow(CHILD_LINK_SIZE)

    def _continue_child_list(
        self, cur: _OpenCluster, holder, holder_slot: int
    ) -> tuple[_OpenCluster, BorderRecord, int]:
        """Split the open child list with a continuation border pair."""
        need = (
            BORDER_RECORD_SIZE  # proxy record
            + SLOT_ENTRY
            + _CONT_RESERVE
            + _CHILD_WORST
        )
        target = self._choose_target(need)
        if target is cur:  # pragma: no cover - sequential policy corner
            target = self._new_cluster()
        proxy = BorderRecord(None, -1, down=False, continuation=True, child_slots=[])
        proxy_slot = target.page.add(proxy)
        down = BorderRecord(None, holder_slot, down=True, continuation=True)
        down_slot = cur.page.add(down)
        self._append_link(cur, holder, down_slot)
        self.pairs.append((cur.index, down_slot, target.index, proxy_slot))
        self.n_continuations += 1
        cur.reserved -= _CONT_RESERVE
        self._pool_insert(cur)
        target.reserved += _CONT_RESERVE
        return target, proxy, proxy_slot

    def _exile(
        self,
        node: int,
        cur: _OpenCluster,
        holder,
        holder_slot: int,
        ord_label: OrdPath,
    ) -> None:
        """Place ``node``'s subtree in another cluster, linked via borders."""
        down = BorderRecord(None, holder_slot, down=True)
        down_slot = cur.page.add(down)
        self._append_link(cur, holder, down_slot)

        whole_need = BORDER_RECORD_SIZE + SLOT_ENTRY + self._sizes[node]
        if whole_need <= self.opts.page_size - PAGE_HEADER:
            target = self._choose_target(whole_need)
            up = BorderRecord(None, -1, down=False)
            up_slot = target.page.add(up)
            root_slot = self._place_whole(node, target, ord_label, up_slot)
            up.local_slot = root_slot
            self.pairs.append((cur.index, down_slot, target.index, up_slot))
            if target is not cur:
                self._pool_insert(target)
            return

        # subtree larger than a page: place the root record alone, then
        # handle its children by the standard rules.  Attribute children
        # are budgeted with the record so they always stay co-located
        # with their owner (the export fragmentation logic relies on it).
        attribute_bytes = sum(
            self._sizes[child] + CHILD_LINK_SIZE
            for child in self.tree.children(node)
            if self.tree.kind_of(child) == Kind.ATTRIBUTE
        )
        partial_need = (
            BORDER_RECORD_SIZE
            + SLOT_ENTRY
            + self._record_base_size(node)
            + SLOT_ENTRY
            + attribute_bytes
            + _CONT_RESERVE
            + _CHILD_WORST
        )
        if partial_need > self.opts.page_size - PAGE_HEADER:
            raise StorageError(
                f"record of {self._record_base_size(node)} bytes (node {node}) "
                f"cannot be stored on pages of {self.opts.page_size} bytes; "
                "increase the page size or shorten the node's value"
            )
        target = self._choose_target(partial_need)
        up = BorderRecord(None, -1, down=False)
        up_slot = target.page.add(up)
        record = CoreRecord(
            self.tree.kind_of(node),
            self.tree.tag_of(node),
            ord_label,
            parent_slot=up_slot,
            value=self.tree.values.get(node),
        )
        root_slot = target.page.add(record)
        up.local_slot = root_slot
        self.node_page[node] = target.index
        self.node_slot[node] = root_slot
        self.pairs.append((cur.index, down_slot, target.index, up_slot))
        self._place_children(node, target, record, root_slot, ord_label)
        self._pool_insert(target)

    def _place_whole(
        self, node: int, cluster: _OpenCluster, ord_label: OrdPath, parent_slot: int
    ) -> int:
        """Place the complete subtree of ``node`` into ``cluster``.

        The caller has verified that the exact packed size fits.  Iterative
        preorder so arbitrarily deep trees import without recursion.
        """
        tree = self.tree
        page = cluster.page
        record = CoreRecord(
            tree.kind_of(node),
            tree.tag_of(node),
            ord_label,
            parent_slot=parent_slot,
            value=tree.values.get(node),
        )
        slot = page.add(record)
        self.node_page[node] = cluster.index
        self.node_slot[node] = slot
        # stack entries: (child-node, parent-record, parent-slot, child-ordpath)
        stack: list[tuple[int, CoreRecord, int, OrdPath]] = []
        child_index = 0
        for child in tree.children(node):
            stack.append((child, record, slot, ord_label.child(child_index)))
            child_index += 1
        # children were pushed in order; reverse for preorder pop
        stack.reverse()
        while stack:
            n, parent_record, parent_record_slot, n_ord = stack.pop()
            rec = CoreRecord(
                tree.kind_of(n),
                tree.tag_of(n),
                n_ord,
                parent_slot=parent_record_slot,
                value=tree.values.get(n),
            )
            s = page.add(rec)
            parent_record.child_slots.append(s)
            page.grow(CHILD_LINK_SIZE)
            self.node_page[n] = cluster.index
            self.node_slot[n] = s
            grand = []
            gi = 0
            for c in tree.children(n):
                grand.append((c, rec, s, n_ord.child(gi)))
                gi += 1
            stack.extend(reversed(grand))
        return slot

    # ------------------------------------------------------------- finalize

    def _finalize(self) -> ImportResult:
        n_clusters = len(self.clusters)
        physical = list(range(n_clusters))
        if self.opts.fragmentation > 0.0:
            rng = random.Random(self.opts.seed)
            if self.opts.fragmentation >= 1.0:
                rng.shuffle(physical)
            else:
                swaps = int(self.opts.fragmentation * n_clusters)
                for _ in range(swaps):
                    i = rng.randrange(n_clusters)
                    j = rng.randrange(n_clusters)
                    physical[i], physical[j] = physical[j], physical[i]
        # physical[temp] = physical index within this document; add base offset
        page_no = [self.first_page_no + physical[t] for t in range(n_clusters)]
        for temp, cluster in enumerate(self.clusters):
            cluster.page.page_no = page_no[temp]
        for ci, si, cj, sj in self.pairs:
            a = self.clusters[ci].page.record(si)
            b = self.clusters[cj].page.record(sj)
            if not isinstance(a, BorderRecord) or not isinstance(b, BorderRecord):
                raise StoreCorruptError(
                    f"border pair ({ci},{si})<->({cj},{sj}) does not join two "
                    "border records"
                )
            a.companion = make_nodeid(page_no[cj], sj)
            b.companion = make_nodeid(page_no[ci], si)
        for node in range(len(self.tree)):
            self.node_page[node] = page_no[self.node_page[node]]
        pages = sorted((c.page for c in self.clusters), key=lambda p: p.page_no)
        root = make_nodeid(self.node_page[0], self.node_slot[0])
        return ImportResult(
            pages=pages,
            root=root,
            page_nos=[p.page_no for p in pages],
            n_border_pairs=len(self.pairs),
            n_continuations=self.n_continuations,
            node_page=self.node_page,
            node_slot=self.node_slot,
        )


def import_tree(
    tree: LogicalTree,
    options: ImportOptions | None = None,
    first_page_no: int = 0,
) -> ImportResult:
    """Cluster ``tree`` onto pages; see module docstring for the policy."""
    opts = options or ImportOptions()
    min_capacity = PAGE_HEADER + BORDER_RECORD_SIZE + 2 * SLOT_ENTRY + _CONT_RESERVE + _CHILD_WORST + 128
    if opts.page_size < min_capacity:
        raise StorageError(
            f"page size {opts.page_size} too small for import (need >= {min_capacity})"
        )
    return _Importer(tree, opts, first_page_no).run()
