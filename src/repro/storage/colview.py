"""Columnar cluster views: parallel-array mirrors of a page's records.

The batch-at-a-time datapath (``EvalOptions.batched``) evaluates a whole
location-step extension against arrays instead of chasing record objects:
a :class:`ColumnView` mirrors one :class:`~repro.storage.page.Page` as
parallel columns of node kinds, tag ids, parent/holder slot links, a CSR
flattening of the child-slot lists, and per-border direction flags.

Views are built lazily on first hot access (:meth:`Page.colview
<repro.storage.page.Page.colview>`) and are *invalidated*, never patched:
``Page.add``/``Page.tombstone`` drop the view, and every direct record
mutation in :mod:`repro.storage.update` calls
``Page.invalidate_colview()``.  A stale view is therefore impossible as
long as mutations go through those two doors — the coherence rule the
storage docs spell out.

Candidate discovery here is the charge-free half of the batched kernel:
:meth:`ColumnView.axis_candidates` / :meth:`ColumnView.resume_candidates`
return the *complete* candidate slot array of one ``iter_axis`` /
``iter_resume`` enumeration (same order, same corrupt-store exceptions),
plus the charge shape ``(upfront_hops, free_head)`` that lets
``XStep`` replay the scalar path's ``intra_hop`` charges
candidate-for-candidate.  The charge-shape contract:

* ``upfront_hops`` hop charges fire before the first candidate (and even
  when the candidate array is empty) — the sibling axes' holder lookup;
* the first ``free_head`` candidates carry **no** hop charge (``self``
  results and the sibling cluster-root short-circuit);
* every remaining candidate carries exactly one hop charge.

``repro.storage.nav`` remains the semantic reference; any change to its
candidate orders or charge placement must be mirrored here (the batched
equivalence property test enforces this bit-for-bit).
"""

from __future__ import annotations

from repro.axes import Axis
from repro.errors import StorageError, StoreCorruptError

#: ``kinds`` column sentinel for a border record.
KIND_BORDER = -1
#: ``kinds`` column sentinel for a tombstoned slot.
KIND_TOMBSTONE = -2

#: Shared empty candidate array (never mutated by callers).
_EMPTY: list[int] = []

#: A candidate batch: (upfront_hops, free_head, candidate slots).
CandidateBatch = tuple[int, int, "list[int]"]


class ColumnView:
    """Array mirror of one page, frozen at build time.

    Columns are indexed by slot number.  ``kinds[slot]`` is the record's
    :class:`~repro.model.tree.Kind` as an int, or :data:`KIND_BORDER` /
    :data:`KIND_TOMBSTONE`; ``parents[slot]`` holds a core record's
    ``parent_slot`` and a border record's ``local_slot`` (both are "the
    slot navigation follows upward").  Child-slot lists are flattened
    into one ``children`` array addressed by ``child_start``/``child_end``
    spans; ``child_start[slot] == -1`` encodes a border whose
    ``child_slots`` is ``None`` (distinct from an empty list, for
    corrupt-store exception parity with ``nav``).
    """

    __slots__ = (
        "page_no",
        "kinds",
        "tags",
        "parents",
        "child_start",
        "child_end",
        "children",
        "border_down",
        "border_cont",
        "entries_up",
        "entries_down",
        "entries_all",
        "_axis_cache",
        "_resume_cache",
        "_flag_cache",
        "_pre",
        "_pre_index",
        "_pre_size",
    )

    def __init__(self, page) -> None:
        records = page.records
        n = len(records)
        kinds = [KIND_TOMBSTONE] * n
        tags = [-1] * n
        parents = [-1] * n
        child_start = [-1] * n
        child_end = [-1] * n
        children: list[int] = []
        border_down = [False] * n
        border_cont = [False] * n
        entries_up: list[int] = []
        entries_down: list[int] = []
        entries_all: list[int] = []
        for slot, record in enumerate(records):
            if record is None:
                continue
            if record.is_border:
                kinds[slot] = KIND_BORDER
                parents[slot] = record.local_slot
                border_down[slot] = record.down
                border_cont[slot] = record.continuation
                entries_all.append(slot)
                if record.down:
                    entries_down.append(slot)
                else:
                    entries_up.append(slot)
                slots = record.child_slots
                if slots is not None:
                    child_start[slot] = len(children)
                    children.extend(slots)
                    child_end[slot] = len(children)
            else:
                kinds[slot] = int(record.kind)
                tags[slot] = record.tag
                parents[slot] = record.parent_slot
                child_start[slot] = len(children)
                children.extend(record.child_slots)
                child_end[slot] = len(children)
        self.page_no = page.page_no
        self.kinds = kinds
        self.tags = tags
        self.parents = parents
        self.child_start = child_start
        self.child_end = child_end
        self.children = children
        self.border_down = border_down
        self.border_cont = border_cont
        self.entries_up = entries_up
        self.entries_down = entries_down
        self.entries_all = entries_all
        #: candidate batches are immutable once built (callers never
        #: mutate them), so they are memoized per (slot, axis) — repeated
        #: extensions from the same node are free after the first
        self._axis_cache: dict = {}
        self._resume_cache: dict = {}
        self._flag_cache: dict = {}
        # preorder span table for descendant enumeration, built lazily on
        # the first descendant-axis batch (see _ensure_preorder)
        self._pre: list[int] | None = None
        self._pre_index: list[int] = _EMPTY
        self._pre_size: list[int] = _EMPTY

    # ------------------------------------------------------ extension batch

    def extension_batch(self, test, match_batch, slot: int, axis: Axis, resumed: bool):
        """One whole step extension, memoized: ``(upfront_hops, free_head,
        candidate slots, match flags)``.

        ``test`` (a hashable :class:`~repro.algebra.steps.CompiledNodeTest`)
        keys the cache so different steps sharing a view never cross;
        ``match_batch`` is its compiled batch closure, only invoked on a
        miss.  Both discovery and node-testing are charge-free, so the
        cache cannot perturb simulated timings — the kernels replay
        hop/test charges from the shape regardless.  The returned lists
        are shared — do not mutate.
        """
        key = (test, slot, axis, resumed)
        cached = self._flag_cache.get(key)
        if cached is None:
            if resumed:
                upfront, free_head, cands = self.resume_candidates(slot, axis)
            else:
                upfront, free_head, cands = self.axis_candidates(slot, axis)
            flags = match_batch(self.kinds, self.tags, cands)
            cached = self._flag_cache[key] = (upfront, free_head, cands, flags)
        return cached

    # ----------------------------------------------------------- axis batch

    def axis_candidates(self, slot: int, axis: Axis) -> CandidateBatch:
        """Candidate batch of ``axis`` from the core node at ``slot``.

        Mirrors :func:`repro.storage.nav.iter_axis`: same candidate
        order, same exceptions, charges encoded in the batch shape.
        The returned batch is shared (memoized) — do not mutate it.
        """
        key = (slot, axis)
        batch = self._axis_cache.get(key)
        if batch is None:
            batch = self._axis_cache[key] = self._axis_uncached(slot, axis)
        return batch

    def _axis_uncached(self, slot: int, axis: Axis) -> CandidateBatch:
        kinds = self.kinds
        try:
            kind = kinds[slot]
        except IndexError:
            raise StorageError(f"bad slot {slot} on page {self.page_no}") from None
        if kind < 0:
            raise StorageError(
                f"iter_axis from non-core slot {slot} on page {self.page_no}"
            )
        if axis is Axis.CHILD or axis is Axis.ATTRIBUTE:
            return 0, 0, self.children[self.child_start[slot] : self.child_end[slot]]
        if axis is Axis.DESCENDANT:
            out: list[int] = []
            self._descend(slot, out)
            return 0, 0, out
        if axis is Axis.DESCENDANT_OR_SELF:
            out = [slot]
            self._descend(slot, out)
            return 0, 1, out
        if axis is Axis.SELF:
            return 0, 1, [slot]
        if axis is Axis.PARENT:
            parent_slot = self.parents[slot]
            if parent_slot < 0:
                return 0, 0, _EMPTY
            return 0, 0, [parent_slot]
        if axis is Axis.ANCESTOR:
            out = []
            self._ascend(slot, out)
            return 0, 0, out
        if axis is Axis.ANCESTOR_OR_SELF:
            out = [slot]
            self._ascend(slot, out)
            return 0, 1, out
        if axis is Axis.FOLLOWING_SIBLING:
            return self._siblings(slot, forward=True)
        if axis is Axis.PRECEDING_SIBLING:
            return self._siblings(slot, forward=False)
        raise StorageError(f"unsupported axis {axis}")  # pragma: no cover

    def _descend(self, slot: int, out: list[int]) -> None:
        """Preorder page-local descendants of ``slot``, borders unexpanded.

        Served from the preorder span table: a subtree is a contiguous
        run of the page-forest preorder, so the descendants of any core
        node are one slice.  The walk fallback only fires for slots the
        forest does not reach (corrupt stores).
        """
        pre = self._pre
        if pre is None:
            pre = self._ensure_preorder()
        index = self._pre_index[slot]
        if index < 0:
            self._descend_walk(slot, out)
            return
        out.extend(pre[index + 1 : index + self._pre_size[slot]])

    def _ensure_preorder(self) -> list[int]:
        """Build the page-forest preorder and per-slot subtree spans.

        Roots are the core records whose parent link leaves the page
        (document root, or a holder border — including the upward side of
        continuations, whose remainder children hang off the proxy).
        Border slots appear as unexpanded leaves inside their holder's
        span, exactly as :meth:`_descend_walk` emits them.
        """
        kinds = self.kinds
        parents = self.parents
        children = self.children
        start = self.child_start
        end = self.child_end
        n = len(kinds)
        pre: list[int] = []
        pre_index = [-1] * n
        pre_size = [1] * n
        for root in range(n):
            if kinds[root] < 0:
                continue
            parent_slot = parents[root]
            if parent_slot >= 0 and kinds[parent_slot] >= 0:
                continue  # covered by the parent core's subtree
            stack = [root]
            pop = stack.pop
            append = pre.append
            while stack:
                s = pop()
                pre_index[s] = len(pre)
                append(s)
                if kinds[s] >= 0:
                    a = start[s]
                    b = end[s]
                    if b > a:
                        tail = children[a:b]
                        tail.reverse()
                        stack.extend(tail)
        # subtree sizes: every node's DFS parent is its parent link (cores
        # link to their parent core, border leaves to their holder), so a
        # reverse-preorder pass accumulates child sizes into parents
        for i in range(len(pre) - 1, -1, -1):
            s = pre[i]
            parent_slot = parents[s]
            if parent_slot >= 0 and kinds[parent_slot] >= 0 and pre_index[parent_slot] >= 0:
                pre_size[parent_slot] += pre_size[s]
        self._pre = pre
        self._pre_index = pre_index
        self._pre_size = pre_size
        return pre

    def _descend_walk(self, slot: int, out: list[int]) -> None:
        """Explicit-stack preorder walk (corrupt-store fallback)."""
        children = self.children
        start = self.child_start
        end = self.child_end
        kinds = self.kinds
        stack = children[start[slot] : end[slot]]
        stack.reverse()
        pop = stack.pop
        append = out.append
        while stack:
            s = pop()
            append(s)
            if kinds[s] >= 0:
                a = start[s]
                b = end[s]
                if b > a:
                    tail = children[a:b]
                    tail.reverse()
                    stack.extend(tail)

    def _ascend(self, slot: int, out: list[int]) -> None:
        """Ancestors of ``slot``, stopping at (and including) a border."""
        parents = self.parents
        kinds = self.kinds
        append = out.append
        current = slot
        while True:
            parent_slot = parents[current]
            if parent_slot < 0:
                return
            append(parent_slot)
            if kinds[parent_slot] < 0:
                return
            current = parent_slot

    def _siblings(self, slot: int, forward: bool) -> CandidateBatch:
        parent_slot = self.parents[slot]
        if parent_slot < 0:
            return 0, 0, _EMPTY
        kinds = self.kinds
        try:
            holder_kind = kinds[parent_slot]
        except IndexError:
            raise StorageError(
                f"bad slot {parent_slot} on page {self.page_no}"
            ) from None
        if holder_kind == KIND_BORDER and not self.border_cont[parent_slot]:
            # cluster root: siblings live with the parent, across this
            # border — one upfront hop, candidate itself uncharged
            return 1, 1, [parent_slot]
        cs = self.child_start[parent_slot]
        if cs < 0:
            raise StoreCorruptError(
                f"holder at page {self.page_no} slot {parent_slot} has no child list"
            )
        ce = self.child_end[parent_slot]
        children = self.children
        index = children.index(slot, cs, ce)
        if forward:
            return 1, 0, children[index + 1 : ce]
        cands = children[cs:index]
        cands.reverse()
        if holder_kind == KIND_BORDER:
            # earlier chunks of the child list live across the proxy's edge
            cands.append(parent_slot)
        return 1, 0, cands

    # --------------------------------------------------------- resume batch

    def resume_candidates(self, slot: int, axis: Axis) -> CandidateBatch:
        """Candidate batch resuming ``axis`` at the border ``slot``.

        Mirrors :func:`repro.storage.nav.iter_resume` (which takes the
        *original* step axis, as XStep passes it).  The returned batch is
        shared (memoized) — do not mutate it.
        """
        key = (slot, axis)
        batch = self._resume_cache.get(key)
        if batch is None:
            batch = self._resume_cache[key] = self._resume_uncached(slot, axis)
        return batch

    def _resume_uncached(self, slot: int, axis: Axis) -> CandidateBatch:
        kinds = self.kinds
        try:
            kind = kinds[slot]
        except IndexError:
            raise StorageError(f"bad slot {slot} on page {self.page_no}") from None
        if kind != KIND_BORDER:
            raise StorageError(f"iter_resume at non-border slot {slot}")
        cont = self.border_cont[slot]
        if axis is Axis.CHILD or axis is Axis.ATTRIBUTE:
            if not cont:
                return 0, 0, [self.parents[slot]]
            cs = self.child_start[slot]
            if cs < 0:
                raise StoreCorruptError(
                    f"continuation proxy at page {self.page_no} slot {slot} "
                    "has no child list"
                )
            return 0, 0, self.children[cs : self.child_end[slot]]
        if axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
            if cont:
                cs = self.child_start[slot]
                if cs < 0:
                    raise StoreCorruptError(
                        f"continuation proxy at page {self.page_no} slot {slot} "
                        "has no child list"
                    )
                out: list[int] = []
                for child in self.children[cs : self.child_end[slot]]:
                    out.append(child)
                    if kinds[child] >= 0:
                        self._descend(child, out)
                return 0, 0, out
            local = self.parents[slot]
            if kinds[local] < 0:
                raise StoreCorruptError(
                    f"up-border at page {self.page_no} slot {slot} points at "
                    f"slot {local}, which is not a core record"
                )
            out = [local]
            self._descend(local, out)
            return 0, 0, out
        if axis is Axis.SELF:
            return 0, 0, [self.parents[slot]]
        if axis is Axis.PARENT or axis is Axis.ANCESTOR or axis is Axis.ANCESTOR_OR_SELF:
            holder_slot = self.parents[slot]
            try:
                holder_kind = kinds[holder_slot]
            except IndexError:
                raise StorageError(
                    f"bad slot {holder_slot} on page {self.page_no}"
                ) from None
            if holder_kind < 0:
                # holder is a proxy: the parent core node lies across its edge
                return 0, 0, [holder_slot]
            if axis is Axis.PARENT:
                return 0, 0, [holder_slot]
            out = [holder_slot]
            self._ascend(holder_slot, out)
            return 0, 0, out
        if axis is Axis.FOLLOWING_SIBLING or axis is Axis.PRECEDING_SIBLING:
            return self._resume_sibling(slot, forward=axis is Axis.FOLLOWING_SIBLING)
        raise StorageError(f"unsupported resume axis {axis}")  # pragma: no cover

    def _resume_sibling(self, slot: int, forward: bool) -> CandidateBatch:
        if not self.border_down[slot]:
            if not self.border_cont[slot]:
                # candidate crossing: the sibling is this cluster's local root
                return 0, 0, [self.parents[slot]]
            cs = self.child_start[slot]
            if cs < 0:
                raise StoreCorruptError(
                    f"continuation proxy at page {self.page_no} slot {slot} "
                    "has no child list"
                )
            cands = self.children[cs : self.child_end[slot]]
            if not forward:
                cands.reverse()
            return 0, 0, cands
        local = self.parents[slot]
        try:
            cs = self.child_start[local]
        except IndexError:
            raise StorageError(f"bad slot {local} on page {self.page_no}") from None
        if cs < 0:
            raise StoreCorruptError(
                f"holder at page {self.page_no} slot {local} has no child list"
            )
        ce = self.child_end[local]
        children = self.children
        index = children.index(slot, cs, ce)
        if forward:
            return 1, 0, children[index + 1 : ce]
        cands = children[cs:index]
        cands.reverse()
        if self.kinds[local] == KIND_BORDER:
            cands.append(local)
        return 1, 0, cands

    # ---------------------------------------------------------- speculation

    def entry_slots(self, axis: Axis) -> list[int]:
        """Precomputed :func:`~repro.storage.nav.speculative_entries`.

        Border slots (ascending) at which a paused ``axis`` step could
        enter this page.  The returned list is shared — do not mutate.
        """
        if axis is Axis.SELF:
            return _EMPTY
        if axis.is_downward:
            return self.entries_up
        if axis.is_upward:
            return self.entries_down
        return self.entries_all
