"""Write-ahead logging, checkpointing, and crash recovery.

The paper's algebra is read-only, but the update module
(:mod:`repro.storage.update`) makes stores mutable — and a mutable store
that persists via a non-atomic whole-file rewrite loses data the moment
a crash lands mid-save.  This module closes that gap with a classic
redo-only design, adapted to the repository's determinism rules:

* **Logical redo log.**  Every update operation (insert, delete-subtree,
  value update) is appended to a side log as a *logical* entry — the
  operation and its arguments, not page deltas.  Each entry carries a
  monotonically increasing LSN and a CRC32 over its bytes, so recovery
  can replay the valid prefix and stop cleanly at a torn or corrupt
  tail.  Logical logging is sound here because replay is deterministic:
  update operations are pure functions of store state (slot reuse is
  canonicalised — see :class:`repro.storage.page.Page`), so replaying
  the same operations against the checkpoint image reproduces the same
  physical records *and the same NodeIDs*, which later log entries
  reference.

* **Apply-then-log.**  An operation is applied in memory first and
  appended to the log only once it succeeded.  Operations that fail
  validation (bad position, full page with nothing relocatable) never
  enter the log, so replay never faces a failing entry.  The cost is the
  usual one: an operation interrupted *between* apply and append is lost
  on recovery — it was never acknowledged, so nothing durable claimed
  it.  Acknowledged operations (the append returned, with an fsync under
  the default per-op sync policy) are never lost.

* **Checkpoint = atomic whole-image save.**  :meth:`WriteAheadLog.checkpoint`
  stamps the store's ``checkpoint_lsn`` and writes the image through the
  atomic :func:`~repro.storage.persist.save_store` (temp file, fsync,
  rename), then resets the log.  A crash anywhere in that sequence
  leaves either the old image + full log, or the new image + a log whose
  entries are all already covered (replay skips ``lsn <=
  checkpoint_lsn``), or the new image + an empty log.

* **Incremental synopsis repair.**  Updates normally null a document's
  cluster synopsis (pruning then disables itself).  Under WAL
  management, every page carries a mutation counter
  (:attr:`~repro.storage.page.Page.version`); after each applied
  operation the manager recollects synopsis rows for just the touched
  pages and patches them into the previous synopsis
  (:func:`repro.storage.store.repair_synopsis`).  Replay runs the same
  maintenance, so a recovered store's synopsis is bit-identical to the
  uncrashed one — and mixed read/write workloads keep their pruning
  instead of losing it to the first insert.  Schema *statistics* stay
  invalidated on update either way (the AUTO chooser degrades
  identically with and without a crash).

Log file format (all integers little-endian)::

    header: magic "RWAL" | u16 version | u64 base_lsn
    entry:  u64 lsn | u8 op | u32 payload_len | payload
            | u32 crc32(head + payload)

``base_lsn`` is the LSN already folded into the checkpoint when the log
was created; entry LSNs continue from it without gaps.  A short read or
CRC mismatch at the tail is the expected shape of a crash and ends the
scan; a bad magic number, unsupported version, or LSN discontinuity in
the *body* is structural damage and raises
:class:`~repro.errors.WalCorruptError`.

Crash points for the kill-and-recover tests are injected through
:class:`repro.sim.faults.CrashInjector`: log appends and checkpoint page
writes route their bytes through it (so writes can be *torn*, not just
skipped), and the checkpoint temp/rename/log-reset steps announce
themselves.  With no injector attached, none of these paths cost
anything — and with the WAL disabled entirely (``Database.wal is
None``), the query engine never touches this module.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, BinaryIO, Iterator

from repro.errors import StorageError, StoreCorruptError, WalCorruptError
from repro.model.tree import Kind
from repro.sim.faults import CRASH_WAL_APPEND, CRASH_WAL_TRUNCATE
from repro.storage.nodeid import NodeID
from repro.storage.persist import load_store, save_store
from repro.storage.store import (
    DocumentStore,
    StoredDocument,
    repair_pathsummary,
    repair_synopsis,
)
from repro.storage.update import delete_subtree, insert_node, update_value

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.faults import CrashInjector

_WAL_MAGIC = b"RWAL"
_WAL_VERSION = 1
#: header tail after the magic: ``u16 version | u64 base_lsn``
_WAL_HEADER = struct.Struct("<HQ")
#: entry head: ``u64 lsn | u8 op | u32 payload_len``
_ENTRY_HEAD = struct.Struct("<QBI")
_CRC = struct.Struct("<I")

OP_INSERT = 1
OP_DELETE = 2
OP_SET_VALUE = 3

_KNOWN_OPS = frozenset({OP_INSERT, OP_DELETE, OP_SET_VALUE})


# ------------------------------------------------------------ payloads


def _p_str(out: io.BytesIO, text: str) -> None:
    data = text.encode("utf-8")
    out.write(struct.pack("<H", len(data)))
    out.write(data)


def _p_long_str(out: io.BytesIO, text: str) -> None:
    data = text.encode("utf-8")
    out.write(struct.pack("<I", len(data)))
    out.write(data)


def _take(inp: io.BytesIO, n: int, what: str) -> bytes:
    data = inp.read(n)
    if len(data) != n:
        raise WalCorruptError(
            f"undecodable WAL payload: wanted {n} byte(s) of {what}, got {len(data)}"
        )
    return data


def _u_str(inp: io.BytesIO, what: str) -> str:
    (length,) = struct.unpack("<H", _take(inp, 2, what))
    return _take(inp, length, what).decode("utf-8")


def _u_long_str(inp: io.BytesIO, what: str) -> str:
    (length,) = struct.unpack("<I", _take(inp, 4, what))
    return _take(inp, length, what).decode("utf-8")


def _encode_insert(
    doc_name: str,
    parent: NodeID,
    position: int,
    tag_name: str,
    kind: Kind,
    value: str | None,
    result: NodeID,
) -> bytes:
    out = io.BytesIO()
    _p_str(out, doc_name)
    out.write(struct.pack("<QI", int(parent), position))
    _p_str(out, tag_name)
    out.write(struct.pack("<BB", int(kind), 0 if value is None else 1))
    if value is not None:
        _p_long_str(out, value)
    out.write(struct.pack("<Q", int(result)))
    return out.getvalue()


def _encode_delete(doc_name: str, nid: NodeID, removed: int) -> bytes:
    out = io.BytesIO()
    _p_str(out, doc_name)
    out.write(struct.pack("<QI", int(nid), removed))
    return out.getvalue()


def _encode_set_value(doc_name: str, nid: NodeID, value: str) -> bytes:
    out = io.BytesIO()
    _p_str(out, doc_name)
    out.write(struct.pack("<Q", int(nid)))
    _p_long_str(out, value)
    return out.getvalue()


# ----------------------------------------------------- touched tracking


def _touched_pages(store: DocumentStore, versions: list[int]) -> list[int]:
    """Page numbers whose mutation counter moved since the last call.

    ``versions`` is the caller-owned snapshot (index = page number); it
    is updated in place.  New pages count as touched.  The scan is
    ordered by page number, so downstream iteration is deterministic.
    """
    touched: list[int] = []
    for page in store.segment.pages():
        page_no = page.page_no
        if page_no >= len(versions):
            versions.append(page.version)
            touched.append(page_no)
        elif versions[page_no] != page.version:
            versions[page_no] = page.version
            touched.append(page_no)
    return touched


def _maintained_apply(
    store: DocumentStore,
    doc: StoredDocument,
    versions: list[int],
    apply,
):
    """Run one update operation with snapshot maintenance around it.

    Captures the document's synopsis and path summary before the
    operation nulls them, applies, then patches rows for exactly the
    pages the operation touched.  Shared verbatim by live logged
    operations and recovery replay — which is what makes the recovered
    snapshots bit-identical to the uncrashed ones.
    """
    base = doc.synopsis
    base_summary = doc.pathsummary
    result = apply()
    touched = _touched_pages(store, versions)
    repair_synopsis(store, doc, base, touched)
    repair_pathsummary(store, doc, base_summary, touched)
    if os.environ.get("REPRO_SAN"):
        from repro.analysis import sanitize

        if "mutation" in sanitize.modes():
            from repro.analysis.sanitize.mutation import check_maintenance

            check_maintenance(store, doc)
    return result, touched


# ------------------------------------------------------------- scanning


def _read_wal_header(inp: BinaryIO, wal_path: str) -> tuple[int, bool]:
    """Parse the log header; returns (base_lsn, torn).

    A header shorter than its fixed size is the signature of a crash
    during log reset — the log is then empty by construction (resets
    happen only right after a checkpoint captured everything), so it is
    reported as a torn, entry-less log rather than an error.
    """
    magic = inp.read(4)
    if len(magic) < 4:
        return 0, True
    if magic != _WAL_MAGIC:
        raise WalCorruptError(f"{wal_path} is not a repro WAL file")
    head = inp.read(_WAL_HEADER.size)
    if len(head) < _WAL_HEADER.size:
        return 0, True
    version, base_lsn = _WAL_HEADER.unpack(head)
    if version != _WAL_VERSION:
        raise WalCorruptError(f"unsupported WAL version {version} in {wal_path}")
    return base_lsn, False


def _scan_wal(wal_path: str) -> tuple[int, list[tuple[int, int, bytes]], bool]:
    """Scan the log into (base_lsn, [(lsn, op, payload)], torn_tail).

    Stops cleanly at the first torn or checksum-failing entry (the tail
    a crash leaves behind); raises :class:`WalCorruptError` for damage
    that cannot be a tail — bad magic, bad version, an LSN that does not
    follow its predecessor, an unknown operation code on an entry whose
    checksum *passed*.
    """
    entries: list[tuple[int, int, bytes]] = []
    with open(wal_path, "rb") as inp:
        base_lsn, torn = _read_wal_header(inp, wal_path)
        if torn:
            return base_lsn, entries, True
        expected = base_lsn
        while True:
            head = inp.read(_ENTRY_HEAD.size)
            if not head:
                return base_lsn, entries, False  # clean end
            if len(head) < _ENTRY_HEAD.size:
                return base_lsn, entries, True
            lsn, op, payload_len = _ENTRY_HEAD.unpack(head)
            payload = inp.read(payload_len)
            if len(payload) < payload_len:
                return base_lsn, entries, True
            crc_bytes = inp.read(_CRC.size)
            if len(crc_bytes) < _CRC.size:
                return base_lsn, entries, True
            (crc,) = _CRC.unpack(crc_bytes)
            if zlib.crc32(head + payload) != crc:
                return base_lsn, entries, True
            # from here on the entry is checksum-clean: anything odd is
            # real corruption, not a torn tail
            if lsn != expected + 1:
                raise WalCorruptError(
                    f"WAL LSN discontinuity in {wal_path}: "
                    f"entry {lsn} follows {expected}"
                )
            if op not in _KNOWN_OPS:
                raise WalCorruptError(
                    f"unknown WAL operation code {op} at LSN {lsn} in {wal_path}"
                )
            expected = lsn
            entries.append((lsn, op, payload))


# -------------------------------------------------------------- replay


def _replay_entry(
    store: DocumentStore, lsn: int, op: int, payload: bytes, versions: list[int]
) -> list[int]:
    """Re-apply one logged operation; returns the pages it touched.

    Replay validates its own determinism: the logged result (the NodeID
    an insert minted, the node count a delete removed) must match the
    re-applied operation's result, or the checkpoint and the log do not
    describe the same history.
    """
    inp = io.BytesIO(payload)
    doc_name = _u_str(inp, "document name")
    doc = store.document(doc_name)
    if op == OP_INSERT:
        parent_raw, position = struct.unpack(
            "<QI", _take(inp, 12, "insert target")
        )
        tag_name = _u_str(inp, "tag name")
        kind_raw, has_value = struct.unpack("<BB", _take(inp, 2, "insert kind"))
        value = _u_long_str(inp, "insert value") if has_value else None
        (logged_nid,) = struct.unpack("<Q", _take(inp, 8, "insert result"))
        nid, touched = _maintained_apply(
            store,
            doc,
            versions,
            lambda: insert_node(
                store, doc, NodeID(parent_raw), position, tag_name,
                Kind(kind_raw), value,
            ),
        )
        if int(nid) != logged_nid:
            raise StoreCorruptError(
                f"replay diverged at LSN {lsn}: insert produced node "
                f"{int(nid)}, log recorded {logged_nid}"
            )
    elif op == OP_DELETE:
        nid_raw, logged_removed = struct.unpack(
            "<QI", _take(inp, 12, "delete target")
        )
        removed, touched = _maintained_apply(
            store,
            doc,
            versions,
            lambda: delete_subtree(store, doc, NodeID(nid_raw)),
        )
        if removed != logged_removed:
            raise StoreCorruptError(
                f"replay diverged at LSN {lsn}: delete removed {removed} "
                f"node(s), log recorded {logged_removed}"
            )
    else:  # OP_SET_VALUE — _scan_wal already rejected unknown codes
        (nid_raw,) = struct.unpack("<Q", _take(inp, 8, "value target"))
        value = _u_long_str(inp, "new value")
        _, touched = _maintained_apply(
            store,
            doc,
            versions,
            lambda: update_value(store, NodeID(nid_raw), value),
        )
    return touched


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What :func:`recover_store` found and did."""

    store_path: str
    wal_path: str
    #: LSN the loaded checkpoint image was taken at.
    checkpoint_lsn: int
    #: LSN of the last operation the recovered store reflects.
    last_lsn: int
    #: log entries re-applied (``lsn > checkpoint_lsn``).
    replayed: int
    #: log entries skipped as already covered by the checkpoint.
    skipped: int
    #: True if the log ended in a torn or checksum-failing entry.
    torn_tail: bool
    #: pages touched by replay, ascending (empty when nothing replayed).
    touched_pages: tuple[int, ...]


def recover_store(
    path: str, wal_path: str | None = None
) -> tuple[DocumentStore, RecoveryReport]:
    """Load the last good checkpoint and replay the log's valid prefix.

    ``path`` is the checkpoint image; the log defaults to
    ``path + ".wal"``.  A leftover ``path + ".tmp"`` from an interrupted
    checkpoint is deleted (it is never a source of truth — the rename
    either happened, making it ``path``, or the old image is intact).  A
    missing log file means no updates ran since the last checkpoint.

    Returns the recovered store and a :class:`RecoveryReport`.  The
    recovered store matches the uncrashed store after its first
    ``report.last_lsn`` operations exactly: records, NodeIDs, free
    slots, and synopsis rows (repaired incrementally for the touched
    pages only).
    """
    if wal_path is None:
        wal_path = path + ".wal"
    stale_tmp = path + ".tmp"
    if os.path.exists(stale_tmp):
        os.remove(stale_tmp)
    store = load_store(path)
    checkpoint_lsn = store.checkpoint_lsn
    if not os.path.exists(wal_path):
        report = RecoveryReport(
            store_path=path,
            wal_path=wal_path,
            checkpoint_lsn=checkpoint_lsn,
            last_lsn=checkpoint_lsn,
            replayed=0,
            skipped=0,
            torn_tail=False,
            touched_pages=(),
        )
        return store, report
    base_lsn, entries, torn_tail = _scan_wal(wal_path)
    if entries and base_lsn > checkpoint_lsn:
        raise WalCorruptError(
            f"WAL {wal_path} begins at LSN {base_lsn} but the checkpoint "
            f"only covers LSN {checkpoint_lsn}: operations are missing"
        )
    versions = [page.version for page in store.segment.pages()]
    touched: set[int] = set()
    replayed = 0
    skipped = 0
    last_lsn = checkpoint_lsn
    for lsn, op, payload in entries:
        if lsn <= checkpoint_lsn:
            # the checkpoint already contains this operation (a crash hit
            # between the image rename and the log reset)
            skipped += 1
            continue
        touched.update(_replay_entry(store, lsn, op, payload, versions))
        replayed += 1
        last_lsn = lsn
    # the in-memory store now reflects last_lsn, not the image's LSN: a
    # later checkpoint (e.g. WriteAheadLog.create re-attaching) must
    # stamp the covered LSN, and fresh operations must continue past the
    # replayed tail rather than reuse its numbers
    store.checkpoint_lsn = last_lsn
    report = RecoveryReport(
        store_path=path,
        wal_path=wal_path,
        checkpoint_lsn=checkpoint_lsn,
        last_lsn=last_lsn,
        replayed=replayed,
        skipped=skipped,
        torn_tail=torn_tail,
        touched_pages=tuple(sorted(touched)),
    )
    return store, report


# -------------------------------------------------------------- manager


class WriteAheadLog:
    """Durability manager binding one store to a checkpoint + log pair.

    All updates to a managed store must go through :meth:`insert`,
    :meth:`delete` and :meth:`set_value` — they apply the operation,
    maintain the document synopsis incrementally, and append the log
    entry.  :meth:`checkpoint` folds the log into a new atomic image.

    The default sync policy is one fsync per operation; wrap a run of
    operations in :meth:`group_commit` for one fsync per run (the batch
    executor does) — operations inside the window are not durable until
    it closes.
    """

    __slots__ = (
        "store",
        "store_path",
        "wal_path",
        "checkpoint_every",
        "crash",
        "_out",
        "_lsn",
        "_since_checkpoint",
        "_versions",
        "_deferred_sync",
    )

    def __init__(
        self,
        store: DocumentStore,
        store_path: str,
        out: BinaryIO,
        lsn: int,
        *,
        wal_path: str,
        checkpoint_every: int | None = None,
        crash: "CrashInjector | None" = None,
    ) -> None:
        if checkpoint_every is not None and checkpoint_every < 1:
            raise StorageError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.store = store
        self.store_path = store_path
        self.wal_path = wal_path
        self.checkpoint_every = checkpoint_every
        self.crash = crash
        self._out = out
        self._lsn = lsn
        self._since_checkpoint = 0
        self._versions = [page.version for page in store.segment.pages()]
        self._deferred_sync = False
        # crash points inside update operations read the injector off the
        # store (update.py has no manager handle)
        store.crash = crash

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(
        cls,
        store: DocumentStore,
        store_path: str,
        *,
        wal_path: str | None = None,
        checkpoint_every: int | None = None,
        crash: "CrashInjector | None" = None,
    ) -> "WriteAheadLog":
        """Put ``store`` under WAL management, checkpointing it now.

        The initial checkpoint guarantees a recoverable image exists
        before the first logged operation.  If the files already exist
        they are overwritten — use :func:`recover_store` +
        :meth:`create` (or :meth:`Database.recover
        <repro.engine.Database.recover>`) to continue an existing pair.

        The crash injector is *not* consulted during this setup: the
        kill-and-recover contract starts once a recoverable image
        exists, so crash points count occurrences from the first logged
        operation onwards.
        """
        if wal_path is None:
            wal_path = store_path + ".wal"
        manager = cls(
            store,
            store_path,
            out=_fresh_log(wal_path, store.checkpoint_lsn, crash=None),
            lsn=store.checkpoint_lsn,
            wal_path=wal_path,
            checkpoint_every=checkpoint_every,
            crash=crash,
        )
        save_store(store, store_path)
        return manager

    def close(self) -> None:
        """Flush, fsync and release the log file handle."""
        if not self._out.closed:
            self.sync()
            self._out.close()
        self.store.crash = None

    # -- logged operations ---------------------------------------------

    @property
    def lsn(self) -> int:
        """LSN of the last acknowledged operation."""
        return self._lsn

    def insert(
        self,
        doc_name: str,
        parent: NodeID,
        position: int,
        tag_name: str,
        kind: Kind = Kind.ELEMENT,
        value: str | None = None,
    ) -> NodeID:
        """Logged :func:`~repro.storage.update.insert_node`."""
        doc = self.store.document(doc_name)
        (nid, _) = _maintained_apply(
            self.store,
            doc,
            self._versions,
            lambda: insert_node(
                self.store, doc, parent, position, tag_name, kind, value
            ),
        )
        self._append(
            OP_INSERT,
            _encode_insert(doc_name, parent, position, tag_name, kind, value, nid),
        )
        return nid

    def delete(self, doc_name: str, nid: NodeID) -> int:
        """Logged :func:`~repro.storage.update.delete_subtree`."""
        doc = self.store.document(doc_name)
        (removed, _) = _maintained_apply(
            self.store,
            doc,
            self._versions,
            lambda: delete_subtree(self.store, doc, nid),
        )
        self._append(OP_DELETE, _encode_delete(doc_name, nid, removed))
        return removed

    def set_value(self, doc_name: str, nid: NodeID, value: str) -> None:
        """Logged :func:`~repro.storage.update.update_value`."""
        doc = self.store.document(doc_name)
        _maintained_apply(
            self.store,
            doc,
            self._versions,
            lambda: update_value(self.store, nid, value),
        )
        self._append(OP_SET_VALUE, _encode_set_value(doc_name, nid, value))

    # -- sync & checkpoint ---------------------------------------------

    def sync(self) -> None:
        """Push appended entries to stable storage (flush + fsync)."""
        self._out.flush()
        os.fsync(self._out.fileno())

    @contextmanager
    def group_commit(self) -> Iterator[None]:
        """Defer fsync to the end of the block: one sync per update run.

        The group-commit durability trade: operations inside the window
        are applied and logged but not yet stable — a crash inside the
        window can lose the whole run (never a prefix-breaking subset;
        the log is still strictly ordered).
        """
        if self._deferred_sync:
            yield  # already inside a window: the outermost one syncs
            return
        self._deferred_sync = True
        try:
            yield
        finally:
            self._deferred_sync = False
            if not self._out.closed:
                self.sync()

    def checkpoint(self) -> None:
        """Fold the log into a fresh atomic image and reset the log."""
        crash = self.crash
        self.store.checkpoint_lsn = self._lsn
        save_store(self.store, self.store_path, crash=crash)
        # the image now covers every logged operation; a crash from here
        # on leaves a log whose entries replay as no-ops (lsn <=
        # checkpoint_lsn) or an empty log
        self._out.close()
        self._out = _fresh_log(self.wal_path, self._lsn, crash=crash)
        self._since_checkpoint = 0

    def _append(self, op: int, payload: bytes) -> None:
        lsn = self._lsn + 1
        head = _ENTRY_HEAD.pack(lsn, op, len(payload))
        entry = head + payload + _CRC.pack(zlib.crc32(head + payload))
        crash = self.crash
        if crash is not None:
            crash.write(CRASH_WAL_APPEND, self._out, entry)
        else:
            self._out.write(entry)
        self._lsn = lsn
        if not self._deferred_sync:
            self.sync()
        self._since_checkpoint += 1
        if (
            self.checkpoint_every is not None
            and self._since_checkpoint >= self.checkpoint_every
        ):
            self.checkpoint()


def _fresh_log(
    wal_path: str, base_lsn: int, *, crash: "CrashInjector | None"
) -> BinaryIO:
    """Create (or reset) the log file with a clean header.

    The ``wal-truncate`` crash point fires after the file is truncated
    but before the header lands — recovery treats the resulting
    header-less file as an empty log, which is sound because resets only
    happen right after a checkpoint captured every logged operation.
    """
    out = open(wal_path, "wb")
    try:
        if crash is not None:
            crash.check(CRASH_WAL_TRUNCATE)
        out.write(_WAL_MAGIC)
        out.write(_WAL_HEADER.pack(_WAL_VERSION, base_lsn))
        out.flush()
        os.fsync(out.fileno())
    except BaseException:
        out.close()
        raise
    return out
