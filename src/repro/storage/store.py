"""Document store: segments, stored documents, and structural validation.

A :class:`DocumentStore` owns one :class:`~repro.storage.page.Segment`
(the on-disk image) and any number of imported documents.  It also
provides :func:`export_tree`, which reconstructs the logical tree from the
physical records — used by the round-trip tests and doubling as the
document-export feature the paper's outlook section mentions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError, StoreCorruptError
from repro.model.builder import TreeBuilder
from repro.model.tags import TagDictionary
from repro.model.tree import Kind, LogicalTree
from repro.storage.importer import ImportOptions, ImportResult, import_tree
from repro.storage.nodeid import NodeID, make_nodeid, page_of, slot_of
from repro.storage.page import Segment
from repro.storage.pathsummary import PathSummary
from repro.storage.record import BorderRecord, CoreRecord
from repro.storage.synopsis import ClusterSynopsis


@dataclass
class DocumentStatistics:
    """Schema-level statistics collected at import time.

    Used by the AUTO plan chooser (the cost model the paper's outlook
    section calls for) to estimate how much of the document a path visits.

    ``child_pairs[(p, c)]`` counts parent-child tag pairs;
    ``desc_pairs[(a, d)]`` counts ancestor-descendant tag pairs (exact,
    computed with an O(n * depth) sweep).
    """

    n_nodes: int
    n_elements: int
    tag_counts: dict[int, int]
    child_pairs: dict[tuple[int, int], int]
    desc_pairs: dict[tuple[int, int], int]

    @staticmethod
    def collect(tree: LogicalTree) -> "DocumentStatistics":
        tag_counts: dict[int, int] = {}
        child_pairs: dict[tuple[int, int], int] = {}
        desc_pairs: dict[tuple[int, int], int] = {}
        tags_arr = tree.tag
        parent = tree.parent
        n_elements = 0
        for node in range(len(tree)):
            tag = tags_arr[node]
            tag_counts[tag] = tag_counts.get(tag, 0) + 1
            if tree.kind[node] == Kind.ELEMENT:
                n_elements += 1
            p = parent[node]
            if p >= 0:
                pair = (tags_arr[p], tag)
                child_pairs[pair] = child_pairs.get(pair, 0) + 1
                ancestor = p
                while ancestor >= 0:
                    dpair = (tags_arr[ancestor], tag)
                    desc_pairs[dpair] = desc_pairs.get(dpair, 0) + 1
                    ancestor = parent[ancestor]
        return DocumentStatistics(
            n_nodes=len(tree),
            n_elements=n_elements,
            tag_counts=tag_counts,
            child_pairs=child_pairs,
            desc_pairs=desc_pairs,
        )


@dataclass
class StoredDocument:
    """Catalog entry for one imported document."""

    name: str
    root: NodeID
    page_nos: list[int]  #: physical pages of this document, ascending
    n_nodes: int
    n_border_pairs: int
    n_continuations: int
    import_result: ImportResult = field(repr=False)
    statistics: DocumentStatistics | None = field(default=None, repr=False)
    #: Per-cluster structural summary; None disables synopsis pruning
    #: (structural updates invalidate it until recollected).
    synopsis: ClusterSynopsis | None = field(default=None, repr=False)
    #: Document-level path summary (root-to-node path trie with counts
    #: and cluster postings); None disables the whole-query rewrite pass
    #: until recollected or repaired.
    pathsummary: PathSummary | None = field(default=None, repr=False)

    @property
    def n_pages(self) -> int:
        return len(self.page_nos)


class DocumentStore:
    """A segment plus the documents imported into it."""

    def __init__(self, page_size: int = 8192, tags: TagDictionary | None = None) -> None:
        self.segment = Segment(page_size)
        self.tags = tags if tags is not None else TagDictionary()
        self.documents: dict[str, StoredDocument] = {}
        #: LSN of the last update operation folded into the on-disk
        #: checkpoint image (0 = no logged updates).  Maintained by the
        #: durability layer (:mod:`repro.storage.wal`); persisted in the
        #: store-file header so recovery knows which WAL entries are
        #: already part of the image and must not be replayed twice.
        self.checkpoint_lsn = 0
        #: deterministic kill switch for crash testing
        #: (:class:`repro.sim.faults.CrashInjector`); update operations
        #: announce their mid-flight steps through it.  None outside
        #: kill-and-recover runs.
        self.crash = None

    def import_document(
        self,
        tree: LogicalTree,
        name: str,
        options: ImportOptions | None = None,
    ) -> StoredDocument:
        """Cluster ``tree`` onto fresh pages of the segment."""
        if name in self.documents:
            raise StorageError(f"document {name!r} already exists")
        if tree.tags is not self.tags:
            raise StorageError("document tree must share the store's tag dictionary")
        opts = options or ImportOptions(page_size=self.segment.page_size)
        if opts.page_size != self.segment.page_size:
            raise StorageError(
                f"import page size {opts.page_size} differs from segment "
                f"page size {self.segment.page_size}"
            )
        result = import_tree(tree, opts, first_page_no=self.segment.n_pages)
        for page in result.pages:
            self.segment.adopt(page)
        doc = StoredDocument(
            name=name,
            root=result.root,
            page_nos=result.page_nos,
            n_nodes=len(tree),
            n_border_pairs=result.n_border_pairs,
            n_continuations=result.n_continuations,
            import_result=result,
            statistics=DocumentStatistics.collect(tree),
            synopsis=ClusterSynopsis.collect(result.pages),
            pathsummary=PathSummary.collect_from_tree(tree, result.node_page),
        )
        self.documents[name] = doc
        return doc

    def document(self, name: str) -> StoredDocument:
        try:
            return self.documents[name]
        except KeyError:
            raise StorageError(f"no such document: {name!r}") from None


def recollect_statistics(store: DocumentStore, doc: StoredDocument) -> DocumentStatistics:
    """Rebuild schema statistics from the physical records.

    Structural updates invalidate the import-time statistics snapshot
    (the AUTO plan chooser then runs statistics-free); this walk restores
    them from the stored document without re-importing.
    """
    segment = store.segment
    tag_counts: dict[int, int] = {}
    child_pairs: dict[tuple[int, int], int] = {}
    desc_pairs: dict[tuple[int, int], int] = {}
    n_nodes = 0
    n_elements = 0
    # stack entries: (page_no, slot, ancestor-tag chain)
    root_page, root_slot = page_of(doc.root), slot_of(doc.root)
    stack: list[tuple[int, int, tuple[int, ...]]] = [(root_page, root_slot, ())]
    while stack:
        page_no, slot, ancestors = stack.pop()
        record = segment.page(page_no).record(slot)
        if record is None:
            continue
        if isinstance(record, BorderRecord):
            if record.down:
                target = record.target()
                stack.append((page_of(target), slot_of(target), ancestors))
            elif record.continuation:
                for child_slot in record.child_slots or ():
                    stack.append((page_no, child_slot, ancestors))
            else:
                stack.append((page_no, record.local_slot, ancestors))
            continue
        n_nodes += 1
        tag = record.tag
        tag_counts[tag] = tag_counts.get(tag, 0) + 1
        if record.kind == Kind.ELEMENT:
            n_elements += 1
        if ancestors:
            pair = (ancestors[-1], tag)
            child_pairs[pair] = child_pairs.get(pair, 0) + 1
            for ancestor_tag in ancestors:
                dpair = (ancestor_tag, tag)
                desc_pairs[dpair] = desc_pairs.get(dpair, 0) + 1
        chain = ancestors + (tag,)
        for child_slot in record.child_slots:
            stack.append((page_no, child_slot, chain))
    statistics = DocumentStatistics(
        n_nodes=n_nodes,
        n_elements=n_elements,
        tag_counts=tag_counts,
        child_pairs=child_pairs,
        desc_pairs=desc_pairs,
    )
    doc.statistics = statistics
    doc.n_nodes = n_nodes
    return statistics


def recollect_synopsis(store: DocumentStore, doc: StoredDocument) -> ClusterSynopsis:
    """Rebuild the per-cluster synopsis from the physical pages.

    Used after loading a store whose format predates the synopsis and
    after structural updates (which invalidate the import-time synopsis
    the same way they invalidate statistics).
    """
    synopsis = ClusterSynopsis.collect(
        store.segment.page(page_no) for page_no in doc.page_nos
    )
    doc.synopsis = synopsis
    return synopsis


def repair_synopsis(
    store: DocumentStore,
    doc: StoredDocument,
    base: ClusterSynopsis | None,
    touched_page_nos,
) -> ClusterSynopsis:
    """Rebuild the synopsis from ``base`` by recollecting only touched pages.

    ``base`` is the synopsis as it stood *before* the updates being
    repaired over (update operations null out ``doc.synopsis``, so the
    caller — the WAL manager — snapshots it first).  Rows for pages in
    ``touched_page_nos`` that belong to ``doc`` are recollected from the
    physical records; all other rows are kept.  Falls back to a full
    :func:`recollect_synopsis` when there is no base to patch.

    The result must be indistinguishable from a full recollect — the
    equivalence the ablation benchmark asserts — it is just O(touched)
    instead of O(document).
    """
    if base is None:
        return recollect_synopsis(store, doc)
    mine = set(doc.page_nos)
    fresh = {
        page_no: ClusterSynopsis.collect_row(store.segment.page(page_no))
        for page_no in sorted(touched_page_nos)
        if page_no in mine
    }
    synopsis = base.patched(fresh) if fresh else base
    doc.synopsis = synopsis
    return synopsis


def recollect_pathsummary(store: DocumentStore, doc: StoredDocument) -> PathSummary:
    """Rebuild the path summary from the physical pages.

    Used after loading a store whose format predates the summary (v1-v3)
    and as the fallback when incremental repair has no base to patch.
    Produces a summary identical to the import-time collection — the
    cross-version persistence tests assert the equivalence.
    """
    summary = PathSummary.collect(store.segment, doc.page_nos)
    doc.pathsummary = summary
    return summary


def repair_pathsummary(
    store: DocumentStore,
    doc: StoredDocument,
    base: PathSummary | None,
    touched_page_nos,
) -> PathSummary:
    """Rebuild the path summary from ``base`` by recollecting touched pages.

    The path-summary twin of :func:`repair_synopsis`, driven by the same
    ``Page.version`` change tracking: rows for pages the update run
    touched are recollected from the physical records (resolving root
    chains may read ancestor pages, which is free — planning metadata is
    maintained off the simulated clock) and patched over the base.
    Structural updates only change paths of nodes on pages they touch
    (inserted/deleted/relocated records), so O(touched) rows suffice;
    the result must be indistinguishable from a full recollect.
    """
    if base is None:
        return recollect_pathsummary(store, doc)
    mine = set(doc.page_nos)
    resolver = None
    fresh = {}
    for page_no in sorted(touched_page_nos):
        if page_no not in mine:
            continue
        if resolver is None:
            from repro.storage.pathsummary import _ChainResolver

            resolver = _ChainResolver(store.segment)
        fresh[page_no] = PathSummary.collect_row(
            store.segment, store.segment.page(page_no), resolver
        )
    summary = base.patched(fresh) if fresh else base
    doc.pathsummary = summary
    return summary


def check_document(store: DocumentStore, doc: StoredDocument) -> None:
    """Validate physical invariants of a stored document.

    Checks: border pairs are mutual (``target(target(x)) == x``), with
    opposite directions; every child link resolves; every core record's
    parent link resolves; continuation proxies carry child lists.
    Raises :class:`StorageError` on the first violation.
    """
    segment = store.segment
    for page_no in doc.page_nos:
        page = segment.page(page_no)
        for slot, record in enumerate(page.records):
            if record is None:
                continue  # tombstone left by a relocation (updates)
            if isinstance(record, BorderRecord):
                companion_id = record.target()
                companion_page = segment.page(page_of(companion_id))
                companion = companion_page.record(slot_of(companion_id))
                if not isinstance(companion, BorderRecord):
                    raise StorageError(f"border companion is not a border at {companion_id}")
                if companion.target() != make_nodeid(page_no, slot):
                    raise StorageError(f"border pair not mutual at page {page_no} slot {slot}")
                if companion.down == record.down:
                    raise StorageError(f"border pair direction clash at page {page_no} slot {slot}")
                if companion.continuation != record.continuation:
                    raise StorageError(f"border pair kind clash at page {page_no} slot {slot}")
                if not record.down and record.continuation and record.child_slots is None:
                    raise StorageError(f"continuation proxy without child list at {page_no}.{slot}")
                if record.local_slot >= 0:
                    local = page.record(record.local_slot)
                    if isinstance(local, BorderRecord):
                        # a downward border may hang off a continuation
                        # proxy (split child list); anything else is corrupt
                        holder_ok = record.down and local.continuation and not local.down
                        if not holder_ok:
                            raise StorageError(
                                f"bad border local link at {page_no}.{slot}"
                            )
                for child_slot in record.child_slots or ():
                    page.record(child_slot)
            else:
                if record.parent_slot >= 0:
                    page.record(record.parent_slot)
                for child_slot in record.child_slots:
                    page.record(child_slot)


def export_tree(store: DocumentStore, doc: StoredDocument) -> LogicalTree:
    """Rebuild the logical tree of ``doc`` from its physical records.

    Walks the clustered representation depth-first, transparently crossing
    border pairs and continuation proxies.  Round-tripping
    ``export_tree(import_document(tree))`` must reproduce ``tree`` — the
    central storage-correctness property in the test suite.
    """
    segment = store.segment
    builder = TreeBuilder(store.tags)

    def resolve(page_no: int, slot: int) -> tuple[int, int, CoreRecord]:
        """Follow border indirections down to a core record."""
        record = segment.page(page_no).record(slot)
        while isinstance(record, BorderRecord):
            if not record.down and record.local_slot >= 0:
                # upward border inside the child cluster: its local core node
                slot = record.local_slot
            else:
                target = record.target()
                page_no, slot = page_of(target), slot_of(target)
            record = segment.page(page_no).record(slot)
        return page_no, slot, record

    def child_entries(page_no: int, record: CoreRecord | BorderRecord) -> list[tuple[int, int]]:
        """Expand a child-slot list, inlining continuation proxies."""
        out: list[tuple[int, int]] = []
        slots = record.child_slots or ()
        for slot in slots:
            entry = segment.page(page_no).record(slot)
            if isinstance(entry, BorderRecord) and entry.continuation and entry.down:
                target = entry.target()
                proxy_page = page_of(target)
                proxy = segment.page(proxy_page).record(slot_of(target))
                if not isinstance(proxy, BorderRecord):
                    raise StoreCorruptError(
                        f"continuation companion {target!r} does not point at "
                        "a border record"
                    )
                out.extend(child_entries(proxy_page, proxy))
            else:
                out.append((page_no, slot))
        return out

    def emit(page_no: int, slot: int) -> None:
        page_no, slot, record = resolve(page_no, slot)
        kind = record.kind
        if kind == Kind.TEXT:
            builder.text(record.value or "")
            return
        if kind == Kind.ATTRIBUTE:
            builder.attribute(store.tags.name_of(record.tag), record.value or "")
            return
        if kind == Kind.ELEMENT:
            builder.start_element(store.tags.name_of(record.tag))
        for child_page, child_slot in child_entries(page_no, record):
            emit(child_page, child_slot)
        if kind == Kind.ELEMENT:
            builder.end_element()

    root_page, root_slot = page_of(doc.root), slot_of(doc.root)
    root_record = segment.page(root_page).record(root_slot)
    if not isinstance(root_record, CoreRecord) or root_record.kind != Kind.DOCUMENT:
        raise StoreCorruptError(
            f"document root {doc.root!r} is not a DOCUMENT core record"
        )
    for child_page, child_slot in child_entries(root_page, root_record):
        emit(child_page, child_slot)
    return builder.finish()
