"""Per-cluster synopsis: tag bitsets, entry bitsets and occupancy.

A :class:`ClusterSynopsis` is a tiny structural summary of a stored
document, one row per cluster (page):

* ``tag_bits`` — bitset of the tag ids of the core records in the
  cluster (bit ``i`` set iff a record with tag id ``i`` lives there);
* ``entry_bits`` — bitset of the tags directly reachable when a
  *downward* navigation step resumes at one of the cluster's up-side
  entry borders (the local subtree root of a plain up border, or the
  core children on a continuation proxy's child list);
* ``flags`` — whether the cluster has down borders, up-side borders,
  and whether a downward resume can *transit* straight into another
  cluster (a border on a proxy child list);
* ``occupancy`` — the number of core records in the cluster.

The synopsis is planning metadata in the spirit of Arion et al.'s path
summaries: consulting it costs no simulated time, but it lets XScan skip
clusters that provably cannot contribute to a query, lets XSchedule drop
queue requests for clusters that cannot extend a resumed instance, and
gives the cost-based operator chooser real per-cluster occupancy instead
of a uniform nodes-per-page guess.

Every pruning predicate here is *conservative*: it may only answer
"cannot contribute" when the navigation semantics of
:mod:`repro.storage.nav` guarantee that resuming in the cluster yields
neither a matching candidate nor a transit into another cluster.  When
in doubt (sibling axes, unknown border shapes) the predicates answer
"might contribute" and the executor behaves exactly as without a
synopsis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Tuple

from repro.axes import Axis

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.algebra.steps import CompiledNodeTest, CompiledStep
    from repro.storage.page import Page

#: Sentinel tag id for a name absent from the document (mirrors
#: ``repro.algebra.steps.UNKNOWN_TAG`` without importing the algebra).
_UNKNOWN_TAG = -1

#: The cluster contains at least one down border (an edge into a child
#: cluster): upward resumes have a holder here, descendant sweeps can
#: transit onward.
HAS_DOWN = 1
#: The cluster contains at least one up-side border (plain up border or
#: continuation proxy): downward navigation can enter the cluster.
HAS_UPSIDE = 2
#: A downward resume at one of the cluster's entries can cross directly
#: into another cluster (a border record sits on a proxy child list, or
#: an entry's local record is itself a border).
CHILD_TRANSIT = 4

#: Bits of the two pseudo-tags (``#document`` = bit 0, ``#text`` = bit 1).
_DOCUMENT_BIT = 1
_TEXT_BIT = 2

#: One synopsis row: (tag_bits, entry_bits, flags, occupancy).
Row = Tuple[int, int, int, int]


def _test_bits(bits: int, test: "CompiledNodeTest") -> bool:
    """Can *any* tag in ``bits`` satisfy ``test``?  Conservative: errs
    towards True for shapes the bitset cannot decide."""
    tag = test.tag
    if tag is not None:
        if tag == _UNKNOWN_TAG:
            return False
        return bool(bits >> tag & 1)
    kinds = test.kinds
    if not kinds:  # comment() — never stored
        return False
    if len(kinds) >= 3:  # node(): any record satisfies it
        return bits != 0
    if kinds == _TEXT_KINDS:  # text(): the #text pseudo-tag
        return bool(bits & _TEXT_BIT)
    # wildcard on the element or attribute axis: any named tag (id >= 2)
    return bits >> 2 != 0


#: ``frozenset({int(Kind.TEXT)})`` — spelled as a literal to keep this
#: module free of algebra imports.
_TEXT_KINDS: frozenset = frozenset({2})


class ClusterSynopsis:
    """Per-cluster structural summary of one stored document."""

    __slots__ = ("_rows", "_n_records")

    def __init__(self, rows: Dict[int, Row]) -> None:
        self._rows = rows
        self._n_records = sum(row[3] for row in rows.values())

    # -- construction --------------------------------------------------

    @staticmethod
    def collect(pages: Iterable["Page"]) -> "ClusterSynopsis":
        """Build a synopsis by scanning physical pages.

        Works on freshly imported pages (before adoption) and on the
        segment pages of a loaded store alike, so import and post-load
        recollection share one collector.
        """
        rows: Dict[int, Row] = {}
        for page in pages:
            rows[page.page_no] = ClusterSynopsis.collect_row(page)
        return ClusterSynopsis(rows)

    @staticmethod
    def collect_row(page: "Page") -> Row:
        """Scan one physical page into its synopsis row.

        The single-page unit of :meth:`collect`, exposed so crash
        recovery can repair the rows of just the pages an update run
        touched instead of recollecting the whole document.
        """
        tag_bits = 0
        entry_bits = 0
        flags = 0
        occupancy = 0
        records = page.records
        for record in records:
            if record is None:
                continue
            if not record.is_border:
                tag_bits |= 1 << record.tag
                occupancy += 1
                continue
            if record.down:
                flags |= HAS_DOWN
                continue
            flags |= HAS_UPSIDE
            if record.continuation:
                for child_slot in record.child_slots or ():
                    child = records[child_slot]
                    if child is None:
                        continue
                    if child.is_border:
                        flags |= CHILD_TRANSIT
                    else:
                        entry_bits |= 1 << child.tag
                continue
            local_slot = record.local_slot
            if local_slot < 0 or local_slot >= len(records):
                flags |= CHILD_TRANSIT  # unknown shape: stay conservative
                continue
            local = records[local_slot]
            if local is None:
                continue
            if local.is_border:
                flags |= CHILD_TRANSIT
            else:
                entry_bits |= 1 << local.tag
        return (tag_bits, entry_bits, flags, occupancy)

    def patched(self, fresh: Dict[int, Row]) -> "ClusterSynopsis":
        """A new synopsis with ``fresh`` rows replacing (or extending)
        this one's — the incremental-repair constructor."""
        rows = dict(self._rows)
        rows.update(fresh)
        return ClusterSynopsis(rows)

    # -- pruning predicates --------------------------------------------

    def can_contribute(self, page_no: int, step: "CompiledStep") -> bool:
        """Could a *speculative* resume of ``step`` in this cluster yield a
        matching candidate or transit into another cluster?

        Mirrors :func:`repro.storage.nav.speculative_entries` +
        :func:`~repro.storage.nav.iter_resume`: downward steps enter at
        up-side borders, upward steps at down borders, sibling steps at
        any border.  Answering False is a proof that XScan may skip the
        cluster for this step.
        """
        row = self._rows.get(page_no)
        if row is None:
            return True  # unknown cluster: never prune
        tag_bits, entry_bits, flags, _ = row
        axis = step.axis
        if axis is Axis.SELF:
            return False  # no speculative entries exist for self
        if axis is Axis.CHILD or axis is Axis.ATTRIBUTE:
            if not flags & HAS_UPSIDE:
                return False
            return bool(flags & CHILD_TRANSIT) or _test_bits(entry_bits, step.test)
        if axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
            if not flags & HAS_UPSIDE:
                return False
            return bool(flags & (HAS_DOWN | CHILD_TRANSIT)) or _test_bits(
                tag_bits, step.test
            )
        if axis.is_upward:
            if not flags & HAS_DOWN:
                return False
            return bool(flags & HAS_UPSIDE) or _test_bits(tag_bits, step.test)
        # sibling axes: any border admits an entry; transits are too
        # varied to rule out, so only border-free clusters are pruned
        return bool(flags & (HAS_DOWN | HAS_UPSIDE))

    def prunable_for_scan(self, page_no: int, steps: Iterable["CompiledStep"]) -> bool:
        """True if *no* step of the path can contribute from this cluster:
        XScan may skip reading it (context clusters are the caller's
        responsibility)."""
        return not any(self.can_contribute(page_no, step) for step in steps)

    def can_extend(self, page_no: int, step: "CompiledStep") -> bool:
        """Could a *targeted* resume of ``step`` at a border junction in
        this cluster yield a candidate or transit onward?

        Used by XSchedule before enqueueing the cluster into Q.  The
        junction's border kind follows from the step axis (downward steps
        cross via down borders, so the target is an up-side entry here;
        upward steps target a down border), which is what makes the
        per-axis conditions sound.
        """
        row = self._rows.get(page_no)
        if row is None:
            return True
        tag_bits, entry_bits, flags, _ = row
        axis = step.axis
        if axis is Axis.CHILD or axis is Axis.ATTRIBUTE:
            return bool(flags & CHILD_TRANSIT) or _test_bits(entry_bits, step.test)
        if axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
            return bool(flags & (HAS_DOWN | CHILD_TRANSIT)) or _test_bits(
                tag_bits, step.test
            )
        if axis.is_upward:
            return bool(flags & HAS_UPSIDE) or _test_bits(tag_bits, step.test)
        return True  # self / sibling axes: never prune a targeted resume

    def contribute_transit(self, page_no: int, axis: Axis) -> bool:
        """Could a *speculative* resume in this cluster transit into
        another cluster, regardless of node tests?

        The tag-free residue of :meth:`can_contribute`, consulted when a
        path-summary posting refines the candidate half of the verdict
        (:class:`repro.storage.pathsummary.PathPostings`): a cluster may
        only be dropped when the postings rule out a candidate *and*
        this residue rules out a transit.
        """
        row = self._rows.get(page_no)
        if row is None:
            return True  # unknown cluster: never prune
        flags = row[2]
        if axis is Axis.SELF:
            return False  # no speculative entries exist for self
        if axis is Axis.CHILD or axis is Axis.ATTRIBUTE:
            return bool(flags & HAS_UPSIDE) and bool(flags & CHILD_TRANSIT)
        if axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
            return bool(flags & HAS_UPSIDE) and bool(flags & (HAS_DOWN | CHILD_TRANSIT))
        if axis.is_upward:
            return bool(flags & HAS_DOWN) and bool(flags & HAS_UPSIDE)
        # sibling axes: transits are too varied to rule out
        return bool(flags & (HAS_DOWN | HAS_UPSIDE))

    def extend_transit(self, page_no: int, axis: Axis) -> bool:
        """Could a *targeted* resume in this cluster transit onward,
        regardless of node tests?  The tag-free residue of
        :meth:`can_extend`, for the same postings refinement."""
        row = self._rows.get(page_no)
        if row is None:
            return True
        flags = row[2]
        if axis is Axis.CHILD or axis is Axis.ATTRIBUTE:
            return bool(flags & CHILD_TRANSIT)
        if axis is Axis.DESCENDANT or axis is Axis.DESCENDANT_OR_SELF:
            return bool(flags & (HAS_DOWN | CHILD_TRANSIT))
        if axis.is_upward:
            return bool(flags & HAS_UPSIDE)
        return True  # self / sibling axes: never prune a targeted resume

    # -- estimator accessors -------------------------------------------

    @property
    def n_clusters(self) -> int:
        return len(self._rows)

    @property
    def n_records(self) -> int:
        """Total core records across all clusters."""
        return self._n_records

    def occupancy(self, page_no: int) -> int:
        """Core records in one cluster (0 for unknown pages)."""
        row = self._rows.get(page_no)
        return row[3] if row is not None else 0

    def mean_occupancy(self) -> float:
        """Average core records per cluster (>= 1.0 for sane estimates)."""
        if not self._rows:
            return 1.0
        return max(1.0, self._n_records / len(self._rows))

    def clusters_with_tag(self, tag: int) -> int:
        """How many clusters contain a record with this tag id."""
        if tag < 0:
            return 0
        return sum(1 for row in self._rows.values() if row[0] >> tag & 1)

    def clusters_matching(self, test: "CompiledNodeTest") -> int:
        """How many clusters contain a record that could satisfy ``test``."""
        return sum(1 for row in self._rows.values() if _test_bits(row[0], test))

    def relevant_clusters(self, steps: Iterable["CompiledStep"]) -> int:
        """Upper-bound estimate of distinct clusters a navigational plan
        must touch: the context cluster plus, per step, every cluster that
        could hold a match for that step's node test."""
        total = 1
        for step in steps:
            total += self.clusters_matching(step.test)
        return min(total, max(1, len(self._rows)))

    # -- persistence ---------------------------------------------------

    def rows(self) -> Dict[int, Row]:
        """The raw per-page rows (page_no -> (tag_bits, entry_bits,
        flags, occupancy)); used by the persistence layer and tests."""
        return dict(self._rows)

    @staticmethod
    def from_rows(rows: Dict[int, Row]) -> "ClusterSynopsis":
        return ClusterSynopsis(dict(rows))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClusterSynopsis):
            return NotImplemented
        return self._rows == other._rows

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ClusterSynopsis({len(self._rows)} clusters, "
            f"{self._n_records} records)"
        )


def cost_effective_skips(page_nos, prunable, geometry):
    """Which prunable pages are actually worth skipping in a sequential scan.

    Skipping a page in the middle of a streaming read is not free: the
    next read pays a seek plus rotational latency instead of bare
    transfer time, so an isolated prunable page costs *more* to skip
    than to read through (the classic skip-scan break-even).  A run of
    consecutive prunable pages is skipped only when the saved transfers
    outweigh the seek the gap creates.  A run at the tail of the scan is
    always skipped — nothing follows, so no seek is induced.

    ``page_nos`` is the scan order, ``prunable`` the per-position verdict
    from :meth:`ClusterSynopsis.prunable_for_scan`.  Returns the set of
    page numbers to drop.
    """
    skips: set = set()
    n = len(page_nos)
    i = 0
    while i < n:
        if not prunable[i]:
            i += 1
            continue
        j = i
        while j < n and prunable[j]:
            j += 1
        run = page_nos[i:j]
        if j == n:
            skips.update(run)  # tail run: the scan just ends earlier
        else:
            prev = page_nos[i - 1] if i > 0 else page_nos[0] - 1
            gap = page_nos[j] - prev
            # only a truly contiguous stretch would have streamed; a
            # pre-existing hole in the page numbering pays a seek anyway
            was_streaming = gap == j - i + 1
            saved = len(run) * geometry.transfer_time
            penalty = geometry.seek_time(gap) + geometry.rotational_latency
            if not was_streaming or saved > penalty:
                skips.update(run)
        i = j
    return skips
