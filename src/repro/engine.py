"""High-level engine facade.

:class:`Database` ties the layers together: a document store on a
simulated disk, a buffer manager, the XPath compiler and the physical
algebra.  Typical use::

    from repro import Database

    db = Database(buffer_pages=256)
    db.load_xml(open("doc.xml").read(), name="doc")
    result = db.execute("count(/site/regions//item)", doc="doc", plan="xschedule")
    print(result.value, result.total_time, result.stats.pages_read)

Every ``execute`` runs cold by default — fresh clock, empty buffer, disk
head at page 0 — matching the paper's measurement discipline (O_DIRECT,
cold caches, Sec. 6.1).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.algebra.context import DegradationReport, EvalContext, EvalOptions
from repro.errors import ReproError
from repro.exec.environment import ExecutionEnvironment
from repro.obs import TraceSummary, Tracer
from repro.sim.faults import FaultProfile
from repro.model.builder import TreeBuilder
from repro.model.tree import LogicalTree
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.disk import DiskGeometry, SchedulingPolicy
from repro.sim.stats import Stats
from repro.storage.importer import ImportOptions
from repro.storage.nodeid import NodeID, page_of, slot_of
from repro.storage.record import CoreRecord
from repro.storage.store import DocumentStore, StoredDocument
from repro.xml.parser import parse_into
from repro.xpath.compile import CompiledQuery, PlanKind, compile_query


@dataclass
class Result:
    """Outcome of one query execution with full physical accounting."""

    query: str
    doc: str
    plan_kinds: list[PlanKind]
    value: float | None  #: numeric result (count/arithmetic queries)
    nodes: list[NodeID] | None  #: result nodes in document order (path queries)
    total_time: float  #: simulated wall-clock seconds
    cpu_time: float  #: simulated CPU seconds (the paper's Table 3 "CPU")
    io_wait: float  #: simulated seconds blocked on the disk
    stats: Stats
    #: how many queries shared the physical I/O behind ``stats``; 1 for a
    #: standalone execution.  Batched results all reference the batch's
    #: shared counter bundle, so ``stats.io_requests / shared_io_queries``
    #: is the amortized per-query attribution.
    shared_io_queries: int = 1
    #: why (and how) this execution degraded — fallback trips, sidelined
    #: clusters, budget cuts.  ``None`` for a full-fidelity run.
    degradation: DegradationReport | None = None
    #: trace-derived rollups for this run (``None`` unless the database
    #: was built with a :class:`~repro.obs.tracer.Tracer`); the mirrored
    #: counters reconcile exactly with ``stats``
    trace_summary: TraceSummary | None = None

    @property
    def degraded(self) -> bool:
        """True when execution deviated from the full-fidelity plan."""
        return bool(self.degradation)

    @property
    def partial(self) -> bool:
        """True when an execution budget truncated the result set."""
        return self.degradation is not None and self.degradation.partial

    @classmethod
    def from_context(
        cls,
        ctx: EvalContext,
        mark: tuple[float, float, float],
        query: str,
        doc: str,
        plan_kinds: list[PlanKind],
        value: float | None = None,
        nodes: list[NodeID] | None = None,
        stats: Stats | None = None,
        shared_io_queries: int = 1,
        degradation: DegradationReport | None = None,
        trace_summary: TraceSummary | None = None,
    ) -> "Result":
        """Bundle the timing since ``mark`` and ``ctx``'s counters.

        ``stats`` overrides the context's bundle (warm sessions pass a
        per-run delta; batches pass the shared batch bundle).
        """
        total, cpu, io_wait = ctx.clock.since(mark)
        return cls(
            query=query,
            doc=doc,
            plan_kinds=plan_kinds,
            value=value,
            nodes=nodes,
            total_time=total,
            cpu_time=cpu,
            io_wait=io_wait,
            stats=ctx.stats if stats is None else stats,
            shared_io_queries=shared_io_queries,
            degradation=degradation,
            trace_summary=trace_summary,
        )

    @property
    def cpu_fraction(self) -> float:
        return self.cpu_time / self.total_time if self.total_time else 0.0

    @property
    def node_count(self) -> int:
        if self.nodes is not None:
            return len(self.nodes)
        raise ReproError("node_count on a numeric result")

    def __repr__(self) -> str:
        what = f"value={self.value}" if self.value is not None else f"nodes={len(self.nodes or [])}"
        plans = "+".join(k.value for k in self.plan_kinds)
        return (
            f"Result({self.query!r} [{plans}] {what}, total={self.total_time:.4f}s, "
            f"cpu={self.cpu_time:.4f}s)"
        )


class Database:
    """A single-segment XML database over a simulated disk."""

    def __init__(
        self,
        page_size: int = 8192,
        buffer_pages: int = 256,
        geometry: DiskGeometry | None = None,
        disk_policy: SchedulingPolicy = SchedulingPolicy.SSTF,
        costs: CostModel | None = None,
        eval_options: EvalOptions | None = None,
        store: DocumentStore | None = None,
        faults: FaultProfile | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if store is not None and store.segment.page_size != page_size:
            raise ReproError("store page size must match the database page size")
        self.store = store or DocumentStore(page_size)
        self.buffer_pages = buffer_pages
        self.disk_policy = disk_policy
        self.costs = costs or DEFAULT_COST_MODEL
        self.eval_options = eval_options or EvalOptions()
        self.env = ExecutionEnvironment(
            self.store.segment,
            self.store.tags,
            geometry=geometry,
            disk_policy=self.disk_policy,
            costs=self.costs,
            buffer_pages=buffer_pages,
            options=self.eval_options,
            faults=faults,
            tracer=tracer,
        )
        self.geometry = self.env.geometry
        #: durability manager (:class:`repro.storage.wal.WriteAheadLog`);
        #: None = updates are in-memory only (the default).  Attach with
        #: :meth:`attach_wal`.  The query datapath never consults this —
        #: the WAL is provably free when off.
        self.wal = None

    # ------------------------------------------------------------- loading

    @property
    def tags(self):
        return self.store.tags

    def builder(self) -> TreeBuilder:
        """A tree builder bound to this database's tag dictionary."""
        return TreeBuilder(self.store.tags)

    def load_xml(
        self,
        text: str,
        name: str = "default",
        import_options: ImportOptions | None = None,
    ) -> StoredDocument:
        """Parse and import an XML document."""
        builder = self.builder()
        parse_into(text, builder)
        return self.add_tree(builder.finish(), name, import_options)

    def add_tree(
        self,
        tree: LogicalTree,
        name: str = "default",
        import_options: ImportOptions | None = None,
    ) -> StoredDocument:
        """Import an already-built logical tree."""
        opts = import_options or ImportOptions(page_size=self.store.segment.page_size)
        return self.store.import_document(tree, name, opts)

    def document(self, name: str = "default") -> StoredDocument:
        return self.store.document(name)

    # ------------------------------------------------------------ execution

    def prepare(
        self,
        query: str,
        doc: str = "default",
        plan: PlanKind | str = PlanKind.AUTO,
        options: EvalOptions | None = None,
        advisor: object | None = None,
    ) -> CompiledQuery:
        """Compile a query without executing it.

        ``advisor`` (a :class:`~repro.exec.calibration.CalibrationStore`)
        lets AUTO resolution consult measured plan outcomes; sessions
        pass their own store, a bare database compiles estimator-only.
        """
        return compile_query(
            query,
            self.store.document(doc),
            self.store.tags,
            plan=plan,
            options=options or self.eval_options,
            geometry=self.geometry,
            advisor=advisor,
            tracer=self.env.tracer,
        )

    def make_context(self, options: EvalOptions | None = None) -> EvalContext:
        """A fresh cold execution context (new clock, empty buffer)."""
        return self.env.fresh_context(options)

    def execute(
        self,
        query: str,
        doc: str = "default",
        plan: PlanKind | str = PlanKind.AUTO,
        options: EvalOptions | None = None,
        context: EvalContext | None = None,
    ) -> Result:
        """Compile and run ``query``; returns a :class:`Result`.

        Pass an explicit ``context`` to run warm (reusing its buffer and
        clock); by default every call is a cold run.  For repeated or
        batched execution, prefer a :meth:`session` — it caches compiled
        plans and can keep the buffer warm across runs.
        """
        compiled = self.prepare(query, doc, plan, options)
        ctx = context or self.env.fresh_context(options)
        events_mark = len(ctx.degradation_events)
        mark = ctx.clock.checkpoint()
        tracer = ctx.tracer
        trace_mark = tracer.mark() if tracer is not None else None
        events_start = tracer.events_recorded if tracer is not None else 0
        value, nodes = compiled.execute(ctx)
        # a "partial" budget records its cut as a degradation event and
        # returns normally; a "raise" budget propagates out of execute()
        partial = any(
            e.reason == "budget" for e in ctx.degradation_events[events_mark:]
        )
        if context is None and os.environ.get("REPRO_SAN"):
            from repro.analysis import sanitize

            if "determinism" in sanitize.modes():
                # cold run: the context's totals are the run's totals
                from repro.analysis.sanitize.determinism import recheck

                recheck(
                    self.env,
                    compiled,
                    options,
                    value,
                    nodes,
                    ctx.stats,
                    (ctx.clock.now, ctx.clock.cpu_time, ctx.clock.io_wait),
                    tracer,
                    events_start,
                )
        return Result.from_context(
            ctx,
            mark,
            query=query,
            doc=doc,
            plan_kinds=compiled.plan_kinds,
            value=value,
            nodes=nodes,
            degradation=ctx.report_since(events_mark, partial=partial),
            trace_summary=(
                tracer.summary(since=trace_mark)
                if tracer is not None and not tracer.shadow
                else None
            ),
        )

    def session(
        self,
        warm: bool = False,
        cache_size: int = 64,
        options: EvalOptions | None = None,
    ) -> "QuerySession":
        """A :class:`~repro.exec.session.QuerySession` over this database.

        Sessions cache compiled plans (repeated executes skip
        lex/parse/compile) and, with ``warm=True``, keep one runtime —
        clock, buffer, disk head — alive across executes.
        """
        from repro.exec.session import QuerySession

        return QuerySession(self, warm=warm, cache_size=cache_size, options=options)

    def run_batch(
        self,
        requests,
        doc: str = "default",
        plan: PlanKind | str = PlanKind.AUTO,
        options: EvalOptions | None = None,
    ):
        """Execute a batch of queries over one shared runtime.

        See :func:`repro.exec.batch.run_batch`; scan-shareable location
        paths ride a single sequential scan, the rest interleave over the
        shared disk queue.
        """
        from repro.exec.batch import run_batch

        return run_batch(self.session(options=options), requests, doc=doc, plan=plan)

    # --------------------------------------------------------- persistence

    def save(self, path: str) -> None:
        """Persist the store (all documents) to a binary file.

        The write is atomic (temp file, fsync, rename): a crash mid-save
        leaves the previous file intact.
        """
        from repro.storage.persist import save_store

        save_store(self.store, path)

    # ---------------------------------------------------------- durability

    def attach_wal(
        self,
        path: str,
        checkpoint_every: int | None = None,
        wal_path: str | None = None,
        crash=None,
    ):
        """Put this database's store under write-ahead logging.

        Checkpoints the store to ``path`` immediately (atomically) and
        opens ``wal_path`` (default ``path + ".wal"``); from here on,
        route updates through ``db.wal`` (or a session's update methods)
        so they are durable.  ``checkpoint_every=N`` folds the log into
        a fresh image every N logged operations.  ``crash`` is a
        :class:`~repro.sim.faults.CrashInjector` for kill-and-recover
        tests.  Returns the manager, also available as ``self.wal``.
        """
        from repro.storage.wal import WriteAheadLog

        if self.wal is not None:
            raise ReproError("a write-ahead log is already attached")
        self.wal = WriteAheadLog.create(
            self.store,
            path,
            wal_path=wal_path,
            checkpoint_every=checkpoint_every,
            crash=crash,
        )
        return self.wal

    @classmethod
    def recover(
        cls,
        path: str,
        buffer_pages: int = 256,
        geometry: DiskGeometry | None = None,
        disk_policy: SchedulingPolicy = SchedulingPolicy.SSTF,
        costs: CostModel | None = None,
        eval_options: EvalOptions | None = None,
        collect_statistics: bool = False,
        faults: FaultProfile | None = None,
        tracer: Tracer | None = None,
        wal_path: str | None = None,
    ) -> tuple["Database", "object"]:
        """Open a database from a checkpoint + WAL pair after a crash.

        Loads the last good checkpoint at ``path``, replays the valid
        prefix of ``wal_path`` (default ``path + ".wal"``) and returns
        ``(db, report)`` (a
        :class:`~repro.storage.wal.RecoveryReport`).  Statistics are
        *not* recollected by default: a store that lived through updates
        has none either, so the recovered database plans exactly like
        the uncrashed one would — pass ``collect_statistics=True`` to
        rebuild them.  Call :meth:`attach_wal` afterwards to resume
        durable operation (it checkpoints, collapsing the replayed log).
        """
        from repro.storage.store import recollect_statistics
        from repro.storage.wal import recover_store

        store, report = recover_store(path, wal_path=wal_path)
        db = cls(
            page_size=store.segment.page_size,
            buffer_pages=buffer_pages,
            geometry=geometry,
            disk_policy=disk_policy,
            costs=costs,
            eval_options=eval_options,
            store=store,
            faults=faults,
            tracer=tracer,
        )
        if collect_statistics:
            for doc in store.documents.values():
                recollect_statistics(store, doc)
        return db, report

    @classmethod
    def load(
        cls,
        path: str,
        buffer_pages: int = 256,
        geometry: DiskGeometry | None = None,
        disk_policy: SchedulingPolicy = SchedulingPolicy.SSTF,
        costs: CostModel | None = None,
        eval_options: EvalOptions | None = None,
        collect_statistics: bool = True,
        faults: FaultProfile | None = None,
        tracer: Tracer | None = None,
    ) -> "Database":
        """Open a database from a file written by :meth:`save`.

        Statistics (for the AUTO plan chooser) are recollected from the
        stored records unless ``collect_statistics`` is False.
        """
        from repro.storage.persist import load_store
        from repro.storage.store import (
            recollect_pathsummary,
            recollect_statistics,
            recollect_synopsis,
        )

        store = load_store(path)
        db = cls(
            page_size=store.segment.page_size,
            buffer_pages=buffer_pages,
            geometry=geometry,
            disk_policy=disk_policy,
            costs=costs,
            eval_options=eval_options,
            store=store,
            faults=faults,
            tracer=tracer,
        )
        if collect_statistics:
            for doc in store.documents.values():
                recollect_statistics(store, doc)
                if doc.synopsis is None:  # version-1 file without a synopsis
                    recollect_synopsis(store, doc)
                if doc.pathsummary is None:  # pre-v4 file without a summary
                    recollect_pathsummary(store, doc)
        return db

    # -------------------------------------------------------------- export

    def export_xml(
        self,
        doc: str = "default",
        method: str = "scan",
        options: EvalOptions | None = None,
    ) -> tuple[str, Result]:
        """Export a document to XML text with full cost accounting.

        ``method="scan"`` reads every page once in physical order and
        stitches per-cluster text fragments (the paper's outlook applied
        to export); ``method="navigate"`` traverses in document order
        with eager border crossing (the Simple method's pattern).
        Returns ``(xml_text, result)`` where the result carries the
        simulated timing and counters of the export.
        """
        from repro.storage.export import export_navigate, export_scan

        document = self.store.document(doc)
        ctx = self.env.fresh_context(options)
        mark = ctx.clock.checkpoint()
        tracer = ctx.tracer
        trace_mark = tracer.mark() if tracer is not None else None
        if method == "scan":
            text = export_scan(ctx, document)
        elif method == "navigate":
            text = export_navigate(ctx, document)
        else:
            raise ReproError(f"unknown export method {method!r}")
        result = Result.from_context(
            ctx,
            mark,
            query=f"export[{method}]",
            doc=doc,
            plan_kinds=[],
            trace_summary=(
                tracer.summary(since=trace_mark)
                if tracer is not None and not tracer.shadow
                else None
            ),
        )
        return text, result

    # ----------------------------------------------------------- inspection

    def node_info(self, nid: NodeID) -> tuple[str, str, str | None]:
        """(kind-name, tag-name, value) of a result node — no cost charged."""
        record = self.store.segment.page(page_of(nid)).record(slot_of(nid))
        if not isinstance(record, CoreRecord):
            raise ReproError(f"NodeID {nid} does not reference a core record")
        return (record.kind.name, self.store.tags.name_of(record.tag), record.value)
