"""The determinism sanitizer: double execution, diffed tick for tick.

Reproducibility is the repository's first-order deliverable: two cold
runs of the same query must agree bit for bit — value, result nodes,
every counter, every simulated timestamp.  Static taint rules catch the
common sources (set iteration, ``id()`` keys, wall clocks), but cannot
prove the property.  This sanitizer measures it: after each cold
:meth:`Database.execute <repro.engine.Database.execute>`, the compiled
plan is re-executed on a private shadow runtime (same wiring, fresh
clock/buffer/fault plan, its own shadow tracer) and the two runs are
diffed.

The shadow runtime is built through
:meth:`~repro.exec.environment.ExecutionEnvironment.shadow_context`, so
it does not count towards ``contexts_built``, never installs sanitizers
of its own, and never touches the user's tracer — the primary run's
observable outcome is byte-identical with the sanitizer on or off.

When the primary run was traced (always under ``REPRO_SAN=1``, via the
charge sanitizer's shadow tracer), the event streams are compared tick
for tick: same length, and each event agrees on timestamp, category,
name, page and duration.  Event comparison is skipped only if the
primary tracer's bounded ring already dropped part of the run.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.sanitize import fail
from repro.obs.tracer import Tracer


def recheck(
    env: Any,
    compiled: Any,
    options: Any,
    value: Any,
    nodes: Any,
    stats: Any,
    clock: tuple[float, float, float],
    tracer: Tracer | None,
    events_start: int,
) -> None:
    """Re-execute ``compiled`` cold and diff against the primary run.

    ``value``/``nodes``/``stats``/``clock`` are the primary run's outcome
    (the context was cold, so its totals are the run's totals);
    ``tracer``/``events_start`` locate the primary run's event slice.
    """
    shadow_tracer = Tracer(shadow=True)
    ctx = env.shadow_context(options, tracer=shadow_tracer)
    value2, nodes2 = compiled.execute(ctx)

    if value2 != value:
        fail(
            "determinism",
            f"re-execution returned a different value: {value!r} vs {value2!r}",
        )
    if list(nodes or ()) != list(nodes2 or ()):
        fail(
            "determinism",
            f"re-execution returned different result nodes "
            f"({len(nodes or ())} vs {len(nodes2 or ())}, or same count in a "
            "different order)",
            details={"first": nodes, "second": nodes2},
        )
    for name, first in stats.as_dict().items():
        second = getattr(ctx.stats, name)
        if first != second:
            fail(
                "determinism",
                f"stats.{name} differs between executions: {first!r} vs {second!r}",
            )
    clock2 = (ctx.clock.now, ctx.clock.cpu_time, ctx.clock.io_wait)
    if clock2 != clock:
        fail(
            "determinism",
            f"simulated clock differs between executions: "
            f"(now, cpu, io_wait) = {clock!r} vs {clock2!r}",
        )
    if tracer is not None:
        _diff_events(tracer, events_start, shadow_tracer)


def _diff_events(tracer: Tracer, events_start: int, shadow_tracer: Tracer) -> None:
    """Tick-for-tick comparison of the two runs' trace event streams."""
    dropped = tracer.events_recorded - len(tracer.events)
    start = events_start - dropped
    if start < 0:
        return  # the ring already dropped part of the primary run
    first = list(tracer.events)[start:]
    second = list(shadow_tracer.events)
    if len(first) != len(second):
        fail(
            "determinism",
            f"trace event streams differ in length: {len(first)} vs {len(second)}",
        )
    for index, (a, b) in enumerate(zip(first, second)):
        if (a.ts, a.cat, a.name, a.page, a.dur) != (b.ts, b.cat, b.name, b.page, b.dur):
            fail(
                "determinism",
                f"trace event {index} differs between executions: "
                f"{a!r} vs {b!r}",
            )
