"""The charge sanitizer: shadow accounting checked at every yield.

The engine keeps two independent sets of books for the same events: the
:class:`~repro.sim.stats.Stats` counters (incremented at charge sites)
and the tracer's mirror counters (every increment's guarded
``tracer.count`` twin — the invariant the ``tracer-mirror`` lint rule
enforces statically).  This sanitizer exploits the redundancy: at every
operator yield it diffs the two books field by field from the baselines
captured at context construction.  A site that charges ``Stats`` without
mirroring (or mirrors a different amount, or charges twice through a
layered call — the PR 3 bug class) makes the books disagree at the very
next yield, which pins the divergence to within one operator call.

The clock is checked against its own internal invariant: ``now`` is
monotone and always equals ``cpu_time + io_wait`` (the paper's
``total = CPU + I/O wait`` identity), compared with :func:`math.isclose`
because the buckets are float sums accumulated in different orders.

When the environment has no user tracer, ``fresh_context`` installs a
*shadow* tracer (``Tracer(shadow=True)``) so the mirrors have somewhere
to land; shadow tracers never surface in results (``trace_summary``
stays ``None``), so observable behaviour is unchanged.
"""

from __future__ import annotations

from dataclasses import fields
from math import isclose
from typing import Any

from repro.analysis.sanitize import fail
from repro.sim.stats import Stats

#: exact-agreement counters (everything except the one float field)
_INT_FIELDS: tuple[str, ...] = tuple(
    f.name for f in fields(Stats) if f.name != "backoff_wait"
)


class ChargeSanitizer:
    """Per-runtime shadow accountant (shared by views of the runtime)."""

    __slots__ = ("_stats", "_clock", "_tracer", "_base", "_mark", "_last_now")

    def __init__(self, ctx: Any) -> None:
        stats = ctx.stats
        self._stats = stats
        self._clock = ctx.clock
        self._tracer = ctx.tracer
        #: counter values at install time — warm sessions and views keep
        #: accumulating on both books, so deltas stay comparable forever
        self._base = {name: getattr(stats, name) for name in _INT_FIELDS}
        self._base["backoff_wait"] = stats.backoff_wait
        self._mark = dict(ctx.tracer.counters)
        self._last_now = ctx.clock.now

    def check(self) -> None:
        """Assert both books agree; called between result tuples."""
        clock = self._clock
        now = clock.now
        if now < self._last_now:
            fail(
                "charge",
                f"simulated clock moved backwards: {self._last_now!r} -> {now!r}",
            )
        self._last_now = now
        if not isclose(now, clock.cpu_time + clock.io_wait, rel_tol=1e-9, abs_tol=1e-9):
            fail(
                "charge",
                f"clock identity broken: now={now!r} but cpu_time + io_wait = "
                f"{clock.cpu_time + clock.io_wait!r} "
                f"(cpu={clock.cpu_time!r}, io_wait={clock.io_wait!r})",
            )
        stats = self._stats
        counters = self._tracer.counters
        base = self._base
        mark = self._mark
        for name in _INT_FIELDS:
            charged = getattr(stats, name) - base[name]
            mirrored = counters.get(name, 0) - mark.get(name, 0)
            if charged != mirrored:
                fail(
                    "charge",
                    f"stats.{name} moved by {charged} since the baseline but "
                    f"its tracer mirror moved by {mirrored}: a charge site is "
                    "double-charging, under-charging, or missing its mirror",
                    details={"field": name, "charged": charged, "mirrored": mirrored},
                )
        charged_f = stats.backoff_wait - base["backoff_wait"]
        mirrored_f = counters.get("backoff_wait", 0) - mark.get("backoff_wait", 0)
        if not isclose(charged_f, mirrored_f, rel_tol=1e-9, abs_tol=1e-9):
            fail(
                "charge",
                f"stats.backoff_wait moved by {charged_f!r} but its tracer "
                f"mirror moved by {mirrored_f!r}",
            )
