"""reprosan: runtime sanitizers for the engine's accounting invariants.

Static analysis (:mod:`repro.analysis`) proves invariant *shapes* — every
Stats increment has a tracer mirror, gated state stays behind its gate.
The sanitizers prove the *values* at runtime: they re-derive the books
from independent evidence while the engine runs and fail loudly on the
first disagreement.  Three sanitizers:

* **charge** — shadow accounting: every ``Stats`` counter delta must
  equal its tracer-mirror delta at every operator yield, and the
  simulated clock must stay monotonic with ``now == cpu_time + io_wait``.
  Catches the PR 3 bug class (a layer double- or under-charging) at the
  exact yield where the books first diverge.
* **determinism** — double execution: every cold :meth:`Database.execute
  <repro.engine.Database.execute>` is re-run on a private shadow runtime
  and diffed — value, nodes, every counter, the clock, and the trace
  event stream tick for tick.
* **mutation** — coherence of incremental maintenance: after each update
  operation the incrementally repaired synopsis/path-summary snapshots
  are diffed against a full recollection, and cached columnar views
  against ones rebuilt from the records.

Enable with the ``REPRO_SAN`` environment variable: ``1``/``all`` for
everything, or a comma list (``REPRO_SAN=charge,mutation``).  Unset, the
sanitizers cost nothing: no shadow structures are allocated, the hooks
reduce to one ``is None`` (or one environment-dict lookup per
execute/update), and simulated results and timings are bit-identical.

``REPRO_SAN_REPORT=<path>`` additionally appends one JSON line per
failure to ``<path>`` before raising, which CI uploads as an artifact.
"""

from __future__ import annotations

import json
import os
from typing import Any, NoReturn

ALL_MODES = frozenset({"charge", "determinism", "mutation"})


class SanitizerError(AssertionError):
    """A runtime invariant policed by the sanitizers was violated.

    Derives from :class:`AssertionError` deliberately: nothing in the
    engine catches it (engine error handling is scoped to
    :class:`~repro.errors.ReproError`), so a violation always surfaces.
    """


def modes() -> frozenset[str]:
    """The sanitizer modes requested by ``REPRO_SAN`` (empty when off).

    Read per call rather than cached at import, so tests can flip the
    variable with ``monkeypatch.setenv`` without reloading modules.
    """
    raw = os.environ.get("REPRO_SAN", "").strip().lower()
    if not raw:
        return frozenset()
    if raw in ("1", "all", "on", "true"):
        return ALL_MODES
    requested = frozenset(part.strip() for part in raw.split(",") if part.strip())
    unknown = requested - ALL_MODES
    if unknown:
        raise SanitizerError(
            f"unknown REPRO_SAN mode(s): {', '.join(sorted(unknown))} "
            f"(valid: {', '.join(sorted(ALL_MODES))}, or 1/all)"
        )
    return requested


def enabled(mode: str) -> bool:
    return mode in modes()


def fail(sanitizer: str, message: str, details: dict[str, Any] | None = None) -> NoReturn:
    """Report one violation (to the artifact, if configured) and raise."""
    report = os.environ.get("REPRO_SAN_REPORT")
    if report:
        record: dict[str, Any] = {"sanitizer": sanitizer, "message": message}
        if details:
            record["details"] = details
        try:
            with open(report, "a", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True, default=str))
                handle.write("\n")
        except OSError:
            pass  # the artifact is best-effort; the raise below is not
    raise SanitizerError(f"[reprosan:{sanitizer}] {message}")


def install(ctx: Any, active: frozenset[str] | None = None) -> None:
    """Attach the per-context sanitizers to a freshly built runtime.

    Called by :meth:`ExecutionEnvironment.fresh_context
    <repro.exec.environment.ExecutionEnvironment.fresh_context>` when
    ``REPRO_SAN`` requests any mode.  Only the charge sanitizer lives on
    the context (``ctx.san``, checked at every operator yield); the
    determinism and mutation sanitizers hook their own sites and consult
    :func:`enabled` there.
    """
    active = modes() if active is None else active
    if "charge" in active:
        from repro.analysis.sanitize.charge import ChargeSanitizer

        ctx.san = ChargeSanitizer(ctx)
