"""The mutation-coherence sanitizer: incremental repair vs full rebuild.

Structural updates maintain three derived structures incrementally:

* the cluster synopsis — the WAL manager patches rows for exactly the
  touched pages (:func:`repro.storage.store.repair_synopsis`);
* the path summary — same patching discipline
  (:func:`repro.storage.store.repair_pathsummary`);
* per-page columnar views — caches invalidated on mutation
  (:meth:`repro.storage.page.Page.invalidate_colview`) and lazily
  rebuilt.

Each has a slow, obviously-correct counterpart: recollect everything
from the physical records.  The incremental result must be
*indistinguishable* from the full rebuild — a stale synopsis row can
make pruning skip real results, and a stale columnar view feeds the
batched kernels records that no longer exist.  This sanitizer runs the
slow path after every update operation and diffs.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.analysis.sanitize import fail

#: the structural arrays one page's ColumnView is made of; values never
#: appear in a view, which is why ``update_value`` may leave caches alone
_COLVIEW_ARRAYS: tuple[str, ...] = (
    "kinds",
    "tags",
    "parents",
    "child_start",
    "child_end",
    "children",
    "border_down",
    "border_cont",
    "entries_up",
    "entries_down",
    "entries_all",
)


def check_maintenance(store: Any, doc: Any) -> None:
    """Diff the incrementally repaired snapshots against full recollection.

    Called by the WAL manager right after
    :func:`~repro.storage.wal._maintained_apply`'s repairs; a document
    without snapshots (bare, un-maintained updates null them) is vacuous.
    """
    from repro.storage.pathsummary import PathSummary
    from repro.storage.synopsis import ClusterSynopsis

    repaired = doc.synopsis
    if repaired is not None:
        full = ClusterSynopsis.collect(
            store.segment.page(page_no) for page_no in doc.page_nos
        )
        if repaired != full:
            fail(
                "mutation",
                "incrementally repaired cluster synopsis differs from a full "
                "recollection after an update: a touched page's row was "
                "missed or patched wrongly",
            )
    repaired_summary = doc.pathsummary
    if repaired_summary is not None:
        full_summary = PathSummary.collect(store.segment, doc.page_nos)
        if repaired_summary != full_summary:
            fail(
                "mutation",
                "incrementally repaired path summary differs from a full "
                "recollection after an update",
            )


def check_colviews(segment: Any, page_nos: Iterable[int]) -> None:
    """Any cached columnar view must match one rebuilt from the records.

    A cache the update path forgot to invalidate keeps serving the
    pre-update structure; rebuilding from the records and diffing the
    structural arrays catches that the moment it happens.
    """
    from repro.storage.colview import ColumnView

    for page_no in page_nos:
        page = segment.page(page_no)
        cached = page._colview
        if cached is None:
            continue  # no cache to go stale
        fresh = ColumnView(page)
        for name in _COLVIEW_ARRAYS:
            if getattr(cached, name) != getattr(fresh, name):
                fail(
                    "mutation",
                    f"cached column view of page {page_no} is stale in "
                    f"{name!r} after an update (a mutation path is missing "
                    "its invalidate_colview call)",
                )
