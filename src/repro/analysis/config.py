"""replint configuration: rule scopes, allowlists, tracked feature slots.

Defaults live here so the checker runs identically everywhere; a
``[tool.replint]`` table in ``pyproject.toml`` may override them where
:mod:`tomllib` is available (Python >= 3.11).  On 3.10 the defaults are
used as-is — configuration is a convenience, never a dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dc_fields
from pathlib import Path


def _stats_field_names() -> frozenset[str]:
    """Field names of :class:`repro.sim.stats.Stats`, read from the source.

    The tracer-mirror rule needs to know which attribute names are Stats
    counters.  Importing the dataclass keeps the rule in lock-step with
    the engine: adding a counter automatically extends the rule.
    """
    from repro.sim.stats import Stats

    return frozenset(f.name for f in dc_fields(Stats))


#: Which part of the tree each rule polices, as posix path prefixes
#: relative to the ``repro`` package root.  An empty-string prefix means
#: "everywhere" (used by the test fixtures).
DEFAULT_SCOPES: dict[str, tuple[str, ...]] = {
    # the deterministic core: simulated time, operators, storage, and the
    # benchmark document generator must not consult wall clocks, global
    # RNG state, or interpreter string hashing
    "nondeterminism": ("sim/", "algebra/", "storage/", "xmark/"),
    # data-validation paths that must survive ``python -O``
    "runtime-assert": (
        "storage/persist.py",
        "storage/export.py",
        "storage/importer.py",
        "storage/nav.py",
        "storage/update.py",
        "storage/store.py",
        "storage/ordpath.py",
        "storage/wal.py",
        "sim/disk.py",
    ),
    # every Stats increment needs a guarded Tracer.count mirror
    "tracer-mirror": ("sim/", "algebra/", "storage/"),
    # hot per-tuple / per-page classes must declare __slots__
    "slots": (
        "algebra/",
        "sim/",
        "storage/record.py",
        "storage/colview.py",
        "storage/pathsummary.py",
    ),
    # optional subsystems stay behind `is not None` guards off-path
    "feature-gate": ("sim/", "algebra/", "storage/"),
    # dedup sets must not leak their iteration order into results
    "set-iteration": ("algebra/", "sim/", "storage/"),
    # interprocedural: I/O paths charge Stats/clock exactly once
    "charge-accounting": ("sim/", "storage/", "algebra/"),
    # interprocedural: possibly-None feature slots never cross into
    # helpers that require them non-None (findings anchor at call sites)
    "gate-coherence": ("sim/", "storage/", "algebra/", "exec/", "xpath/", "engine.py"),
    # interprocedural: unordered iteration order can't flow through calls
    "determinism-taint": ("sim/", "algebra/", "storage/", "xmark/"),
    # interprocedural: Stats fields / tracer mirrors / rollups reconcile
    "summary-drift": (
        "sim/",
        "algebra/",
        "storage/",
        "exec/",
        "xpath/",
        "obs/",
        "engine.py",
    ),
}


@dataclass(frozen=True)
class ReplintConfig:
    """Everything the rules consult besides the AST itself."""

    #: rule id -> path prefixes it applies to ("" = every file)
    scopes: dict[str, tuple[str, ...]] = field(
        default_factory=lambda: dict(DEFAULT_SCOPES)
    )
    #: function names whose ``assert`` statements are debug-only by
    #: convention (never data validation), exempt from runtime-assert
    assert_exempt_functions: frozenset[str] = frozenset({"check"})
    #: attribute/parameter names treated as optional feature slots by the
    #: feature-gate and tracer-mirror rules
    feature_names: frozenset[str] = frozenset(
        {
            "tracer",
            "synopsis",
            "batched",
            "faults",
            "wal",
            "crash",
            "calibration",
            "pathsummary",
        }
    )
    #: Stats counter names the tracer-mirror rule watches
    stats_fields: frozenset[str] = field(default_factory=_stats_field_names)

    def scope_for(self, rule_id: str) -> tuple[str, ...]:
        return self.scopes.get(rule_id, ())

    def in_scope(self, rule_id: str, relpath: str) -> bool:
        return any(relpath.startswith(prefix) for prefix in self.scope_for(rule_id))

    @classmethod
    def everywhere(cls, rule_ids: tuple[str, ...] | None = None) -> "ReplintConfig":
        """A config applying every rule to every file (used by tests)."""
        ids = rule_ids if rule_ids is not None else tuple(DEFAULT_SCOPES)
        return cls(scopes={rule_id: ("",) for rule_id in ids})


def load_config(start: Path | None = None) -> ReplintConfig:
    """Build the configuration, honouring ``[tool.replint]`` when present.

    ``start`` is where the search for ``pyproject.toml`` begins (the
    current directory by default); the file is optional, as is
    :mod:`tomllib` — both absent simply yields the defaults.
    """
    table = _pyproject_table(start if start is not None else Path.cwd())
    if not table:
        return ReplintConfig()
    scopes = dict(DEFAULT_SCOPES)
    raw_scopes = table.get("scopes")
    if isinstance(raw_scopes, dict):
        for rule_id, prefixes in raw_scopes.items():
            if isinstance(prefixes, list):
                scopes[str(rule_id)] = tuple(str(p) for p in prefixes)
    exempt = table.get("assert-exempt-functions")
    features = table.get("feature-names")
    return ReplintConfig(
        scopes=scopes,
        assert_exempt_functions=(
            frozenset(str(name) for name in exempt)
            if isinstance(exempt, list)
            else ReplintConfig().assert_exempt_functions
        ),
        feature_names=(
            frozenset(str(name) for name in features)
            if isinstance(features, list)
            else ReplintConfig().feature_names
        ),
    )


def _pyproject_table(start: Path) -> dict[str, object]:
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10: defaults only
        return {}
    for directory in (start, *start.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            try:
                with open(candidate, "rb") as handle:
                    data = tomllib.load(handle)
            except (OSError, tomllib.TOMLDecodeError):
                return {}
            tool = data.get("tool")
            if isinstance(tool, dict):
                section = tool.get("replint")
                if isinstance(section, dict):
                    return section
            return {}
    return {}
