"""Rule ``set-iteration``: dedup sets are iterated sorted, or not at all.

The engine keeps dedup state in integer/NodeID sets
(``XSchedule._visited``/``_sidelined``/``_dead_noted``,
``XAssembly._r``).  Sets are order-free for membership — the only
operation those structures exist for — but *iterating* one puts its
hash-table order on the wire: into result order, degradation reports,
or trace output, where it would vary across interpreters and insertion
histories.  The audited invariant (see ``docs/static-analysis.md``) is
that dedup sets are membership-only; any future iteration must go
through ``sorted(...)`` or justify itself with a suppression.

The rule tracks names annotated/bound as sets in the current file and
flags ``for``-loops, comprehension clauses, and ``list``/``tuple``
materialisations over them, as well as direct iteration over set
literals and ``set(...)`` calls.
"""

from __future__ import annotations

import ast

from repro.analysis.config import ReplintConfig
from repro.analysis.core import Finding, Rule, SourceFile

_SET_ANNOTATIONS = ("set", "set[", "Set[", "frozenset", "frozenset[", "FrozenSet[")
_MATERIALISERS = frozenset({"list", "tuple"})


class SetIterationRule(Rule):
    id = "set-iteration"
    description = "no order-dependent iteration over dedup sets (sorted() or membership only)"

    def check(self, src: SourceFile, config: ReplintConfig) -> list[Finding]:
        set_keys = self._set_typed_keys(src.tree)
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in _MATERIALISERS
                and len(node.args) == 1
            ):
                iters.append(node.args[0])
            for candidate in iters:
                if self._is_unordered_set(candidate, set_keys):
                    findings.append(
                        self.finding(
                            src,
                            candidate,
                            f"iteration over unordered set "
                            f"{ast.unparse(candidate)!r} can leak hash order "
                            "into results/timings/trace; iterate sorted(...) "
                            "or keep the set membership-only",
                        )
                    )
        return findings

    @staticmethod
    def _set_typed_keys(tree: ast.Module) -> set[str]:
        """Textual keys (``self._visited``, ``pages``) known to be sets."""
        keys: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign):
                annotation = ast.unparse(node.annotation)
                if annotation.startswith(_SET_ANNOTATIONS):
                    keys.add(ast.unparse(node.target))
            elif isinstance(node, ast.Assign):
                value = node.value
                is_set_call = (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in ("set", "frozenset")
                )
                if is_set_call or isinstance(value, ast.SetComp) or (
                    isinstance(value, ast.Set)
                ):
                    for target in node.targets:
                        if isinstance(target, (ast.Name, ast.Attribute)):
                            keys.add(ast.unparse(target))
        return keys

    @staticmethod
    def _is_unordered_set(expr: ast.expr, set_keys: set[str]) -> bool:
        if isinstance(expr, ast.Set) or isinstance(expr, ast.SetComp):
            return True
        if (
            isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id in ("set", "frozenset")
        ):
            return True
        if isinstance(expr, (ast.Name, ast.Attribute)):
            return ast.unparse(expr) in set_keys
        if isinstance(expr, ast.BinOp) and isinstance(
            expr.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return SetIterationRule._is_unordered_set(
                expr.left, set_keys
            ) or SetIterationRule._is_unordered_set(expr.right, set_keys)
        return False
