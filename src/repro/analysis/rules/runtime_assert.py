"""Rule ``runtime-assert``: data validation must survive ``python -O``.

``assert`` compiles to nothing under ``-O``.  In the storage and disk
layers, the conditions being checked are *data* properties — record
kinds read back from a store file, child lists reconstructed by the
importer, completion timestamps of the disk simulation.  Running
optimised must not turn store corruption into silent misbehaviour, so
these paths raise typed errors from :mod:`repro.errors`
(``StoreCorruptError``, ``DiskProgressError``, ``StorageError``)
instead.

Debug-only ``check()`` methods (invariant walks the engine never calls
in production paths) are exempt by the configured allowlist; tests are
out of scope entirely.
"""

from __future__ import annotations

import ast

from repro.analysis.config import ReplintConfig
from repro.analysis.core import Finding, Rule, SourceFile


class RuntimeAssertRule(Rule):
    id = "runtime-assert"
    description = "no assert for data validation in -O-safe runtime paths"

    def check(self, src: SourceFile, config: ReplintConfig) -> list[Finding]:
        findings: list[Finding] = []
        exempt = config.assert_exempt_functions
        self._walk(src.tree, src, exempt, in_exempt=False, findings=findings)
        return findings

    def _walk(
        self,
        node: ast.AST,
        src: SourceFile,
        exempt: frozenset[str],
        in_exempt: bool,
        findings: list[Finding],
    ) -> None:
        for child in ast.iter_child_nodes(node):
            child_exempt = in_exempt
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                child_exempt = in_exempt or child.name in exempt or child.name.startswith(
                    "_debug"
                )
            if isinstance(child, ast.Assert) and not in_exempt:
                findings.append(
                    self.finding(
                        src,
                        child,
                        "assert is stripped under python -O; raise a typed "
                        "error from repro.errors (StoreCorruptError, "
                        "DiskProgressError, ...) for data validation",
                    )
                )
            self._walk(child, src, exempt, child_exempt, findings)
