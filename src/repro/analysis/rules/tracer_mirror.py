"""Rule ``tracer-mirror``: every Stats increment has a guarded tracer mirror.

The observability layer's reconciliation contract
(:meth:`repro.obs.metrics.TraceSummary.reconcile`) is that a traced run's
counters match the ``Stats`` bundle *counter for counter*.  The dynamic
fields()-driven drift test catches violations after the fact; this rule
proves the static half on every commit: wherever the engine does
``stats.<field> += amount`` it must also do
``tracer.count("<field>", amount)`` in the same function, behind the
``is not None`` guard that keeps untraced runs zero-overhead.

Increments of a literal ``0`` are exempt (they cannot move a counter),
as is :class:`repro.sim.stats.Stats` itself (``merge``/``reset`` move
counters *between* bundles, not into them).
"""

from __future__ import annotations

import ast

from repro.analysis.config import ReplintConfig
from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.guards import (
    GuardIndex,
    expr_key,
    iter_scopes,
    terminal_name,
    walk_scope,
)


class TracerMirrorRule(Rule):
    id = "tracer-mirror"
    description = "Stats increments carry a guarded, amount-matching tracer.count mirror"

    def check(self, src: SourceFile, config: ReplintConfig) -> list[Finding]:
        if src.relpath == "sim/stats.py":
            return []
        findings: list[Finding] = []
        for scope in iter_scopes(src.tree):
            self._check_scope(scope, src, config, findings)
        return findings

    def _check_scope(
        self,
        scope: ast.AST,
        src: SourceFile,
        config: ReplintConfig,
        findings: list[Finding],
    ) -> None:
        increments: list[tuple[ast.AugAssign, str, str]] = []
        mirrors: list[tuple[ast.Call, str, str, str]] = []  # node, field, amount, key
        for node in walk_scope(scope):
            if isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                target = node.target
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in config.stats_fields
                    and terminal_name(target.value) == "stats"
                ):
                    if isinstance(node.value, ast.Constant) and node.value.value == 0:
                        continue
                    increments.append((node, target.attr, ast.unparse(node.value)))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "count"
                    and terminal_name(func.value) == "tracer"
                    and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                ):
                    amount = ast.unparse(node.args[1]) if len(node.args) > 1 else "1"
                    key = expr_key(func.value) or "tracer"
                    mirrors.append((node, node.args[0].value, amount, key))
        if not increments:
            return
        guards = GuardIndex(scope)
        for inc_node, field, amount in increments:
            candidates = [m for m in mirrors if m[1] == field]
            if not candidates:
                findings.append(
                    self.finding(
                        src,
                        inc_node,
                        f"stats.{field} increment has no tracer.count({field!r}) "
                        "mirror in this function",
                    )
                )
                continue
            guarded = [m for m in candidates if guards.is_guarded(m[0], m[3])]
            if not guarded:
                findings.append(
                    self.finding(
                        src,
                        inc_node,
                        f"the tracer.count({field!r}) mirror is not behind an "
                        "`is not None` guard (untraced runs must pay nothing)",
                    )
                )
                continue
            if not any(m[2] == amount for m in guarded):
                found = ", ".join(sorted({m[2] for m in guarded}))
                findings.append(
                    self.finding(
                        src,
                        inc_node,
                        f"stats.{field} += {amount} but its mirror counts "
                        f"{found}; amounts must match for reconciliation",
                    )
                )
