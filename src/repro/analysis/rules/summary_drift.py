"""Rule ``summary-drift``: Stats, tracer mirrors and rollups stay in sync.

The reconciliation contract is cross-module: ``Stats`` declares the
counters, charge sites all over the engine increment them, tracer
mirrors echo each increment, and
:meth:`repro.obs.metrics.TraceSummary.reconcile` asserts the two ledgers
agree.  The per-file ``tracer-mirror`` rule checks each increment in
isolation; this project rule reconciles the *sets* across modules:

* every ``tracer.count("<name>")`` literal must name a real ``Stats``
  field — a typo'd mirror inflates a counter reconcile never checks;
* every field charged anywhere must be mirrored somewhere — a field
  charged only in a module outside ``tracer-mirror``'s scope would
  otherwise drift silently;
* every ``Stats`` field must be charged somewhere in the linted tree —
  a counter nothing increments is dead weight the summaries still
  faithfully report as zero (usually a refactor left it behind).

The dead-field check only fires when the linted tree actually contains
charge sites (linting a lone file must not declare every field dead).
"""

from __future__ import annotations

import ast

from repro.analysis.config import ReplintConfig
from repro.analysis.core import Finding, ProjectRule
from repro.analysis.project import ProjectIndex


class SummaryDriftRule(ProjectRule):
    id = "summary-drift"
    description = (
        "Stats fields, tracer mirrors and TraceSummary rollups reconcile "
        "across modules"
    )

    def check_project(
        self, index: ProjectIndex, config: ReplintConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        charged: dict[str, tuple] = {}  # field -> (info, first charge node)
        mirrored: set[str] = set()
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            for field_name, nodes in info.charges.items():
                charged.setdefault(field_name, (info, nodes[0]))
            for mirror_name, calls in info.mirrors.items():
                mirrored.add(mirror_name)
                if mirror_name not in config.stats_fields:
                    for call in calls:
                        findings.append(
                            self.finding(
                                info.src,
                                call,
                                f"tracer.count({mirror_name!r}) names no Stats "
                                "field; the mirrored counter can never "
                                "reconcile",
                            )
                        )
        for field_name in sorted(set(charged) - mirrored):
            info, node = charged[field_name]
            findings.append(
                self.finding(
                    info.src,
                    node,
                    f"stats.{field_name} is charged but mirrored nowhere in "
                    "the project; traced runs will fail reconciliation",
                )
            )
        if charged:
            findings.extend(self._dead_fields(index, config, set(charged)))
        return findings

    def _dead_fields(
        self, index: ProjectIndex, config: ReplintConfig, charged: set[str]
    ) -> list[Finding]:
        stats_src = next(
            (src for src in index.sources if src.relpath == "sim/stats.py"), None
        )
        if stats_src is None:
            return []
        findings: list[Finding] = []
        for node in ast.walk(stats_src.tree):
            if not isinstance(node, ast.ClassDef) or node.name != "Stats":
                continue
            for item in node.body:
                if (
                    isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)
                    and item.target.id in config.stats_fields
                    and item.target.id not in charged
                ):
                    findings.append(
                        self.finding(
                            stats_src,
                            item,
                            f"Stats.{item.target.id} is never charged anywhere "
                            "in the linted tree; remove the dead counter or "
                            "restore its charge site",
                        )
                    )
        return findings
