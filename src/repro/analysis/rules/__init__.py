"""Rule registry: one module per invariant."""

from __future__ import annotations

from repro.analysis.core import Rule
from repro.analysis.rules.charge_accounting import ChargeAccountingRule
from repro.analysis.rules.determinism_taint import DeterminismTaintRule
from repro.analysis.rules.feature_gate import FeatureGateRule
from repro.analysis.rules.gate_coherence import GateCoherenceRule
from repro.analysis.rules.nondeterminism import NondeterminismRule
from repro.analysis.rules.runtime_assert import RuntimeAssertRule
from repro.analysis.rules.set_iteration import SetIterationRule
from repro.analysis.rules.slots import SlotsRule
from repro.analysis.rules.summary_drift import SummaryDriftRule
from repro.analysis.rules.tracer_mirror import TracerMirrorRule

_RULE_CLASSES: tuple[type[Rule], ...] = (
    NondeterminismRule,
    RuntimeAssertRule,
    TracerMirrorRule,
    SlotsRule,
    FeatureGateRule,
    SetIterationRule,
    # interprocedural rules (run once over the whole-tree ProjectIndex)
    ChargeAccountingRule,
    GateCoherenceRule,
    DeterminismTaintRule,
    SummaryDriftRule,
)


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in catalogue order."""
    return [cls() for cls in _RULE_CLASSES]


def rules_by_id() -> dict[str, type[Rule]]:
    return {cls.id: cls for cls in _RULE_CLASSES}
