"""Rule ``charge-accounting``: every I/O path charges exactly once.

The budget/accounting contract (PR 3's double-charge incident, now a
lint error): a logical page request charges ``Stats.pages_requested``
and the simulated clock exactly once, however many layers the request
crosses — and the layered entry points (``AsyncIOSystem.request`` /
``read_sync``, ``BufferManager.fix``, ``DiskDevice.submit``) must keep
charging their contracted counters on *some* path, or the budget meter
silently under-counts.

Three interprocedural checks over the project call graph:

* **double charge** — a function that charges a *charge-once* field
  ``F`` directly must not also reach a callee that charges ``F``: the
  caller's increment plus the callee's is the PR 3 bug shape.  The
  check covers the physical I/O event counters only: each such event
  (a logical read, a disk submission, a buffer hit) has exactly one
  owning charge site.  CPU-work counters (``node_tests``, ``merges``,
  ``instances_created``...) are charged per occurrence at many sites by
  design — the batched kernels replay the scalar charge sequence while
  their exclusive fallback branches charge through the ``charge_*``
  helpers — so they are exempt here and policed by ``tracer-mirror``
  and the runtime charge sanitizer instead.
* **missed charge** (entry-point completeness) — the contracted entry
  points must charge their counter sets directly or transitively.
* **charge pairing** — a direct ``buffer_misses`` charge implies a
  reachable ``pages_requested`` charge (a miss that never requests the
  page is an accounting hole), and a direct ``pages_requested`` charge
  implies simulated-clock movement (a logical read is never free).
"""

from __future__ import annotations

from repro.analysis.config import ReplintConfig
from repro.analysis.core import Finding, ProjectRule
from repro.analysis.project import ProjectIndex

#: entry point qualname -> Stats fields it must charge on some path
ENTRY_REQUIREMENTS: dict[str, frozenset[str]] = {
    "sim/iosys.py::AsyncIOSystem.request": frozenset(
        {"async_requests", "pages_requested"}
    ),
    "sim/iosys.py::AsyncIOSystem.read_sync": frozenset({"sync_requests"}),
    "storage/buffer.py::BufferManager.fix": frozenset(
        {"swizzles", "pages_requested"}
    ),
    "sim/disk.py::DiskDevice.submit": frozenset({"io_requests"}),
}

#: direct charge of key implies a direct-or-transitive charge of value
FIELD_PAIRINGS: dict[str, str] = {
    "buffer_misses": "pages_requested",
}

#: fields whose direct charge implies the function moves simulated time
CLOCK_CHARGED_FIELDS: frozenset[str] = frozenset({"pages_requested"})

#: physical I/O event counters with exactly one owning charge per event
CHARGE_ONCE_FIELDS: frozenset[str] = frozenset(
    {
        "pages_requested",
        "pages_read",
        "io_requests",
        "sync_requests",
        "async_requests",
        "buffer_hits",
        "buffer_misses",
        "swizzles",
        "unswizzles",
        "evictions",
        "seeks",
        "seek_distance",
        "sequential_reads",
        "retries",
        "timeouts",
        "io_errors",
        "lost_requests",
    }
)


class ChargeAccountingRule(ProjectRule):
    id = "charge-accounting"
    description = (
        "I/O entry points charge Stats and the clock exactly once per logical event"
    )

    def check_project(
        self, index: ProjectIndex, config: ReplintConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            if not info.charges:
                continue
            transitive = index.transitive_charges(qualname)
            for field_name in sorted(info.charges):
                if field_name not in CHARGE_ONCE_FIELDS:
                    continue
                witness = transitive.get(field_name)
                if witness is not None:
                    chain = " -> ".join(index.call_chain(qualname, witness))
                    for node in info.charges[field_name]:
                        findings.append(
                            self.finding(
                                info.src,
                                node,
                                f"stats.{field_name} is charged here and again "
                                f"by callee {witness!r} ({chain}): one logical "
                                "event must charge exactly once",
                            )
                        )
            for field_name, implied in FIELD_PAIRINGS.items():
                if field_name not in info.charges:
                    continue
                if implied in info.charges or implied in transitive:
                    continue
                findings.append(
                    self.finding(
                        info.src,
                        info.charges[field_name][0],
                        f"stats.{field_name} is charged but no path from here "
                        f"charges stats.{implied}; the paired accounting is "
                        "incomplete",
                    )
                )
            clock_fields = CLOCK_CHARGED_FIELDS & set(info.charges)
            if clock_fields and not info.clock_charges and not index.transitive_clock(
                qualname
            ):
                field_name = sorted(clock_fields)[0]
                findings.append(
                    self.finding(
                        info.src,
                        info.charges[field_name][0],
                        f"stats.{field_name} is charged but neither this "
                        "function nor any callee moves the simulated clock; a "
                        "logical read is never free",
                    )
                )
        for qualname, required in ENTRY_REQUIREMENTS.items():
            info = index.functions.get(qualname)
            if info is None:
                continue  # tree under lint does not contain the entry point
            charged = set(info.charges) | set(index.transitive_charges(qualname))
            missing = required - charged
            if missing:
                missing_list = ", ".join(sorted(missing))
                findings.append(
                    self.finding(
                        info.src,
                        info.node,
                        f"entry point {qualname.split('::')[1]} no longer "
                        f"charges {missing_list} on any path (missed charge)",
                    )
                )
        return findings
