"""Rule ``nondeterminism``: no wall clocks, global RNG, or str-hash seeds.

The simulation core's contract is *replay determinism*: the same store,
plan, options, and fault seed produce bit-identical simulated timings
and results, run after run, interpreter after interpreter.  Anything
that consults a wall clock (``time.time``/``perf_counter``), process
entropy (``os.urandom``, ``uuid.uuid4``), the *global* ``random``
module, an unseeded ``random.Random()``, or interpreter string hashing
(``hash(...)`` varies with PYTHONHASHSEED) silently breaks that
contract.  Deterministic alternatives: the :class:`~repro.sim.clock.SimClock`,
an explicitly seeded ``random.Random(seed)``, and explicit integer
mixing for seed derivation.
"""

from __future__ import annotations

import ast

from repro.analysis.config import ReplintConfig
from repro.analysis.core import Finding, Rule, SourceFile

#: fully-qualified callables that read wall clocks or process entropy
_FORBIDDEN_CALLS: dict[str, str] = {
    "time.time": "reads the wall clock; use the SimClock",
    "time.time_ns": "reads the wall clock; use the SimClock",
    "time.perf_counter": "reads the wall clock; use the SimClock",
    "time.perf_counter_ns": "reads the wall clock; use the SimClock",
    "time.monotonic": "reads the wall clock; use the SimClock",
    "time.monotonic_ns": "reads the wall clock; use the SimClock",
    "time.process_time": "reads the process clock; use the SimClock",
    "datetime.datetime.now": "reads the wall clock; use the SimClock",
    "datetime.datetime.utcnow": "reads the wall clock; use the SimClock",
    "datetime.date.today": "reads the wall clock; use the SimClock",
    "os.urandom": "draws process entropy; derive from an explicit seed",
    "uuid.uuid1": "draws host state; derive ids from an explicit seed",
    "uuid.uuid4": "draws process entropy; derive ids from an explicit seed",
    "secrets.token_bytes": "draws process entropy; derive from an explicit seed",
    "secrets.token_hex": "draws process entropy; derive from an explicit seed",
    "random.SystemRandom": "draws process entropy; use random.Random(seed)",
}

#: module-level random.* functions = the shared, unseeded global RNG
_GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "getrandbits",
        "randbytes",
        "triangular",
        "seed",
    }
)


class NondeterminismRule(Rule):
    id = "nondeterminism"
    description = (
        "no wall clocks, process entropy, global/unseeded RNG, or "
        "interpreter-hash seed derivation in the deterministic core"
    )

    def check(self, src: SourceFile, config: ReplintConfig) -> list[Finding]:
        imports = _import_table(src.tree)
        findings: list[Finding] = []
        hash_exempt = _hash_exempt_spans(src.tree)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = _qualify(node.func, imports)
            if qualified is None:
                continue
            if qualified in _FORBIDDEN_CALLS:
                findings.append(
                    self.finding(
                        src, node, f"{qualified}() {_FORBIDDEN_CALLS[qualified]}"
                    )
                )
            elif qualified.startswith("random.") and qualified.removeprefix(
                "random."
            ) in _GLOBAL_RANDOM_FUNCS:
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"{qualified}() uses the global unseeded RNG; "
                        "construct random.Random(seed) instead",
                    )
                )
            elif qualified == "random.Random" and not node.args and not node.keywords:
                findings.append(
                    self.finding(
                        src,
                        node,
                        "random.Random() without a seed draws from OS entropy; "
                        "pass an explicit seed",
                    )
                )
            elif qualified == "hash" and not any(
                lo <= node.lineno <= hi for lo, hi in hash_exempt
            ):
                findings.append(
                    self.finding(
                        src,
                        node,
                        "hash() varies with PYTHONHASHSEED for str/bytes; "
                        "use explicit integer mixing for seeds and keys",
                    )
                )
        return findings


def _import_table(tree: ast.Module) -> dict[str, str]:
    """Local name -> qualified prefix, from the module's import statements."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                table[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return table


def _qualify(func: ast.expr, imports: dict[str, str]) -> str | None:
    """Resolve a call target through the import table; builtins stay bare."""
    parts: list[str] = []
    node: ast.expr = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = imports.get(node.id, node.id)
    parts.append(head)
    return ".".join(reversed(parts))


def _hash_exempt_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line spans of ``__hash__``/``__eq__`` bodies, where hash() is the point."""
    spans: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in ("__hash__", "__eq__")
        ):
            spans.append((node.lineno, node.end_lineno or node.lineno))
    return spans
