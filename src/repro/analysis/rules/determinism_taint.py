"""Rule ``determinism-taint``: unordered order can't leak through helpers.

The per-file ``set-iteration`` rule flags direct iteration over known
sets.  Taint that *crosses a call* is invisible to it: a helper that
returns a set (``def _dirty_pages(self) -> set[int]: ... return dirty``)
iterated at the call site (``for page in self._dirty_pages():``) puts
hash-table order on the wire just the same — into result order,
degradation reports, or simulated timings.

Two interprocedural checks:

* iterating (``for``/comprehension/``list()``/``tuple()``) the return
  value of an indexed function whose summary says it returns an
  unordered set — directly or through a local bound from such a call —
  requires ``sorted(...)``;
* ``id(...)`` anywhere in the deterministic core: CPython object ids
  vary run to run, so keying, comparing or emitting them breaks replay
  determinism even when the surrounding structure looks ordered.
"""

from __future__ import annotations

import ast

from repro.analysis.config import ReplintConfig
from repro.analysis.core import Finding, ProjectRule
from repro.analysis.project import ProjectIndex

_MATERIALISERS = frozenset({"list", "tuple"})


class DeterminismTaintRule(ProjectRule):
    id = "determinism-taint"
    description = (
        "unordered-set iteration order cannot flow into results or timings "
        "through helper calls"
    )

    def check_project(
        self, index: ProjectIndex, config: ReplintConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for qualname in sorted(index.functions):
            info = index.functions[qualname]
            tainted_calls: dict[int, str] = {}  # id(call node) -> callee
            for site in info.calls:
                if site.callee is None:
                    continue
                callee = index.functions.get(site.callee)
                if callee is not None and callee.returns_unordered:
                    tainted_calls[id(site.node)] = site.callee
            self._check_id_calls(info, findings)
            if not tainted_calls:
                continue
            # locals bound from a tainted call inherit the taint
            tainted_locals: dict[str, str] = {}
            for sub in ast.walk(info.node):
                if isinstance(sub, ast.Assign) and id(sub.value) in tainted_calls:
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            tainted_locals[target.id] = tainted_calls[id(sub.value)]
            for sub in ast.walk(info.node):
                iters: list[ast.expr] = []
                if isinstance(sub, (ast.For, ast.AsyncFor)):
                    iters.append(sub.iter)
                elif isinstance(
                    sub, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    iters.extend(gen.iter for gen in sub.generators)
                elif (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Name)
                    and sub.func.id in _MATERIALISERS
                    and len(sub.args) == 1
                ):
                    iters.append(sub.args[0])
                for candidate in iters:
                    source: str | None = None
                    if id(candidate) in tainted_calls:
                        source = tainted_calls[id(candidate)]
                    elif (
                        isinstance(candidate, ast.Name)
                        and candidate.id in tainted_locals
                    ):
                        source = tainted_locals[candidate.id]
                    if source is not None:
                        findings.append(
                            self.finding(
                                info.src,
                                candidate,
                                f"iterates the unordered set returned by "
                                f"{source.split('::')[1]!r}; hash order would "
                                "leak into results/timings — iterate "
                                "sorted(...) instead",
                            )
                        )
        return findings

    def _check_id_calls(self, info, findings: list[Finding]) -> None:
        for sub in ast.walk(info.node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "id"
                and len(sub.args) == 1
            ):
                findings.append(
                    self.finding(
                        info.src,
                        sub,
                        "id() values vary across interpreter runs; keying or "
                        "comparing them in the deterministic core breaks "
                        "replay determinism",
                    )
                )
