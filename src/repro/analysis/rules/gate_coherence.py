"""Rule ``gate-coherence``: feature-gated state stays gated across calls.

The per-file ``feature-gate`` rule proves every *local* dereference of
an optional feature slot sits behind an ``is not None`` guard.  The gap
it cannot see: a helper that declares the feature parameter
*non-optional* (``def _emit(self, tracer: Tracer)``) and dereferences it
freely — perfectly fine locally — called with a possibly-``None``
feature expression (``self._emit(self.tracer)``).  The ``None`` then
explodes (or the gate silently stops gating) one call level down, on
exactly the path the ablation benchmarks promise is free.

This rule walks every resolved call edge in the project: wherever an
argument bound to a non-optional feature parameter is itself an optional
feature expression (an attribute chain ending in a feature slot, or a
local the guard analysis tracks as optional), the *call site* must sit
inside a guard for that expression.
"""

from __future__ import annotations

import ast

from repro.analysis.config import ReplintConfig
from repro.analysis.core import Finding, ProjectRule
from repro.analysis.guards import (
    GuardIndex,
    expr_key,
    terminal_name,
    tracked_feature_names,
)
from repro.analysis.project import FunctionInfo, ProjectIndex


class GateCoherenceRule(ProjectRule):
    id = "gate-coherence"
    description = (
        "possibly-None feature slots are never passed into helpers that require "
        "them non-None"
    )

    def check_project(
        self, index: ProjectIndex, config: ReplintConfig
    ) -> list[Finding]:
        findings: list[Finding] = []
        for qualname in sorted(index.functions):
            caller = index.functions[qualname]
            sites = [
                site
                for site in caller.calls
                if site.callee is not None
                and (callee := index.functions.get(site.callee)) is not None
                and callee.feature_params_required
            ]
            if not sites:
                continue
            guards: GuardIndex | None = None
            tracked = tracked_feature_names(caller.node, config.feature_names)
            for site in sites:
                callee = index.functions[site.callee or ""]
                for param, arg in _bind_arguments(site.node, callee):
                    if param not in callee.feature_params_required:
                        continue
                    key = _optional_feature_key(arg, config, caller, tracked)
                    if key is None:
                        continue
                    if guards is None:
                        guards = GuardIndex(caller.node)
                    if guards.is_guarded(site.node, key):
                        continue
                    findings.append(
                        self.finding(
                            caller.src,
                            site.node,
                            f"passes possibly-None {key!r} into "
                            f"{site.text}(), whose parameter {param!r} is "
                            "dereferenced unguarded; guard the call or make "
                            "the parameter optional",
                        )
                    )
        return findings


def _bind_arguments(
    call: ast.Call, callee: FunctionInfo
) -> list[tuple[str, ast.expr]]:
    """Map the call's arguments onto the callee's parameter names."""
    args = callee.node.args
    names = [a.arg for a in (*args.posonlyargs, *args.args)]
    if callee.cls is not None and names and names[0] in ("self", "cls"):
        names = names[1:]
    bound: list[tuple[str, ast.expr]] = []
    for name, value in zip(names, call.args):
        bound.append((name, value))
    keyword_names = set(names) | {a.arg for a in args.kwonlyargs}
    for keyword in call.keywords:
        if keyword.arg is not None and keyword.arg in keyword_names:
            bound.append((keyword.arg, keyword.value))
    return bound


def _optional_feature_key(
    arg: ast.expr,
    config: ReplintConfig,
    caller: FunctionInfo,
    tracked: set[str] | None,
) -> str | None:
    """The guard key when ``arg`` is a possibly-None feature expression."""
    name = terminal_name(arg)
    if name is None or name not in config.feature_names:
        return None
    key = expr_key(arg)
    if key is None:
        return None
    if isinstance(arg, ast.Name):
        # a bare local: optional only when the guard analysis tracks it
        # (bound from a slot / None); constructor-bound locals are fine
        if tracked is None or name not in tracked:
            return None
    return key
