"""Rule ``feature-gate``: optional subsystems stay behind ``is not None``.

Tracing, the cluster synopsis, and fault injection are *optional*
subsystems: when disabled, their slots hold ``None`` and the engine must
pay nothing beyond one pointer test — that is what the ablation
benchmarks prove dynamically (off-path is bit-identical and free).  The
static half: any attribute access *through* such a slot
(``ctx.tracer.count(...)``, ``synopsis.can_extend(...)``,
``self.faults.service(...)``) must sit inside one of the engine's
blessed guard shapes (see :mod:`repro.analysis.guards`), otherwise the
off-path would raise ``AttributeError`` — or worse, the guard got lost
and the off-path now pays for the feature.

Locals provably bound non-optional (``synopsis =
ClusterSynopsis.collect(...)``) are not tracked; the rule follows the
engine's convention that the *slots* named ``tracer``/``synopsis``/
``faults`` are the optional ones.
"""

from __future__ import annotations

import ast

from repro.analysis.config import ReplintConfig
from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.guards import (
    GuardIndex,
    expr_key,
    iter_scopes,
    terminal_name,
    tracked_feature_names,
    walk_scope,
)


class FeatureGateRule(Rule):
    id = "feature-gate"
    description = "uses of optional subsystems are guarded so the off-path stays free"

    def check(self, src: SourceFile, config: ReplintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for scope in iter_scopes(src.tree):
            self._check_scope(scope, src, config, findings)
        return findings

    def _check_scope(
        self,
        scope: ast.AST,
        src: SourceFile,
        config: ReplintConfig,
        findings: list[Finding],
    ) -> None:
        features = config.feature_names
        uses: list[tuple[ast.AST, str, str]] = []
        for node in walk_scope(scope):
            base: ast.expr | None = None
            if isinstance(node, ast.Attribute):
                base = node.value
            elif isinstance(node, ast.Subscript):
                base = node.value
            if base is None:
                continue
            name = terminal_name(base)
            if name not in features:
                continue
            key = expr_key(base)
            if key is None:
                continue
            uses.append((node, name, key))
        if not uses:
            return
        tracked_locals = tracked_feature_names(scope, features)
        guards = GuardIndex(scope)
        for node, name, key in uses:
            if key == name and name not in tracked_locals:
                continue  # local proven non-optional at its binding
            if guards.is_guarded(node, key):
                continue
            findings.append(
                self.finding(
                    src,
                    node,
                    f"use of optional subsystem {key!r} is not behind an "
                    "`is not None` guard; the off-path must stay zero-overhead "
                    "(and None-safe)",
                )
            )
