"""Rule ``slots``: hot classes declare ``__slots__`` (and don't shadow them).

Per-tuple and per-page objects (path instances, records, frames, disk
requests) are allocated millions of times per query; ``__slots__`` cuts
both their footprint and attribute-access cost, which the perf-smoke
baseline depends on.  The rule demands an explicit ``__slots__`` (or
``@dataclass(slots=True)``) on every class in the configured hot
modules, and rejects class attributes that would shadow a declared slot
(a latent ``ValueError`` at class-creation time).

Exempt by shape: enums, exceptions, Protocols/ABCs, NamedTuples and
TypedDicts — none of them are per-tuple allocations.
"""

from __future__ import annotations

import ast

from repro.analysis.config import ReplintConfig
from repro.analysis.core import Finding, Rule, SourceFile

_EXEMPT_BASE_MARKERS = (
    "Enum",
    "Exception",
    "Error",
    "Protocol",
    "ABC",
    "NamedTuple",
    "TypedDict",
)


class SlotsRule(Rule):
    id = "slots"
    description = "hot-module classes declare __slots__ and never shadow them"

    def check(self, src: SourceFile, config: ReplintConfig) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(node, src, findings)
        return findings

    def _check_class(
        self, node: ast.ClassDef, src: SourceFile, findings: list[Finding]
    ) -> None:
        if self._exempt_by_bases(node):
            return
        dataclass_dec = self._dataclass_decorator(node)
        slot_names = self._declared_slots(node)
        if dataclass_dec is not None:
            if not self._dataclass_has_slots(dataclass_dec):
                findings.append(
                    self.finding(
                        src,
                        node,
                        f"dataclass {node.name} in a hot module must pass "
                        "slots=True",
                    )
                )
            return  # field assignments are not shadowing for dataclasses
        if slot_names is None:
            findings.append(
                self.finding(
                    src,
                    node,
                    f"class {node.name} in a hot module must declare __slots__",
                )
            )
            return
        for stmt in node.body:
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, ast.Name) and target.id in slot_names:
                    findings.append(
                        self.finding(
                            src,
                            stmt,
                            f"class attribute {target.id!r} shadows a slot of "
                            f"{node.name}",
                        )
                    )

    @staticmethod
    def _exempt_by_bases(node: ast.ClassDef) -> bool:
        for base in node.bases:
            text = ast.unparse(base)
            if any(marker in text for marker in _EXEMPT_BASE_MARKERS):
                return True
        return False

    @staticmethod
    def _dataclass_decorator(node: ast.ClassDef) -> ast.expr | None:
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            name = target.attr if isinstance(target, ast.Attribute) else (
                target.id if isinstance(target, ast.Name) else None
            )
            if name == "dataclass":
                return dec
        return None

    @staticmethod
    def _dataclass_has_slots(dec: ast.expr) -> bool:
        if not isinstance(dec, ast.Call):
            return False
        for keyword in dec.keywords:
            if keyword.arg == "slots":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value is True
        return False

    @staticmethod
    def _declared_slots(node: ast.ClassDef) -> set[str] | None:
        for stmt in node.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    names: set[str] = set()
                    if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
                        for element in value.elts:
                            if isinstance(element, ast.Constant) and isinstance(
                                element.value, str
                            ):
                                names.add(element.value)
                    elif isinstance(value, ast.Constant) and isinstance(
                        value.value, str
                    ):
                        names.add(value.value)
                    return names
        return None
