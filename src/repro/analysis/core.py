"""The replint framework: findings, suppressions, file walking, rule base.

Rules are small classes over a shared :class:`ast` visit; each parses
nothing itself — one parse per file feeds every rule.  Findings carry a
stable rule id so they can be suppressed per line
(``# replint: disable=<rule>``) or per file
(``# replint: disable-file=<rule>``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:
    from repro.analysis.config import ReplintConfig
    from repro.analysis.project import ProjectIndex

#: rule id under which stale suppression comments are reported
UNUSED_SUPPRESSION_RULE = "unused-suppression"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


_SUPPRESS_RE = re.compile(r"#\s*replint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s-]+)")


class Suppressions:
    """Parsed ``# replint: disable[-file]=...`` comments of one file.

    Each declaration remembers whether it ever silenced a finding, so a
    run can report the stale ones (``--warn-unused-suppressions``): a
    disable comment that matches nothing is no longer documenting an
    exception — it is hiding the next regression.
    """

    __slots__ = ("_by_line", "_file_wide", "_used")

    def __init__(self, text: str) -> None:
        self._by_line: dict[int, set[str]] = {}
        #: file-wide rule -> line of the declaring comment
        self._file_wide: dict[str, int] = {}
        #: (declaration line, rule) pairs that silenced at least one finding
        self._used: set[tuple[int, str]] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(2).split(",") if part.strip()}
            if match.group(1) == "disable-file":
                for rule in rules:
                    self._file_wide.setdefault(rule, lineno)
            else:
                self._by_line.setdefault(lineno, set()).update(rules)

    def active(self, rule: str, line: int) -> bool:
        for name in (rule, "all"):
            declared_at = self._file_wide.get(name)
            if declared_at is not None:
                self._used.add((declared_at, name))
                return True
        on_line = self._by_line.get(line)
        if on_line is None:
            return False
        for name in (rule, "all"):
            if name in on_line:
                self._used.add((line, name))
                return True
        return False

    def declared(self) -> list[tuple[int, str, bool]]:
        """Every declaration as ``(line, rule, file_wide)``, in line order."""
        entries = [(line, rule, True) for rule, line in self._file_wide.items()]
        entries.extend(
            (line, rule, False)
            for line, rules in self._by_line.items()
            for rule in rules
        )
        return sorted(entries)

    def unused(self) -> list[tuple[int, str, bool]]:
        """Declarations that silenced nothing during the runs so far."""
        return [
            entry for entry in self.declared() if (entry[0], entry[1]) not in self._used
        ]


class SourceFile:
    """One parsed source file plus everything rules need about it."""

    __slots__ = ("path", "relpath", "text", "tree", "suppressions")

    def __init__(self, path: Path, relpath: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.tree = tree
        self.suppressions = Suppressions(text)


class Rule:
    """Base class: one invariant, one stable id, one ``check`` pass."""

    id: str = ""
    description: str = ""

    def check(self, src: SourceFile, config: "ReplintConfig") -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, src: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(self.id, str(src.path), int(line), int(col) + 1, message)


class ProjectRule(Rule):
    """A rule that needs the whole linted tree at once.

    Project rules run after the per-file rules, over a
    :class:`~repro.analysis.project.ProjectIndex` of every linted file;
    their findings still anchor to one file/line each, so scopes and
    suppressions apply exactly as for per-file rules.
    """

    def check(self, src: SourceFile, config: "ReplintConfig") -> list[Finding]:
        return []  # project rules only run via check_project

    def check_project(
        self, index: "ProjectIndex", config: "ReplintConfig"
    ) -> list[Finding]:
        raise NotImplementedError


def scope_relpath(path: Path, root: Path) -> str:
    """Path of ``path`` relative to the ``repro`` package root, as posix.

    Scope prefixes in the configuration are written relative to the
    package (``sim/disk.py``), whatever tree the checker was pointed at
    (``src/repro``, ``src``, a checkout root, or a single file).
    """
    try:
        rel = path.relative_to(root).as_posix()
    except ValueError:
        rel = path.as_posix()
    for marker in ("src/repro/", "repro/"):
        index = rel.rfind(marker)
        if index != -1:
            return rel[index + len(marker):]
    return rel


def iter_python_files(paths: Iterable[Path]) -> Iterator[tuple[Path, Path]]:
    """Yield ``(file, root)`` pairs for every ``.py`` under ``paths``."""
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                yield file, path
        elif path.suffix == ".py":
            yield path, path.parent


def load_source(path: Path, root: Path) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return SourceFile(path, scope_relpath(path, root), text, tree)


def lint_source(
    src: SourceFile, rules: Iterable[Rule], config: "ReplintConfig"
) -> list[Finding]:
    """Run ``rules`` over one parsed file, honouring scopes + suppressions."""
    findings: list[Finding] = []
    for rule in rules:
        if not config.in_scope(rule.id, src.relpath):
            continue
        for finding in rule.check(src, config):
            if not src.suppressions.active(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(
    paths: Iterable[Path | str],
    config: "ReplintConfig" | None = None,
    rules: Iterable[Rule] | None = None,
    warn_unused_suppressions: bool = False,
) -> list[Finding]:
    """Lint every python file under ``paths`` with every (or the given) rule.

    Per-file rules run file by file; :class:`ProjectRule` instances run
    once over a :class:`~repro.analysis.project.ProjectIndex` of the
    whole tree.  With ``warn_unused_suppressions``, every suppression
    comment that silenced nothing (for a rule this run actually ran) is
    reported under the ``unused-suppression`` pseudo-rule.
    """
    from repro.analysis.config import ReplintConfig
    from repro.analysis.rules import all_rules

    cfg = config if config is not None else ReplintConfig()
    active = list(rules) if rules is not None else all_rules()
    file_rules = [rule for rule in active if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in active if isinstance(rule, ProjectRule)]
    sources = [
        load_source(file, root) for file, root in iter_python_files(Path(p) for p in paths)
    ]
    findings: list[Finding] = []
    for src in sources:
        findings.extend(lint_source(src, file_rules, cfg))
    if project_rules:
        from repro.analysis.project import ProjectIndex

        index = ProjectIndex.build(sources, cfg)
        by_path = {str(src.path): src for src in sources}
        for rule in project_rules:
            for finding in rule.check_project(index, cfg):
                src = by_path.get(finding.path)
                if src is None:
                    continue
                if not cfg.in_scope(finding.rule, src.relpath):
                    continue
                if src.suppressions.active(finding.rule, finding.line):
                    continue
                findings.append(finding)
    if warn_unused_suppressions:
        run_ids = {rule.id for rule in active}
        for src in sources:
            for line, rule_id, file_wide in src.suppressions.unused():
                if rule_id != "all" and rule_id not in run_ids:
                    continue  # the suppressed rule did not run; no verdict
                form = "disable-file" if file_wide else "disable"
                findings.append(
                    Finding(
                        UNUSED_SUPPRESSION_RULE,
                        str(src.path),
                        line,
                        1,
                        f"suppression `# replint: {form}={rule_id}` silenced "
                        "nothing in this run; remove it so it cannot hide a "
                        "future regression",
                    )
                )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
