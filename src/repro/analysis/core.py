"""The replint framework: findings, suppressions, file walking, rule base.

Rules are small classes over a shared :class:`ast` visit; each parses
nothing itself — one parse per file feeds every rule.  Findings carry a
stable rule id so they can be suppressed per line
(``# replint: disable=<rule>``) or per file
(``# replint: disable-file=<rule>``).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:
    from repro.analysis.config import ReplintConfig


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a specific source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


_SUPPRESS_RE = re.compile(r"#\s*replint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s-]+)")


class Suppressions:
    """Parsed ``# replint: disable[-file]=...`` comments of one file."""

    __slots__ = ("_by_line", "_file_wide")

    def __init__(self, text: str) -> None:
        self._by_line: dict[int, set[str]] = {}
        self._file_wide: set[str] = set()
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match is None:
                continue
            rules = {part.strip() for part in match.group(2).split(",") if part.strip()}
            if match.group(1) == "disable-file":
                self._file_wide |= rules
            else:
                self._by_line.setdefault(lineno, set()).update(rules)

    def active(self, rule: str, line: int) -> bool:
        if rule in self._file_wide or "all" in self._file_wide:
            return True
        on_line = self._by_line.get(line)
        return on_line is not None and (rule in on_line or "all" in on_line)


class SourceFile:
    """One parsed source file plus everything rules need about it."""

    __slots__ = ("path", "relpath", "text", "tree", "suppressions")

    def __init__(self, path: Path, relpath: str, text: str, tree: ast.Module) -> None:
        self.path = path
        self.relpath = relpath
        self.text = text
        self.tree = tree
        self.suppressions = Suppressions(text)


class Rule:
    """Base class: one invariant, one stable id, one ``check`` pass."""

    id: str = ""
    description: str = ""

    def check(self, src: SourceFile, config: "ReplintConfig") -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, src: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(self.id, str(src.path), int(line), int(col) + 1, message)


def scope_relpath(path: Path, root: Path) -> str:
    """Path of ``path`` relative to the ``repro`` package root, as posix.

    Scope prefixes in the configuration are written relative to the
    package (``sim/disk.py``), whatever tree the checker was pointed at
    (``src/repro``, ``src``, a checkout root, or a single file).
    """
    try:
        rel = path.relative_to(root).as_posix()
    except ValueError:
        rel = path.as_posix()
    for marker in ("src/repro/", "repro/"):
        index = rel.rfind(marker)
        if index != -1:
            return rel[index + len(marker):]
    return rel


def iter_python_files(paths: Iterable[Path]) -> Iterator[tuple[Path, Path]]:
    """Yield ``(file, root)`` pairs for every ``.py`` under ``paths``."""
    for path in paths:
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                yield file, path
        elif path.suffix == ".py":
            yield path, path.parent


def load_source(path: Path, root: Path) -> SourceFile:
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    return SourceFile(path, scope_relpath(path, root), text, tree)


def lint_source(
    src: SourceFile, rules: Iterable[Rule], config: "ReplintConfig"
) -> list[Finding]:
    """Run ``rules`` over one parsed file, honouring scopes + suppressions."""
    findings: list[Finding] = []
    for rule in rules:
        if not config.in_scope(rule.id, src.relpath):
            continue
        for finding in rule.check(src, config):
            if not src.suppressions.active(finding.rule, finding.line):
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(
    paths: Iterable[Path | str],
    config: "ReplintConfig" | None = None,
    rules: Iterable[Rule] | None = None,
) -> list[Finding]:
    """Lint every python file under ``paths`` with every (or the given) rule."""
    from repro.analysis.config import ReplintConfig
    from repro.analysis.rules import all_rules

    cfg = config if config is not None else ReplintConfig()
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for file, root in iter_python_files(Path(p) for p in paths):
        findings.extend(lint_source(load_source(file, root), active, cfg))
    return findings
