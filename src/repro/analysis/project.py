"""Interprocedural index for replint: module graph, call graph, charges.

The per-file rules see one ``ast.Module`` at a time; the invariants
added with the interprocedural rules — charge-once accounting, gate
coherence across helper calls, taint that flows through return values,
project-wide summary reconciliation — need to see *every* linted file at
once.  :class:`ProjectIndex` is that view: every function definition in
the linted tree, what it charges (``Stats`` fields, the simulated
clock), what it mirrors into the tracer, which feature-slot parameters
it dereferences, and which other indexed functions it calls.

Call resolution is deliberately nominal, matching the engine's style
rather than attempting type inference:

* ``self.meth(...)`` resolves through the enclosing class, then its
  (indexed) bases;
* ``<attr>.meth(...)`` resolves through :data:`DEFAULT_ATTR_TYPES`, the
  engine's fixed attribute-name -> class bindings (``ctx`` is always an
  :class:`~repro.algebra.context.EvalContext`, ``iosys`` an
  :class:`~repro.sim.iosys.AsyncIOSystem`, ...);
* ``fn(...)`` resolves to a module-level function of the same module or
  an explicit ``from repro... import fn``;
* ``ClassName(...)`` resolves to ``ClassName.__init__``.

Anything else (stdlib calls, dynamic dispatch the engine does not use on
charge paths) resolves to nothing and contributes no call edge — the
analysis errs toward missing edges, never toward inventing them.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.analysis.guards import GuardIndex, terminal_name, walk_scope

if TYPE_CHECKING:
    from repro.analysis.config import ReplintConfig
    from repro.analysis.core import SourceFile

#: The engine's attribute-name -> class-name bindings.  These names are
#: wired once in :class:`~repro.exec.environment.ExecutionEnvironment`
#: and used consistently everywhere, which is what makes nominal call
#: resolution sound for the charge paths.
DEFAULT_ATTR_TYPES: dict[str, str] = {
    "iosys": "AsyncIOSystem",
    "disk": "DiskDevice",
    "buffer": "BufferManager",
    "clock": "SimClock",
    "ctx": "EvalContext",
    "stats": "Stats",
    "tracer": "Tracer",
    "wal": "WriteAheadLog",
    "env": "ExecutionEnvironment",
}

_CLOCK_FIELDS = frozenset({"now", "cpu_time", "io_wait"})
_CLOCK_METHODS = frozenset({"work", "wait_until"})


@dataclass(slots=True)
class CallSite:
    """One call expression inside an indexed function."""

    node: ast.Call
    callee: str | None  #: resolved qualname, None when external/unresolved
    text: str  #: source text of the callee expression (diagnostics)


@dataclass(slots=True)
class FunctionInfo:
    """Everything the interprocedural rules need about one function."""

    qualname: str  #: ``<relpath>::<Class>.<name>`` / ``<relpath>::<name>``
    name: str
    cls: str | None
    src: "SourceFile"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: direct ``stats.<field> += ...`` sites, by field name
    charges: dict[str, list[ast.AugAssign]] = field(default_factory=dict)
    #: direct simulated-clock charges (``clock.work(...)``,
    #: ``clock.now += ...``); presence means "this function moves time"
    clock_charges: list[ast.AST] = field(default_factory=list)
    #: direct ``tracer.count("<field>", ...)`` mirrors, by field name
    mirrors: dict[str, list[ast.Call]] = field(default_factory=dict)
    #: resolved + unresolved call sites, in source order
    calls: list[CallSite] = field(default_factory=list)
    #: parameters named like feature slots that the body dereferences
    #: *without* a local ``is not None`` guard (the function therefore
    #: requires the argument non-None)
    feature_params_required: set[str] = field(default_factory=set)
    #: parameters named like feature slots, with optional annotation info:
    #: name -> True when the annotation (or a None default) admits None
    feature_params: dict[str, bool] = field(default_factory=dict)
    #: True when some ``return`` hands back an unordered set
    returns_unordered: bool = False


class ProjectIndex:
    """Call-graph + charge-summary index over one linted source tree."""

    __slots__ = (
        "functions",
        "sources",
        "by_path",
        "_classes",
        "_bases",
        "_module_functions",
        "_imports",
        "_reachable_memo",
    )

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.sources: list["SourceFile"] = []
        self.by_path: dict[str, "SourceFile"] = {}
        #: class name -> {method name -> qualname} (project-wide)
        self._classes: dict[str, dict[str, str]] = {}
        #: class name -> base class names (only indexed bases matter)
        self._bases: dict[str, list[str]] = {}
        #: relpath -> {function name -> qualname}
        self._module_functions: dict[str, dict[str, str]] = {}
        #: relpath -> {imported local name -> qualname}
        self._imports: dict[str, dict[str, str]] = {}
        self._reachable_memo: dict[str, frozenset[str]] = {}

    # ------------------------------------------------------------- building

    @classmethod
    def build(
        cls, sources: Iterable["SourceFile"], config: "ReplintConfig"
    ) -> "ProjectIndex":
        index = cls()
        for src in sources:
            index.sources.append(src)
            index.by_path[str(src.path)] = src
        # pass 1: declarations (classes, functions, imports)
        for src in index.sources:
            index._collect_declarations(src)
        # pass 2: per-function bodies (charges, mirrors, call sites)
        for src in index.sources:
            index._collect_bodies(src, config)
        return index

    def _collect_declarations(self, src: "SourceFile") -> None:
        module_functions: dict[str, str] = {}
        imports: dict[str, str] = {}
        for node in src.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                module_functions[node.name] = f"{src.relpath}::{node.name}"
            elif isinstance(node, ast.ClassDef):
                methods = self._classes.setdefault(node.name, {})
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        methods[item.name] = f"{src.relpath}::{node.name}.{item.name}"
                self._bases[node.name] = [
                    base_name
                    for base in node.bases
                    if (base_name := terminal_name(base)) is not None
                ]
        # imported callables: `from repro.x import fn` binds a local name
        # we can resolve later once every module is declared
        for node in ast.walk(src.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    imports[alias.asname or alias.name] = alias.name
        self._module_functions[src.relpath] = module_functions
        self._imports[src.relpath] = imports

    def _collect_bodies(self, src: "SourceFile", config: "ReplintConfig") -> None:
        for class_name, node in _iter_functions(src.tree):
            qualname = (
                f"{src.relpath}::{class_name}.{node.name}"
                if class_name
                else f"{src.relpath}::{node.name}"
            )
            info = FunctionInfo(
                qualname=qualname, name=node.name, cls=class_name, src=src, node=node
            )
            self._scan_body(info, src, config)
            self.functions[qualname] = info

    def _scan_body(
        self, info: FunctionInfo, src: "SourceFile", config: "ReplintConfig"
    ) -> None:
        node = info.node
        stats_fields = config.stats_fields
        set_locals: set[str] = set()
        for sub in walk_scope(node):
            if isinstance(sub, ast.AugAssign) and isinstance(sub.op, ast.Add):
                target = sub.target
                if isinstance(target, ast.Attribute):
                    base_name = terminal_name(target.value)
                    if target.attr in stats_fields and base_name == "stats":
                        if not (
                            isinstance(sub.value, ast.Constant) and sub.value.value == 0
                        ):
                            info.charges.setdefault(target.attr, []).append(sub)
                    elif target.attr in _CLOCK_FIELDS and base_name == "clock":
                        info.clock_charges.append(sub)
            elif isinstance(sub, ast.Call):
                func = sub.func
                if isinstance(func, ast.Attribute):
                    base_name = terminal_name(func.value)
                    if func.attr in _CLOCK_METHODS and base_name == "clock":
                        info.clock_charges.append(sub)
                    if (
                        func.attr == "count"
                        and base_name == "tracer"
                        and sub.args
                        and isinstance(sub.args[0], ast.Constant)
                        and isinstance(sub.args[0].value, str)
                    ):
                        info.mirrors.setdefault(sub.args[0].value, []).append(sub)
                callee = self._resolve_call(sub, info, src)
                info.calls.append(
                    CallSite(node=sub, callee=callee, text=_callee_text(func))
                )
            elif isinstance(sub, ast.Assign):
                if _is_set_expr(sub.value):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            set_locals.add(target.id)
            elif isinstance(sub, ast.AnnAssign) and isinstance(sub.target, ast.Name):
                annotation = ast.unparse(sub.annotation)
                if annotation.startswith(("set", "Set[", "frozenset", "FrozenSet[")):
                    set_locals.add(sub.target.id)
        for sub in walk_scope(node):
            if isinstance(sub, ast.Return) and sub.value is not None:
                value = sub.value
                if _is_set_expr(value) or (
                    isinstance(value, ast.Name) and value.id in set_locals
                ):
                    info.returns_unordered = True
        self._scan_feature_params(info, config)

    def _scan_feature_params(
        self, info: FunctionInfo, config: "ReplintConfig"
    ) -> None:
        args = info.node.args
        named = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        defaults: dict[str, ast.expr] = {}
        positional = [*args.posonlyargs, *args.args]
        for arg, default in zip(
            positional[len(positional) - len(args.defaults):], args.defaults
        ):
            defaults[arg.arg] = default
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None:
                defaults[arg.arg] = kw_default
        feature_args = [a for a in named if a.arg in config.feature_names]
        if not feature_args:
            return
        guards: GuardIndex | None = None
        for arg in feature_args:
            annotation = arg.annotation
            default = defaults.get(arg.arg)
            admits_none = (
                annotation is None
                or "None" in ast.unparse(annotation)
                or (isinstance(default, ast.Constant) and default.value is None)
            )
            info.feature_params[arg.arg] = admits_none
            if admits_none:
                continue
            # a non-optional feature parameter: does the body dereference
            # it unguarded?  (it does, in every engine helper of this
            # shape — the point is the *callers* must prove non-None)
            for sub in walk_scope(info.node):
                base: ast.expr | None = None
                if isinstance(sub, (ast.Attribute, ast.Subscript)):
                    base = sub.value
                if (
                    base is not None
                    and isinstance(base, ast.Name)
                    and base.id == arg.arg
                ):
                    if guards is None:
                        guards = GuardIndex(info.node)
                    if not guards.is_guarded(sub, arg.arg):
                        info.feature_params_required.add(arg.arg)
                        break

    # ----------------------------------------------------------- resolution

    def _resolve_call(
        self, call: ast.Call, info: FunctionInfo, src: "SourceFile"
    ) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            module_functions = self._module_functions.get(src.relpath, {})
            if name in module_functions:
                return module_functions[name]
            imported = self._imports.get(src.relpath, {}).get(name)
            if imported is not None:
                if imported in self._classes:
                    return self._classes[imported].get("__init__")
                for functions in self._module_functions.values():
                    if imported in functions:
                        # prefer an exact module-level function of that name
                        return functions[imported]
            if name in self._classes:
                return self._classes[name].get("__init__")
            return None
        if isinstance(func, ast.Attribute):
            value = func.value
            if isinstance(value, ast.Name) and value.id == "self" and info.cls:
                resolved = self._resolve_method(info.cls, func.attr)
                if resolved is not None:
                    return resolved
            if isinstance(value, ast.Name) and value.id in self._classes:
                return self._classes[value.id].get(func.attr)
            base_name = terminal_name(value)
            class_name = DEFAULT_ATTR_TYPES.get(base_name or "")
            if class_name is not None:
                return self._classes.get(class_name, {}).get(func.attr)
        return None

    def _resolve_method(self, class_name: str, method: str) -> str | None:
        seen: set[str] = set()
        queue = [class_name]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            resolved = self._classes.get(current, {}).get(method)
            if resolved is not None:
                return resolved
            queue.extend(self._bases.get(current, ()))
        return None

    # ------------------------------------------------------------- queries

    def reachable(self, qualname: str) -> frozenset[str]:
        """Functions reachable from ``qualname`` via resolved calls.

        Excludes ``qualname`` itself unless a true cycle re-enters it —
        a function that (transitively) calls itself charges once *per
        activation*, which is not a double charge.
        """
        memo = self._reachable_memo.get(qualname)
        if memo is not None:
            return memo
        seen: set[str] = set()
        queue: list[str] = [
            site.callee
            for site in self.functions[qualname].calls
            if site.callee is not None and site.callee != qualname
        ]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            info = self.functions.get(current)
            if info is None:
                continue
            for site in info.calls:
                if site.callee is not None and site.callee not in seen:
                    queue.append(site.callee)
        result = frozenset(seen)
        self._reachable_memo[qualname] = result
        return result

    def transitive_charges(self, qualname: str) -> dict[str, str]:
        """``Stats`` fields charged by callees of ``qualname``.

        Returns field -> the reachable function that charges it (one
        witness per field, for diagnostics).
        """
        charged: dict[str, str] = {}
        for callee in sorted(self.reachable(qualname)):
            info = self.functions.get(callee)
            if info is None:
                continue
            for field_name in info.charges:
                charged.setdefault(field_name, callee)
        return charged

    def transitive_clock(self, qualname: str) -> bool:
        """True when some callee of ``qualname`` moves the simulated clock."""
        return any(
            self.functions[callee].clock_charges
            for callee in self.reachable(qualname)
            if callee in self.functions
        )

    def call_chain(self, start: str, target: str) -> list[str]:
        """A shortest resolved call chain ``start -> ... -> target``."""
        if start == target:
            return [start]
        parents: dict[str, str] = {}
        queue = [start]
        seen = {start}
        while queue:
            current = queue.pop(0)
            info = self.functions.get(current)
            if info is None:
                continue
            for site in info.calls:
                callee = site.callee
                if callee is None or callee in seen:
                    continue
                parents[callee] = current
                if callee == target:
                    chain = [target]
                    while chain[-1] != start:
                        chain.append(parents[chain[-1]])
                    chain.reverse()
                    return chain
                seen.add(callee)
                queue.append(callee)
        return [start, target]


def _iter_functions(
    tree: ast.Module,
) -> Iterable[tuple[str | None, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Top-level functions and methods (nested defs belong to their owner)."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield None, node
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node.name, item


def _callee_text(func: ast.expr) -> str:
    try:
        return ast.unparse(func)
    except Exception:  # pragma: no cover - unparse is total on expressions
        return "<call>"


def _is_set_expr(value: ast.expr) -> bool:
    if isinstance(value, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in ("set", "frozenset")
    )
