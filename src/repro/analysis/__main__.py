"""CLI for replint: ``python -m repro.analysis [paths...]``.

Exit status: 0 clean, 1 findings, 2 usage/parse error.  ``--json``
switches the report to a machine-readable document (the shape consumed
by CI and the test suite); ``--self-check`` lints the installed
``repro`` package's own source tree, which must come back clean.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.config import ReplintConfig, load_config
from repro.analysis.core import Finding, Rule, lint_paths
from repro.analysis.rules import all_rules, rules_by_id


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="replint: AST-based invariant checker for the repro engine",
    )
    parser.add_argument(
        "paths", nargs="*", help="files or directories to lint (e.g. src/repro)"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit findings as a JSON document"
    )
    parser.add_argument(
        "--rules",
        metavar="IDS",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    parser.add_argument(
        "--self-check",
        action="store_true",
        help="lint the installed repro package's own source tree",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.replint] in pyproject.toml; use built-in defaults",
    )
    parser.add_argument(
        "--warn-unused-suppressions",
        action="store_true",
        help="report `# replint: disable` comments that silenced nothing",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _parser().parse_args(argv)
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.id:>16}  {rule.description}")
        return 0
    rules = all_rules()
    if args.rules is not None:
        catalogue = rules_by_id()
        wanted = [part.strip() for part in args.rules.split(",") if part.strip()]
        unknown = [rule_id for rule_id in wanted if rule_id not in catalogue]
        if unknown:
            print(f"unknown rule id(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [catalogue[rule_id]() for rule_id in wanted]
    paths = [Path(p) for p in args.paths]
    if args.self_check:
        import repro

        package_root = Path(repro.__file__).resolve().parent
        paths.append(package_root)
    if not paths:
        print("no paths given (try src/repro, or --self-check)", file=sys.stderr)
        return 2
    for path in paths:
        if not path.exists():
            print(f"no such path: {path}", file=sys.stderr)
            return 2
    config = ReplintConfig() if args.no_config else load_config(paths[0].resolve())
    try:
        findings = lint_paths(
            paths,
            config=config,
            rules=rules,
            warn_unused_suppressions=args.warn_unused_suppressions,
        )
    except SyntaxError as error:
        print(f"parse error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(_report(findings, rules), indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        label = "finding" if len(findings) == 1 else "findings"
        print(f"replint: {len(findings)} {label}")
    return 1 if findings else 0


def _report(findings: list[Finding], rules: list[Rule]) -> dict[str, object]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    return {
        "findings": [finding.as_dict() for finding in findings],
        "counts": counts,
        "total": len(findings),
        "rules": [rule.id for rule in rules],
    }


if __name__ == "__main__":
    try:
        status = main()
    except BrokenPipeError:
        # downstream consumer (head, grep -q) closed the pipe; exit
        # quietly like other unix filters, without a traceback
        sys.stderr.close()
        status = 1
    sys.exit(status)
