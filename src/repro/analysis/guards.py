"""Shared None-guard analysis for optional feature slots.

The engine's zero-overhead discipline is syntactically narrow on
purpose: an optional subsystem (``tracer``, ``synopsis``, ``faults``) is
bound to an attribute or local, and every use sits behind one of a small
set of guard shapes::

    if tracer is not None:
        tracer.count(...)               # guarded body

    if x.synopsis is not None and x.synopsis.can_extend(...):  # and-chain
        ...

    ok = tracer is None or tracer.enabled    # or-chain (left bails)

    if synopsis is None:
        return                          # early bail, rest of block guarded
    synopsis.rows()

    x = feature.f() if feature is not None else None   # conditional expr

    if (t := self.tracer) is not None:   # walrus guard: proves t AND
        t.count(...)                     # self.tracer in the body

    while (frame := buffer.victim()) is not None:      # while-condition
        frame.page ...                   # guard holds for the loop body

This module recognises exactly those shapes.  It is deliberately not a
general data-flow analysis: a use the engine's idiom cannot prove
guarded should be rewritten into one of the blessed shapes (or
suppressed with a justification), which keeps the hot-path style
uniform — the property the ablation benchmarks rely on.
"""

from __future__ import annotations

import ast
from typing import Iterable


def expr_key(node: ast.AST) -> str | None:
    """A stable textual key for a guardable expression (``ctx.tracer``)."""
    if isinstance(node, (ast.Name, ast.Attribute)):
        try:
            return ast.unparse(node)
        except Exception:  # pragma: no cover - unparse is total on these
            return None
    return None


def terminal_name(node: ast.AST) -> str | None:
    """The final identifier of a name/attribute chain (``ctx.tracer`` -> ``tracer``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def guard_keys(node: ast.expr) -> set[str]:
    """Every key a guard on ``node`` proves at once.

    A plain name or attribute proves itself; a walrus binding
    ``(t := self.tracer)`` proves both the freshly bound name and the
    source expression (they hold the same object at the test).
    """
    keys: set[str] = set()
    if isinstance(node, ast.NamedExpr):
        target_key = expr_key(node.target)
        if target_key is not None:
            keys.add(target_key)
        keys |= guard_keys(node.value)
    else:
        key = expr_key(node)
        if key is not None:
            keys.add(key)
    return keys


def nonnull_when_true(test: ast.expr) -> set[str]:
    """Keys proven non-None when ``test`` evaluates truthy."""
    keys: set[str] = set()
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        is_none_literal = (
            isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        )
        if is_none_literal and isinstance(test.ops[0], ast.IsNot):
            keys |= guard_keys(test.left)
    elif isinstance(test, (ast.Name, ast.Attribute, ast.NamedExpr)):
        # `if tracer:` / `if (t := self.tracer):` — truthiness implies non-None
        keys |= guard_keys(test)
    elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for value in test.values:
            keys |= nonnull_when_true(value)
    elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        keys |= nonnull_when_false(test.operand)
    return keys


def nonnull_when_false(test: ast.expr) -> set[str]:
    """Keys proven non-None when ``test`` evaluates falsy."""
    keys: set[str] = set()
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        is_none_literal = (
            isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None
        )
        if is_none_literal and isinstance(test.ops[0], ast.Is):
            keys |= guard_keys(test.left)
    elif isinstance(test, ast.BoolOp) and isinstance(test.op, ast.Or):
        for value in test.values:
            keys |= nonnull_when_false(value)
    elif isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        keys |= nonnull_when_true(test.operand)
    return keys


def _terminal_block(body: list[ast.stmt]) -> bool:
    """True when the block cannot fall through to the following statement."""
    if not body:
        return False
    return isinstance(body[-1], (ast.Return, ast.Raise, ast.Continue, ast.Break))


_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Module, ast.ClassDef)


class GuardIndex:
    """Parent links over one function (or module) body, with guard queries."""

    __slots__ = ("root", "_parents")

    def __init__(self, root: ast.AST) -> None:
        self.root = root
        self._parents: dict[int, ast.AST] = {}
        for parent in ast.walk(root):
            for child in ast.iter_child_nodes(parent):
                # nested scopes get their own GuardIndex; don't cross them
                if parent is not root and isinstance(parent, _SCOPE_NODES):
                    continue
                self._parents[id(child)] = parent

    def is_guarded(self, use: ast.AST, key: str) -> bool:
        """Is ``use`` provably inside a non-None guard for ``key``?"""
        node: ast.AST = use
        while True:
            parent = self._parents.get(id(node))
            if parent is None or (parent is not self.root and isinstance(parent, _SCOPE_NODES)):
                break
            if self._guarded_by_parent(parent, node, key):
                return True
            if self._guarded_by_block(parent, node, key):
                return True
            node = parent
        return False

    # ------------------------------------------------------------ internals

    def _guarded_by_parent(self, parent: ast.AST, child: ast.AST, key: str) -> bool:
        if isinstance(parent, ast.If):
            if self._in(parent.body, child) and key in nonnull_when_true(parent.test):
                return True
            if self._in(parent.orelse, child) and key in nonnull_when_false(parent.test):
                return True
        elif isinstance(parent, (ast.While,)):
            if self._in(parent.body, child) and key in nonnull_when_true(parent.test):
                return True
        elif isinstance(parent, ast.IfExp):
            if child is parent.body and key in nonnull_when_true(parent.test):
                return True
            if child is parent.orelse and key in nonnull_when_false(parent.test):
                return True
        elif isinstance(parent, ast.BoolOp):
            try:
                index = parent.values.index(child)  # type: ignore[arg-type]
            except ValueError:
                return False
            earlier = parent.values[:index]
            if isinstance(parent.op, ast.And):
                return any(key in nonnull_when_true(v) for v in earlier)
            return any(key in nonnull_when_false(v) for v in earlier)
        return False

    def _guarded_by_block(self, parent: ast.AST, child: ast.AST, key: str) -> bool:
        """Early-bail guards: prior siblings in the same statement list."""
        if not isinstance(child, ast.stmt):
            return False
        for field_name in ("body", "orelse", "finalbody"):
            block = getattr(parent, field_name, None)
            if not isinstance(block, list) or child not in block:
                continue
            for stmt in block[: block.index(child)]:
                if (
                    isinstance(stmt, ast.If)
                    and key in nonnull_when_false(stmt.test)
                    and _terminal_block(stmt.body)
                    and not stmt.orelse
                ):
                    return True
                if isinstance(stmt, ast.Assert) and key in nonnull_when_true(stmt.test):
                    return True
            return False
        return False

    @staticmethod
    def _in(block: list[ast.stmt], node: ast.AST) -> bool:
        return isinstance(node, ast.stmt) and node in block


def iter_scopes(tree: ast.Module) -> Iterable[ast.AST]:
    """The module plus every function definition (each analysed separately)."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def walk_scope(scope: ast.AST) -> Iterable[ast.AST]:
    """Like :func:`ast.walk`, but do not descend into nested scopes.

    Each function is analysed on its own by :func:`iter_scopes`; a
    module- or function-level pass that leaked into nested functions
    would re-check their bodies against the wrong guard context.
    """
    stack: list[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES) and child is not scope:
                continue
            stack.append(child)


def tracked_feature_names(
    scope: ast.AST, feature_names: frozenset[str]
) -> set[str]:
    """Local names in ``scope`` that hold an *optional* feature.

    A bare name is tracked when it is bound from an attribute chain
    ending in a feature name (``tracer = self.tracer``), from a
    conditional with a None arm, from ``None`` itself, or arrives as a
    parameter that is either annotated optional or defaulted to None.
    Names bound only from constructors or other non-optional expressions
    are left alone — ``synopsis = ClusterSynopsis.collect(...)`` is
    provably non-None and needs no guard.
    """
    tracked: set[str] = set()
    if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
        args = scope.args
        all_args = [*args.posonlyargs, *args.args, *args.kwonlyargs]
        defaults: dict[str, ast.expr] = {}
        positional = [*args.posonlyargs, *args.args]
        for arg, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
            defaults[arg.arg] = default
        for arg, kw_default in zip(args.kwonlyargs, args.kw_defaults):
            if kw_default is not None:
                defaults[arg.arg] = kw_default
        for arg in all_args:
            if arg.arg not in feature_names:
                continue
            annotation = arg.annotation
            default = defaults.get(arg.arg)
            optional_annotation = annotation is not None and "None" in ast.unparse(annotation)
            optional_default = isinstance(default, ast.Constant) and default.value is None
            if annotation is None or optional_annotation or optional_default:
                tracked.add(arg.arg)
    for node in walk_scope(scope):
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        elif isinstance(node, ast.NamedExpr):
            # walrus binding: `(tracer := self.tracer)` rebinds a local
            # from the optional slot exactly like a plain assignment
            targets, value = [node.target], node.value
        if value is None:
            continue
        for target in targets:
            if not isinstance(target, ast.Name) or target.id not in feature_names:
                continue
            if _optional_source(value, feature_names):
                tracked.add(target.id)
    return tracked


def _optional_source(value: ast.expr, feature_names: frozenset[str]) -> bool:
    if isinstance(value, ast.Constant) and value.value is None:
        return True
    if isinstance(value, ast.Attribute) and value.attr in feature_names:
        return True
    if isinstance(value, ast.IfExp):
        return any(
            isinstance(arm, ast.Constant) and arm.value is None
            for arm in (value.body, value.orelse)
        ) or _optional_source(value.body, feature_names) or _optional_source(
            value.orelse, feature_names
        )
    if isinstance(value, ast.BoolOp):
        return any(_optional_source(v, feature_names) for v in value.values)
    return False
