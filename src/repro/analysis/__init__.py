"""replint: AST-based invariant checking for the repro engine.

The engine's core guarantees — bit-identical simulated timings with
tracing/synopsis/faults on or off, deterministic replay under fault
seeds, ``python -O`` safety of the storage layer — are mechanical
properties of the *source*.  This package proves them statically on
every commit instead of waiting for an ablation benchmark to drift.

Run it as ``python -m repro.analysis src/repro`` (see
:mod:`repro.analysis.__main__` for the CLI) or call :func:`lint_paths`
programmatically.  Each rule can be suppressed per line with
``# replint: disable=<rule-id>`` or per file with
``# replint: disable-file=<rule-id>``; see ``docs/static-analysis.md``
for the rule catalogue and the invariants behind it.
"""

from __future__ import annotations

from repro.analysis.config import ReplintConfig, load_config
from repro.analysis.core import Finding, Rule, SourceFile, lint_paths, lint_source
from repro.analysis.rules import all_rules

__all__ = [
    "Finding",
    "ReplintConfig",
    "Rule",
    "SourceFile",
    "all_rules",
    "lint_paths",
    "lint_source",
    "load_config",
]
