"""The execution environment: one place that wires the simulated runtime.

Every query execution needs the same four physical components — a
simulated clock, a disk device, the asynchronous I/O subsystem and a
buffer manager — assembled in the same order and sharing one
:class:`~repro.sim.stats.Stats` bundle.  Before this module existed that
wiring was hand-rolled in four places (the engine, the concurrent
executor, the benchmark harness and the CLI); now they all go through an
:class:`ExecutionEnvironment`.

Two context policies:

* :meth:`ExecutionEnvironment.fresh_context` — a **cold** runtime: new
  clock at zero, disk head parked at page 0, empty buffer.  This is the
  paper's measurement discipline (O_DIRECT, cold caches, Sec. 6.1).
* :meth:`ExecutionEnvironment.view` — a **private view** of an existing
  runtime: its own current-cluster pin and fallback flag, but the same
  clock, disk queue, buffer and stats.  Concurrent and batched execution
  give each query a view of one shared runtime, which is how their disk
  requests land in a single controller queue.

Warm execution (a session keeping one context alive across queries) is
layered on top by :class:`repro.exec.session.QuerySession`.
"""

from __future__ import annotations

import os

from repro.algebra.context import EvalContext, EvalOptions
from repro.errors import ReproError
from repro.model.tags import TagDictionary
from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.disk import DiskDevice, DiskGeometry, SchedulingPolicy
from repro.sim.faults import FaultPlan, FaultProfile
from repro.sim.iosys import AsyncIOSystem
from repro.sim.stats import Stats
from repro.storage.buffer import BufferManager
from repro.storage.page import Segment


class ExecutionEnvironment:
    """Factory for execution contexts over one stored segment.

    Owns the *configuration* of the simulated runtime (disk geometry,
    scheduling policy, cost model, buffer capacity, default evaluation
    options); every :meth:`fresh_context` call instantiates the wiring
    from it.
    """

    def __init__(
        self,
        segment: Segment,
        tags: TagDictionary | None,
        geometry: DiskGeometry | None = None,
        disk_policy: SchedulingPolicy = SchedulingPolicy.SSTF,
        costs: CostModel | None = None,
        buffer_pages: int = 256,
        options: EvalOptions | None = None,
        faults: FaultProfile | None = None,
        tracer=None,
    ) -> None:
        self.segment = segment
        self.tags = tags
        self.geometry = geometry or DiskGeometry(page_size=segment.page_size)
        if self.geometry.page_size != segment.page_size:
            raise ReproError("geometry.page_size must match the database page size")
        self.disk_policy = disk_policy
        self.costs = costs or DEFAULT_COST_MODEL
        self.buffer_pages = buffer_pages
        self.options = options or EvalOptions()
        #: fault workload injected into every cold runtime's disk; each
        #: :meth:`fresh_context` gets a *fresh* FaultPlan over it, so two
        #: cold runs with the same profile replay identical faults
        self.faults = faults if faults is not None and faults.active else None
        #: optional :class:`~repro.obs.tracer.Tracer` shared by every
        #: context this environment builds; ``None`` keeps every
        #: instrumentation site on its single-``is None``-test fast path
        self.tracer = tracer
        #: number of cold runtimes built (one per cold run / shared batch)
        self.contexts_built = 0

    @classmethod
    def for_store(cls, store, **config) -> "ExecutionEnvironment":
        """An environment over a :class:`~repro.storage.store.DocumentStore`."""
        return cls(store.segment, store.tags, **config)

    # ------------------------------------------------------------- contexts

    def fresh_context(self, options: EvalOptions | None = None) -> EvalContext:
        """A cold runtime: new clock, parked disk head, empty buffer.

        When ``REPRO_SAN`` requests runtime sanitizers
        (:mod:`repro.analysis.sanitize`), they are installed here — with
        a *shadow* tracer when the environment has none, so the charge
        sanitizer's mirror counters have somewhere to land without
        surfacing in results.  The variable is consulted only when set,
        keeping the ordinary path free of sanitizer work.
        """
        opts = options or self.options
        tracer = self.tracer
        active: frozenset[str] = frozenset()
        if os.environ.get("REPRO_SAN"):
            from repro.analysis import sanitize

            active = sanitize.modes()
            if "charge" in active and tracer is None:
                from repro.obs.tracer import Tracer

                tracer = Tracer(shadow=True)
        ctx = self._build_context(opts, tracer)
        self.contexts_built += 1
        if active:
            from repro.analysis import sanitize

            sanitize.install(ctx, active)
        return ctx

    def shadow_context(
        self, options: EvalOptions | None = None, tracer=None
    ) -> EvalContext:
        """Sanitizer-internal: the same cold wiring as ``fresh_context``,
        but uncounted (``contexts_built`` is unperturbed), sanitizer-free
        (no recursion), and traced by the caller's private ``tracer``
        instead of the environment's.  Used by the determinism sanitizer
        for its re-execution."""
        return self._build_context(options or self.options, tracer)

    def _build_context(self, opts: EvalOptions, tracer) -> EvalContext:
        stats = Stats()
        clock = SimClock()
        plan = FaultPlan(self.faults) if self.faults is not None else None
        disk = DiskDevice(
            self.geometry, self.disk_policy, stats, faults=plan, tracer=tracer
        )
        iosys = AsyncIOSystem(
            disk, clock, self.costs, stats, retry=opts.retry, tracer=tracer
        )
        buffer = BufferManager(
            self.segment,
            iosys,
            clock,
            self.costs,
            self.buffer_pages,
            stats,
            tracer=tracer,
        )
        return EvalContext(
            self.segment,
            buffer,
            iosys,
            clock,
            self.costs,
            stats,
            opts,
            tags=self.tags,
            tracer=tracer,
        )

    def view(
        self, shared: EvalContext, options: EvalOptions | None = None
    ) -> EvalContext:
        """A private context view over ``shared``'s physical components.

        The view has its own current-cluster pin and fallback flag but
        shares the clock, disk queue, buffer pool and stats — one query's
        reads can satisfy another's, and the controller queue sees every
        query's pending requests at once.
        """
        ctx = EvalContext(
            shared.segment,
            shared.buffer,
            shared.iosys,
            shared.clock,
            shared.costs,
            shared.stats,
            options or shared.options,
            tags=shared.tags,
            tracer=shared.tracer,
        )
        # the charge sanitizer audits the *shared* stats/clock/tracer, so
        # views participate in the same shadow books
        ctx.san = shared.san
        return ctx
