"""Query sessions: cached compilation and (optionally) warm runtimes.

A :class:`QuerySession` is the layer between the :class:`~repro.engine.Database`
facade and the execution environment.  It adds two things a bare
``Database.execute`` lacks:

* an **LRU compiled-plan cache** keyed on ``(query, doc, plan, options)``
  — re-executing a query skips lex/parse/compile entirely (asserted via
  the :attr:`QuerySession.compiles` counter);
* **per-session aggregate accounting** — every run's timing and physical
  counters are merged into the session's :attr:`stats` / time totals, so
  a workload's cost is one read away.

Sessions run **cold** by default (a fresh runtime per execute, the
paper's measurement discipline).  With ``warm=True`` one runtime — clock,
buffer pool, disk head — survives across executes, so repeated queries
hit the buffer; per-run counters are attributed by snapshot/diff on the
shared :class:`~repro.sim.stats.Stats` bundle.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.algebra.context import EvalContext, EvalOptions
from repro.engine import Database, Result
from repro.exec.calibration import CalibrationStore
from repro.model.tree import Kind
from repro.sim.stats import Stats
from repro.storage.nodeid import NodeID
from repro.xpath.compile import CompiledQuery, PlanKind, resolve_auto
from repro.xpath.estimate import predict_io_costs


class QuerySession:
    """A stream of query executions over one database."""

    def __init__(
        self,
        db: Database,
        warm: bool = False,
        cache_size: int = 64,
        options: EvalOptions | None = None,
    ) -> None:
        self.db = db
        self.env = db.env
        self.warm = warm
        self.cache_size = cache_size
        self.options = options or db.eval_options
        self._plans: OrderedDict[tuple, CompiledQuery] = OrderedDict()
        self._warm_ctx: EvalContext | None = None
        #: measured-outcome feedback for the AUTO chooser
        #: (:class:`~repro.exec.calibration.CalibrationStore`); ``None``
        #: when the session's options disable calibration — the feature
        #: then has no state and costs nothing, like tracer/synopsis/WAL
        self.calibration: CalibrationStore | None = (
            CalibrationStore() if self.options.calibration else None
        )
        #: plan-cache counters
        self.cache_hits = 0
        self.cache_misses = 0
        self.compiles = 0
        #: cached AUTO plans recompiled because the feedback store would
        #: now resolve them differently (measured override or exploration)
        self.replans = 0
        #: aggregate accounting across every run of this session
        self.runs = 0
        self.degraded_runs = 0
        #: update operations routed through this session
        self.updates = 0
        self.stats = Stats()
        self.total_time = 0.0
        self.cpu_time = 0.0
        self.io_wait = 0.0

    # -------------------------------------------------------- plan cache

    def prepare(
        self,
        query: str,
        doc: str = "default",
        plan: PlanKind | str = PlanKind.AUTO,
        options: EvalOptions | None = None,
    ) -> CompiledQuery:
        """Compile ``query`` through the LRU plan cache.

        Compiled plans are stateless (operator trees are instantiated per
        execution), so one cache entry serves any number of runs.

        With calibration on, a cached AUTO plan is revalidated against
        the feedback store: if the store would resolve any of its paths
        to a different family today (a measured outcome arrived, or a
        low-confidence choice is due an exploration run), the entry is
        dropped and the query recompiles — compilation is off the
        simulated clock, so the replan is free in simulated time.
        """
        kind = plan if isinstance(plan, PlanKind) else PlanKind(plan)
        opts = options or self.options
        key = (query, doc, kind.value, opts)
        tracer = self.env.tracer
        advisor = self.calibration if opts.calibration else None
        cached = self._plans.get(key)
        if (
            cached is not None
            and advisor is not None
            and cached.auto_choices
            and self._advice_stale(cached, doc, opts, advisor)
        ):
            del self._plans[key]
            self.replans += 1
            cached = None
        if cached is not None:
            self._plans.move_to_end(key)
            self.cache_hits += 1
            if tracer is not None:
                tracer.plan_cache_event(True, query, doc, kind.value)
            return cached
        self.cache_misses += 1
        self.compiles += 1
        if tracer is not None:
            tracer.plan_cache_event(False, query, doc, kind.value)
        compiled = self.db.prepare(query, doc, kind, opts, advisor=advisor)
        self._plans[key] = compiled
        while len(self._plans) > self.cache_size:
            self._plans.popitem(last=False)
        return compiled

    def _advice_stale(
        self,
        compiled: CompiledQuery,
        doc: str,
        opts: EvalOptions,
        advisor: CalibrationStore,
    ) -> bool:
        """True if the store would resolve any AUTO path differently now."""
        document = self.db.store.document(doc)
        geometry = self.db.geometry
        for record in compiled.auto_choices:
            choice, _, _ = resolve_auto(
                document, list(record.steps), geometry, opts, advisor
            )
            if choice != record.choice:
                return True
        return False

    def clear_cache(self) -> None:
        """Drop every cached plan (counters are kept)."""
        self._plans.clear()

    @property
    def cached_plans(self) -> int:
        return len(self._plans)

    # ----------------------------------------------------------- runtime

    def context(self, options: EvalOptions | None = None) -> EvalContext:
        """The runtime the next run executes on.

        Cold sessions build a fresh one per call; warm sessions build one
        on first use and keep it (buffer contents, clock and disk-head
        position all persist).
        """
        if not self.warm:
            return self.env.fresh_context(options or self.options)
        if self._warm_ctx is None:
            self._warm_ctx = self.env.fresh_context(options or self.options)
        return self._warm_ctx

    def cool(self) -> None:
        """Discard the warm runtime; the next run starts cold again."""
        self._warm_ctx = None

    # --------------------------------------------------------- execution

    def execute(
        self,
        query: str,
        doc: str = "default",
        plan: PlanKind | str = PlanKind.AUTO,
        options: EvalOptions | None = None,
    ) -> Result:
        """Run ``query``; compiles at most once per distinct cache key."""
        compiled = self.prepare(query, doc, plan, options)
        ctx = self.context(options)
        # warm contexts accumulate degradation events across runs; slice
        # from here so this result only reports its own
        events_mark = len(ctx.degradation_events)
        mark = ctx.clock.checkpoint()
        before = ctx.stats.snapshot()
        tracer = ctx.tracer
        trace_mark = tracer.mark() if tracer is not None else None
        value, nodes = compiled.execute(ctx)
        partial = any(
            e.reason == "budget" for e in ctx.degradation_events[events_mark:]
        )
        result = Result.from_context(
            ctx,
            mark,
            query=query,
            doc=doc,
            plan_kinds=compiled.plan_kinds,
            value=value,
            nodes=nodes,
            stats=ctx.stats.diff(before),
            degradation=ctx.report_since(events_mark, partial=partial),
            trace_summary=(
                tracer.summary(since=trace_mark)
                if tracer is not None and not tracer.shadow
                else None
            ),
        )
        self._account(result)
        self.observe_run(compiled, doc, result.total_time, options)
        return result

    def observe_run(
        self,
        compiled: CompiledQuery,
        doc: str,
        total_time: float,
        options: EvalOptions | None = None,
    ) -> bool:
        """Feed one run's simulated total into the calibration store.

        Only clean measurements are deposited: the session must be cold
        (a warm buffer would make the first-observed family look slower
        than the second) and the query must be a single location path
        whose plan is one of the chooser's two families — multi-path and
        shared-I/O timings cannot be attributed to one (shape, plan)
        pair.  Returns True when an observation was recorded.
        """
        store = self.calibration
        opts = options or self.options
        if store is None or not opts.calibration or self.warm:
            return False
        plans = compiled.path_plans()
        if len(plans) != 1:
            return False
        path = plans[0]
        if path.kind not in (PlanKind.XSCAN, PlanKind.XSCHEDULE):
            return False
        document = self.db.store.document(doc)
        prediction = predict_io_costs(
            document,
            path.steps,
            self.db.geometry,
            use_synopsis=opts.synopsis,
            use_pathsummary=opts.pathsummary,
            queue_depth=opts.k_min_queue,
        )
        store.observe(
            document.name, path.steps, path.kind.value, total_time, prediction
        )
        return True

    def run_batch(
        self,
        requests,
        doc: str = "default",
        plan: PlanKind | str = PlanKind.AUTO,
    ):
        """Execute a batch over one shared runtime; see :mod:`repro.exec.batch`."""
        from repro.exec.batch import run_batch

        return run_batch(self, requests, doc=doc, plan=plan)

    # ----------------------------------------------------------- updates

    def insert(
        self,
        doc: str,
        parent: NodeID,
        position: int,
        tag_name: str,
        kind: Kind = Kind.ELEMENT,
        value: str | None = None,
    ) -> NodeID:
        """Insert a node, durably when the database has a WAL attached.

        With ``db.wal`` set the operation is applied, synopsis-repaired
        and logged (fsynced per operation unless inside a group-commit
        window); without one it applies in memory only.  Structural
        updates drop the compiled-plan cache: cached AUTO choices were
        costed against pre-update statistics.
        """
        wal = self.db.wal
        if wal is not None:
            nid = wal.insert(doc, parent, position, tag_name, kind, value)
        else:
            from repro.storage.update import insert_node

            store = self.db.store
            nid = insert_node(
                store, store.document(doc), parent, position, tag_name, kind, value
            )
        self.updates += 1
        self.clear_cache()
        return nid

    def delete(self, doc: str, nid: NodeID) -> int:
        """Delete a subtree (durably with a WAL attached); returns the
        number of core nodes removed."""
        wal = self.db.wal
        if wal is not None:
            removed = wal.delete(doc, nid)
        else:
            from repro.storage.update import delete_subtree

            store = self.db.store
            removed = delete_subtree(store, store.document(doc), nid)
        self.updates += 1
        self.clear_cache()
        return removed

    def set_value(self, doc: str, nid: NodeID, value: str) -> None:
        """Replace a text/attribute value (durably with a WAL attached).

        Value updates change no structure, so cached plans stay valid.
        """
        wal = self.db.wal
        if wal is not None:
            wal.set_value(doc, nid, value)
        else:
            from repro.storage.update import update_value

            update_value(self.db.store, nid, value)
        self.updates += 1

    # -------------------------------------------------------- accounting

    def _account(self, result: Result) -> None:
        self.runs += 1
        if result.degraded:
            self.degraded_runs += 1
        self.stats.merge(result.stats)
        self.total_time += result.total_time
        self.cpu_time += result.cpu_time
        self.io_wait += result.io_wait

    def _account_batch(self, outcome) -> None:
        """Merge a batch's shared accounting once (not once per query).

        Update requests are counted by the per-op session methods (via
        :attr:`updates`), so only the query requests add to :attr:`runs`.
        """
        self.runs += len(outcome.results) - outcome.updates
        self.degraded_runs += sum(1 for r in outcome.results if r.degraded)
        self.stats.merge(outcome.stats)
        self.total_time += outcome.total_time
        self.cpu_time += outcome.cpu_time
        self.io_wait += outcome.io_wait

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "warm" if self.warm else "cold"
        return (
            f"QuerySession({mode}, runs={self.runs}, plans={len(self._plans)}, "
            f"hits={self.cache_hits}, compiles={self.compiles}, "
            f"total={self.total_time:.4f}s)"
        )
