"""Batched multi-query execution over one shared runtime.

The paper isolates all physical access in one I/O-performing operator so
the scheduler can amortize cost across many pending navigations; its
outlook extends this to *multiple location paths* sharing one operator.
:func:`run_batch` is that extension lifted to the engine's surface: a
batch of queries is routed onto a single execution environment —

* **scan-shareable** queries (location paths whose resolved plan is the
  sequential scan, all over one document) ride a *single* physical pass
  via :func:`repro.algebra.multiscan.shared_scan`;
* everything else is **interleaved** round-robin over the shared
  asynchronous disk queue (:func:`repro.algebra.concurrent.interleave`),
  where the controller sees every query's pending requests at once and
  one query's reads satisfy another's buffer hits.

Routing is cost-sensitive in the batch sense: a query compiled with
``plan="auto"`` whose estimator picks XSchedule *in isolation* is still
promoted onto the shared scan when at least one other batch member scans
the same document — the marginal I/O of adding a path to a scan that is
happening anyway is zero.

Every per-query :class:`~repro.engine.Result` carries the batch's shared
:class:`~repro.sim.stats.Stats` bundle with
``shared_io_queries=len(batch)`` recording the amortization, and
finished-at timing on the shared clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.concurrent import interleave
from repro.algebra.multiscan import shared_scan
from repro.engine import Result
from repro.errors import PlanError, UnsupportedQueryError
from repro.model.tree import Kind
from repro.sim.stats import Stats
from repro.storage.nodeid import NodeID
from repro.xpath.compile import CompiledQuery, PlanKind


@dataclass(frozen=True)
class InsertOp:
    """Batch request: insert a node (see :meth:`QuerySession.insert
    <repro.exec.session.QuerySession.insert>`).  ``doc=None`` targets
    the batch's default document."""

    parent: NodeID
    position: int
    tag_name: str
    kind: Kind = Kind.ELEMENT
    value: str | None = None
    doc: str | None = None


@dataclass(frozen=True)
class DeleteOp:
    """Batch request: delete the subtree rooted at ``nid``."""

    nid: NodeID
    doc: str | None = None


@dataclass(frozen=True)
class SetValueOp:
    """Batch request: replace a text/attribute value."""

    nid: NodeID
    value: str = ""
    doc: str | None = None


#: request types recognised as update operations
UPDATE_OPS = (InsertOp, DeleteOp, SetValueOp)


@dataclass
class BatchOutcome:
    """Aggregate outcome of one :func:`run_batch` call."""

    results: list[Result]  #: per-request results, in request order
    total_time: float  #: simulated makespan of the whole batch
    cpu_time: float
    io_wait: float
    stats: Stats  #: shared physical counters for the whole batch
    scan_shared: int  #: queries evaluated via the shared sequential scan
    interleaved: int  #: queries interleaved over the shared disk queue
    #: trace rollups for the whole batch (``None`` without a tracer);
    #: shared by every per-query result, like ``stats``
    trace_summary: object | None = None
    #: update operations applied between the batch's query runs
    updates: int = field(default=0)

    @property
    def makespan(self) -> float:
        return self.total_time


def _normalize(request, doc: str, plan) -> tuple[str, str, PlanKind]:
    if isinstance(request, str):
        query, rdoc, rplan = request, doc, plan
    else:
        parts = tuple(request)
        query = parts[0]
        rdoc = parts[1] if len(parts) > 1 else doc
        rplan = parts[2] if len(parts) > 2 else plan
    kind = rplan if isinstance(rplan, PlanKind) else PlanKind(rplan)
    return query, rdoc, kind


def _pure_scan(compiled: CompiledQuery) -> bool:
    """True if every leaf path scans and they all target one document."""
    plans = compiled.path_plans()
    return (
        bool(plans)
        and all(p.kind is PlanKind.XSCAN for p in plans)
        and len({id(p.document) for p in plans}) == 1
    )


def _run_queries(
    session,
    shared,
    raw: list,
    indices: list[int],
    doc: str,
    plan,
    outcomes: list,
    labels: list,
    plan_kinds_by: list,
) -> tuple[int, int]:
    """Execute one run of query requests on the shared runtime.

    This is the original (pure-query) batch body parametrised by the
    request indices it serves: compile through the session cache, route
    onto the shared scan / shared disk queue, resolve.  Compilation
    happens here — per run, not per batch — so queries that follow an
    update run are planned against the post-update document.  Returns
    ``(scan_members, queue_members)`` counts.
    """
    reqs = {index: _normalize(raw[index], doc, plan) for index in indices}
    compiled: dict[int, CompiledQuery] = {
        index: session.prepare(q, d, k, session.options)
        for index, (q, d, k) in reqs.items()
    }
    for index, (query, rdoc, _) in reqs.items():
        labels[index] = (query, rdoc)

    # ---- route: shared scan per document vs. shared disk queue
    scan_groups: dict[int, list[int]] = {}  # id(document) -> request indices
    queue_members: list[int] = []
    promotable: dict[int, list[tuple[int, CompiledQuery]]] = {}
    for index in indices:
        query, rdoc, kind = reqs[index]
        cq = compiled[index]
        if _pure_scan(cq):
            scan_groups.setdefault(id(cq.path_plans()[0].document), []).append(index)
        elif kind is PlanKind.AUTO:
            try:
                rescanned = session.prepare(query, rdoc, PlanKind.XSCAN, session.options)
            except UnsupportedQueryError:
                queue_members.append(index)
                continue
            if _pure_scan(rescanned):
                doc_key = id(rescanned.path_plans()[0].document)
                promotable.setdefault(doc_key, []).append((index, rescanned))
            else:
                queue_members.append(index)
        else:
            queue_members.append(index)
    for doc_key, members in promotable.items():
        # promote only where the scan is shared with at least one other query
        if len(scan_groups.get(doc_key, [])) + len(members) >= 2:
            for index, rescanned in members:
                compiled[index] = rescanned
                scan_groups.setdefault(doc_key, []).append(index)
        else:
            queue_members.extend(index for index, _ in members)
    queue_members.sort()

    tracer = shared.tracer
    if tracer is not None:
        scan_members = sum(len(members) for members in scan_groups.values())
        tracer.batch_event(
            shared.clock.now, len(indices), scan_members, len(queue_members)
        )

    def _report(view):
        partial = any(e.reason == "budget" for e in view.degradation_events)
        return view.report_since(0, partial=partial)

    # ---- phase 1: one sequential scan per document feeds all its paths
    for doc_key in scan_groups:
        members = sorted(scan_groups[doc_key])
        view = session.env.view(shared, session.options)
        armed = view.arm_budget(view.options.budget)
        plans: list = []
        seen: set[int] = set()
        for index in members:
            for path_plan in compiled[index].path_plans():
                if id(path_plan) not in seen:  # duplicate queries share one entry
                    seen.add(id(path_plan))
                    plans.append(path_plan)
        try:
            result_sets = shared_scan(view, plans[0].document, plans)
            by_plan = {id(p): nids for p, nids in zip(plans, result_sets)}
            for index in members:
                value, nodes = compiled[index].resolve_with_results(view, by_plan)
                outcomes[index] = (
                    value,
                    nodes,
                    shared.clock.checkpoint(),
                    _report(view),
                )
        finally:
            if armed:
                view.disarm_budget()

    # ---- phase 2: the rest interleave over the shared disk queue
    if queue_members:
        jobs = [
            (compiled[index], session.env.view(shared, session.options))
            for index in queue_members
        ]
        for index, (_, view), outcome in zip(
            queue_members, jobs, interleave(jobs)
        ):
            outcomes[index] = outcome + (_report(view),)

    for index in indices:
        plan_kinds_by[index] = compiled[index].plan_kinds
    scan_count = sum(len(members) for members in scan_groups.values())
    return scan_count, len(queue_members), compiled


def _apply_one_update(
    session, shared, op, doc: str, outcomes: list, labels: list, index: int
) -> None:
    """Apply one update request through the session (WAL-routed when
    attached) and synthesize its per-request outcome entry."""
    target = op.doc if op.doc is not None else doc
    if isinstance(op, InsertOp):
        nid = session.insert(
            target, op.parent, op.position, op.tag_name, op.kind, op.value
        )
        value: float | None = None
        nodes: list[NodeID] | None = [nid]
        label = f"insert({op.tag_name})"
    elif isinstance(op, DeleteOp):
        removed = session.delete(target, op.nid)
        value, nodes = float(removed), None
        label = "delete"
    else:
        session.set_value(target, op.nid, op.value)
        value, nodes = None, None
        label = "set-value"
    labels[index] = (label, target)
    outcomes[index] = (value, nodes, shared.clock.checkpoint(), None)


def _apply_updates(
    session, shared, raw: list, indices: range, doc: str, outcomes: list, labels: list
) -> None:
    """Apply one run of update requests, in order.

    With a WAL attached, the whole run rides one group-commit window —
    the batch flush policy: one fsync per update run instead of one per
    operation (operations inside the run are not durable until the run
    ends; see :meth:`~repro.storage.wal.WriteAheadLog.group_commit`).
    """
    wal = session.db.wal
    if wal is not None:
        with wal.group_commit():
            for index in indices:
                _apply_one_update(session, shared, raw[index], doc, outcomes, labels, index)
    else:
        for index in indices:
            _apply_one_update(session, shared, raw[index], doc, outcomes, labels, index)


def run_batch(
    session,
    requests,
    doc: str = "default",
    plan: PlanKind | str = PlanKind.AUTO,
) -> BatchOutcome:
    """Execute a batch of queries and updates over one shared runtime.

    ``requests`` is a list of query strings, ``(query[, doc[, plan]])``
    tuples, or update operations (:class:`InsertOp`, :class:`DeleteOp`,
    :class:`SetValueOp`); ``doc``/``plan`` supply the defaults.  The
    batch is processed in request order as maximal runs: consecutive
    queries share scans and the disk queue exactly as before (a batch
    without updates takes the historical code path unchanged), and
    consecutive updates apply in order under one WAL group-commit
    window.  Queries after an update run see the updated document and
    are compiled against it.

    Update requests yield synthesized results (``plan_kinds=[]``; an
    insert's ``nodes`` holds the minted NodeID, a delete's ``value`` the
    removed-node count); updates consume no simulated time — maintenance
    cost modeling stays out of scope, as in the paper.
    """
    raw = list(requests)
    if not raw:
        raise PlanError("run_batch needs at least one request")

    shared = session.context(session.options)
    mark = shared.clock.checkpoint()
    before = shared.stats.snapshot()
    tracer = shared.tracer
    trace_mark = tracer.mark() if tracer is not None else None

    n = len(raw)
    #: per request: (value, nodes, clock checkpoint, degradation report)
    outcomes: list[tuple | None] = [None] * n
    labels: list[tuple[str, str] | None] = [None] * n
    plan_kinds_by: list[list[PlanKind]] = [[] for _ in range(n)]
    scan_count = 0
    queue_count = 0
    updates_count = 0
    compiled_by: dict[int, CompiledQuery] = {}

    index = 0
    while index < n:
        is_update = isinstance(raw[index], UPDATE_OPS)
        end = index
        while end < n and isinstance(raw[end], UPDATE_OPS) == is_update:
            end += 1
        if is_update:
            _apply_updates(session, shared, raw, range(index, end), doc, outcomes, labels)
            updates_count += end - index
        else:
            sc, qc, run_compiled = _run_queries(
                session, shared, raw, list(range(index, end)), doc, plan,
                outcomes, labels, plan_kinds_by,
            )
            scan_count += sc
            queue_count += qc
            compiled_by.update(run_compiled)
        index = end

    # ---- per-request results with shared-I/O attribution
    batch_stats = shared.stats.diff(before)
    total, cpu, io_wait = shared.clock.since(mark)
    batch_summary = (
        tracer.summary(since=trace_mark)
        if tracer is not None and not tracer.shadow
        else None
    )
    results: list[Result] = []
    for position in range(n):
        value, nodes, checkpoint, degradation = outcomes[position]
        query, rdoc = labels[position]
        results.append(
            Result(
                query=query,
                doc=rdoc,
                plan_kinds=plan_kinds_by[position],
                value=value,
                nodes=nodes,
                total_time=checkpoint[0] - mark[0],
                cpu_time=checkpoint[1] - mark[1],
                io_wait=checkpoint[2] - mark[2],
                stats=batch_stats,
                shared_io_queries=n,
                degradation=degradation,
                trace_summary=batch_summary,
            )
        )
    outcome = BatchOutcome(
        results=results,
        total_time=total,
        cpu_time=cpu,
        io_wait=io_wait,
        stats=batch_stats,
        scan_shared=scan_count,
        interleaved=queue_count,
        trace_summary=batch_summary,
        updates=updates_count,
    )
    session._account_batch(outcome)
    # a single-query batch on a cold runtime is a clean per-plan timing:
    # nothing shared its I/O and the makespan is all its own, so it can
    # feed the chooser's calibration store like a plain session run.
    # Anything larger stays unobserved — shared-scan and interleaved
    # timings cannot be attributed to one (shape, plan) pair.
    if n == 1 and updates_count == 0 and 0 in compiled_by:
        session.observe_run(compiled_by[0], labels[0][1], total, session.options)
    return outcome
