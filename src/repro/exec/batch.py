"""Batched multi-query execution over one shared runtime.

The paper isolates all physical access in one I/O-performing operator so
the scheduler can amortize cost across many pending navigations; its
outlook extends this to *multiple location paths* sharing one operator.
:func:`run_batch` is that extension lifted to the engine's surface: a
batch of queries is routed onto a single execution environment —

* **scan-shareable** queries (location paths whose resolved plan is the
  sequential scan, all over one document) ride a *single* physical pass
  via :func:`repro.algebra.multiscan.shared_scan`;
* everything else is **interleaved** round-robin over the shared
  asynchronous disk queue (:func:`repro.algebra.concurrent.interleave`),
  where the controller sees every query's pending requests at once and
  one query's reads satisfy another's buffer hits.

Routing is cost-sensitive in the batch sense: a query compiled with
``plan="auto"`` whose estimator picks XSchedule *in isolation* is still
promoted onto the shared scan when at least one other batch member scans
the same document — the marginal I/O of adding a path to a scan that is
happening anyway is zero.

Every per-query :class:`~repro.engine.Result` carries the batch's shared
:class:`~repro.sim.stats.Stats` bundle with
``shared_io_queries=len(batch)`` recording the amortization, and
finished-at timing on the shared clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.concurrent import interleave
from repro.algebra.multiscan import shared_scan
from repro.engine import Result
from repro.errors import PlanError, UnsupportedQueryError
from repro.sim.stats import Stats
from repro.xpath.compile import CompiledQuery, PlanKind


@dataclass
class BatchOutcome:
    """Aggregate outcome of one :func:`run_batch` call."""

    results: list[Result]  #: per-query results, in request order
    total_time: float  #: simulated makespan of the whole batch
    cpu_time: float
    io_wait: float
    stats: Stats  #: shared physical counters for the whole batch
    scan_shared: int  #: queries evaluated via the shared sequential scan
    interleaved: int  #: queries interleaved over the shared disk queue
    #: trace rollups for the whole batch (``None`` without a tracer);
    #: shared by every per-query result, like ``stats``
    trace_summary: object | None = None

    @property
    def makespan(self) -> float:
        return self.total_time


def _normalize(request, doc: str, plan) -> tuple[str, str, PlanKind]:
    if isinstance(request, str):
        query, rdoc, rplan = request, doc, plan
    else:
        parts = tuple(request)
        query = parts[0]
        rdoc = parts[1] if len(parts) > 1 else doc
        rplan = parts[2] if len(parts) > 2 else plan
    kind = rplan if isinstance(rplan, PlanKind) else PlanKind(rplan)
    return query, rdoc, kind


def _pure_scan(compiled: CompiledQuery) -> bool:
    """True if every leaf path scans and they all target one document."""
    plans = compiled.path_plans()
    return (
        bool(plans)
        and all(p.kind is PlanKind.XSCAN for p in plans)
        and len({id(p.document) for p in plans}) == 1
    )


def run_batch(
    session,
    requests,
    doc: str = "default",
    plan: PlanKind | str = PlanKind.AUTO,
) -> BatchOutcome:
    """Execute a batch of queries over one shared runtime.

    ``requests`` is a list of query strings or ``(query[, doc[, plan]])``
    tuples; ``doc``/``plan`` supply the defaults.  Compilation goes
    through ``session``'s plan cache; warm sessions run the batch on
    their persistent runtime.
    """
    reqs = [_normalize(r, doc, plan) for r in requests]
    if not reqs:
        raise PlanError("run_batch needs at least one request")
    compiled: list[CompiledQuery] = [
        session.prepare(q, d, k, session.options) for q, d, k in reqs
    ]

    # ---- route: shared scan per document vs. shared disk queue
    scan_groups: dict[int, list[int]] = {}  # id(document) -> request indices
    queue_members: list[int] = []
    promotable: dict[int, list[tuple[int, CompiledQuery]]] = {}
    for index, ((query, rdoc, kind), cq) in enumerate(zip(reqs, compiled)):
        if _pure_scan(cq):
            scan_groups.setdefault(id(cq.path_plans()[0].document), []).append(index)
        elif kind is PlanKind.AUTO:
            try:
                rescanned = session.prepare(query, rdoc, PlanKind.XSCAN, session.options)
            except UnsupportedQueryError:
                queue_members.append(index)
                continue
            if _pure_scan(rescanned):
                doc_key = id(rescanned.path_plans()[0].document)
                promotable.setdefault(doc_key, []).append((index, rescanned))
            else:
                queue_members.append(index)
        else:
            queue_members.append(index)
    for doc_key, members in promotable.items():
        # promote only where the scan is shared with at least one other query
        if len(scan_groups.get(doc_key, [])) + len(members) >= 2:
            for index, rescanned in members:
                compiled[index] = rescanned
                scan_groups.setdefault(doc_key, []).append(index)
        else:
            queue_members.extend(index for index, _ in members)
    queue_members.sort()

    shared = session.context(session.options)
    mark = shared.clock.checkpoint()
    before = shared.stats.snapshot()
    tracer = shared.tracer
    trace_mark = tracer.mark() if tracer is not None else None
    if tracer is not None:
        scan_members = sum(len(members) for members in scan_groups.values())
        tracer.batch_event(
            shared.clock.now, len(reqs), scan_members, len(queue_members)
        )
    #: per request: (value, nodes, clock checkpoint, degradation report)
    outcomes: list[tuple | None] = [None] * len(reqs)

    def _report(view):
        partial = any(e.reason == "budget" for e in view.degradation_events)
        return view.report_since(0, partial=partial)

    # ---- phase 1: one sequential scan per document feeds all its paths
    for doc_key in scan_groups:
        members = sorted(scan_groups[doc_key])
        view = session.env.view(shared, session.options)
        armed = view.arm_budget(view.options.budget)
        plans: list = []
        seen: set[int] = set()
        for index in members:
            for path_plan in compiled[index].path_plans():
                if id(path_plan) not in seen:  # duplicate queries share one entry
                    seen.add(id(path_plan))
                    plans.append(path_plan)
        try:
            result_sets = shared_scan(view, plans[0].document, plans)
            by_plan = {id(p): nids for p, nids in zip(plans, result_sets)}
            for index in members:
                value, nodes = compiled[index].resolve_with_results(view, by_plan)
                outcomes[index] = (
                    value,
                    nodes,
                    shared.clock.checkpoint(),
                    _report(view),
                )
        finally:
            if armed:
                view.disarm_budget()

    # ---- phase 2: the rest interleave over the shared disk queue
    if queue_members:
        jobs = [
            (compiled[index], session.env.view(shared, session.options))
            for index in queue_members
        ]
        for index, (_, view), outcome in zip(
            queue_members, jobs, interleave(jobs)
        ):
            outcomes[index] = outcome + (_report(view),)

    # ---- per-query results with shared-I/O attribution
    batch_stats = shared.stats.diff(before)
    total, cpu, io_wait = shared.clock.since(mark)
    batch_summary = tracer.summary(since=trace_mark) if tracer is not None else None
    results: list[Result] = []
    for (query, rdoc, _), cq, outcome in zip(reqs, compiled, outcomes):
        value, nodes, checkpoint, degradation = outcome
        results.append(
            Result(
                query=query,
                doc=rdoc,
                plan_kinds=cq.plan_kinds,
                value=value,
                nodes=nodes,
                total_time=checkpoint[0] - mark[0],
                cpu_time=checkpoint[1] - mark[1],
                io_wait=checkpoint[2] - mark[2],
                stats=batch_stats,
                shared_io_queries=len(reqs),
                degradation=degradation,
                trace_summary=batch_summary,
            )
        )
    scan_count = sum(len(members) for members in scan_groups.values())
    outcome = BatchOutcome(
        results=results,
        total_time=total,
        cpu_time=cpu,
        io_wait=io_wait,
        stats=batch_stats,
        scan_shared=scan_count,
        interleaved=len(queue_members),
        trace_summary=batch_summary,
    )
    session._account_batch(outcome)
    return outcome
