"""The execution-session layer.

Three layers between the :class:`~repro.engine.Database` facade and the
physical algebra (see ``docs/execution.md``):

* :class:`~repro.exec.environment.ExecutionEnvironment` — owns the
  simulated runtime wiring (clock, disk, async I/O, buffer) and the
  cold/view context policies;
* :class:`~repro.exec.session.QuerySession` — LRU compiled-plan cache,
  optional warm runtime, per-session aggregate accounting;
* :func:`~repro.exec.batch.run_batch` — routes a batch of queries onto
  one I/O-performing operator (shared scan) or the shared disk queue.
"""

from repro.exec.environment import ExecutionEnvironment

__all__ = [
    "ExecutionEnvironment",
    "CalibrationStore",
    "QuerySession",
    "BatchOutcome",
    "run_batch",
    "InsertOp",
    "DeleteOp",
    "SetValueOp",
]

_LAZY = {
    "CalibrationStore": "calibration",
    "QuerySession": "session",
    "BatchOutcome": "batch",
    "run_batch": "batch",
    "InsertOp": "batch",
    "DeleteOp": "batch",
    "SetValueOp": "batch",
}


def __getattr__(name: str):
    # session/batch import repro.engine, which imports this package for the
    # environment — resolve them on first use to keep the import acyclic.
    if name in _LAZY:
        import importlib

        module = importlib.import_module(f"repro.exec.{_LAZY[name]}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
