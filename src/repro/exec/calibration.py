"""Measured-outcome feedback for the AUTO plan chooser.

The querytorque dossier's warning (PostgreSQL's cost model correlates at
r = -0.028 with actual speedups) applies to our AUTO chooser too: it is
a cost-steered decision and every mispricing lands directly on query
latency (the paper's Q15 shows XScan losing ~8x at high selectivity).
This module closes the loop at the session level:

* every cold single-path run of an XScan or XSchedule plan deposits its
  *simulated* total time here, keyed by ``(document, path shape)``;
* at AUTO-resolution time the store is consulted first — once both
  families have been observed for a shape, the measured argmin wins
  outright ("measured");
* a decision whose predicted relative margin is below
  :attr:`CalibrationStore.margin_threshold` is a coin flip; if exactly
  one family has been observed, the store deterministically picks the
  *other* one once ("explore"), so the next resolution has both
  measurements.  No RNG — exploration is a function of store state,
  keeping planning reproducible (replint's nondeterminism rule holds).

The store also carries the fitted :class:`~repro.sim.costmodel.ChooserCostModel`
(see :func:`~repro.sim.costmodel.fit_chooser_model`): observations
accumulate as fit samples, and :meth:`CalibrationStore.refit` turns them
into CPU constants the estimator prices into every later prediction.

Everything here is planning-time only: the store never touches the
simulated clock, and with ``EvalOptions(calibration=False)`` no store is
created at all (the session's ``calibration`` slot is ``None``).
"""

from __future__ import annotations

from repro.algebra.steps import CompiledStep
from repro.sim.costmodel import ChooserCostModel, ChooserSample, fit_chooser_model
from repro.xpath.estimate import IOCostPrediction

#: the plan families the chooser decides between
PLAN_FAMILIES = ("xscan", "xschedule")

#: shape key: document name plus the per-step (axis, node-test) pairs —
#: predicates don't influence the I/O choice, so they are not part of it
ShapeKey = tuple


def shape_key(doc: str, steps: list[CompiledStep]) -> ShapeKey:
    """Hashable identity of one (document, location-path shape) pair."""
    return (doc, tuple((step.axis, step.test) for step in steps))


class CalibrationStore:
    """Observed (query-shape, plan) timings plus the fitted cost model."""

    __slots__ = (
        "margin_threshold",
        "model",
        "observations",
        "_observed",
        "_samples",
    )

    def __init__(self, margin_threshold: float = 0.25) -> None:
        #: below this predicted relative margin a decision counts as a
        #: coin flip and is worth one exploration run
        self.margin_threshold = margin_threshold
        #: fitted chooser CPU constants consulted by every prediction;
        #: ``None`` until :meth:`refit` (or an assignment) provides one
        self.model: ChooserCostModel | None = None
        #: total timings deposited (all shapes, all plans)
        self.observations = 0
        #: shape -> plan -> (runs, mean simulated total)
        self._observed: dict[ShapeKey, dict[str, tuple[int, float]]] = {}
        #: fit samples accumulated alongside the means
        self._samples: list[ChooserSample] = []

    # ---------------------------------------------------------- recording

    def observe(
        self,
        doc: str,
        steps: list[CompiledStep],
        plan: str,
        total_time: float,
        prediction: IOCostPrediction | None = None,
    ) -> None:
        """Deposit one run's simulated total for ``(doc, shape, plan)``.

        ``prediction`` (the pure-I/O prediction for the shape) turns the
        observation into a :class:`~repro.sim.costmodel.ChooserSample`
        for :meth:`refit`; without one the timing still feeds the
        measured-argmin and exploration decisions.
        """
        if plan not in PLAN_FAMILIES:
            return
        key = shape_key(doc, steps)
        by_plan = self._observed.setdefault(key, {})
        runs, mean = by_plan.get(plan, (0, 0.0))
        runs += 1
        mean += (total_time - mean) / runs
        by_plan[plan] = (runs, mean)
        self.observations += 1
        if prediction is not None:
            self._samples.append(
                ChooserSample(
                    plan=plan,
                    work_nodes=prediction.work_nodes(plan),
                    io_cost=prediction.predicted_io(plan),
                    observed_total=total_time,
                )
            )

    def observed_mean(
        self, doc: str, steps: list[CompiledStep], plan: str
    ) -> float | None:
        """Mean observed simulated total for one (shape, plan), if any."""
        by_plan = self._observed.get(shape_key(doc, steps))
        if by_plan is None:
            return None
        entry = by_plan.get(plan)
        return None if entry is None else entry[1]

    # ------------------------------------------------------------- advice

    def advise(
        self,
        doc: str,
        steps: list[CompiledStep],
        prediction: IOCostPrediction | None,
    ) -> tuple[str, str] | None:
        """Override the estimator's pick, or ``None`` to trust it.

        Returns ``(plan, source)`` with ``source`` one of ``"measured"``
        (both families observed — argmin of the observed means, ties to
        XSchedule like the estimator) or ``"explore"`` (low-confidence
        prediction with exactly one family observed — run the other).
        """
        by_plan = self._observed.get(shape_key(doc, steps))
        if not by_plan:
            return None
        scan = by_plan.get("xscan")
        sched = by_plan.get("xschedule")
        if scan is not None and sched is not None:
            return ("xscan" if scan[1] < sched[1] else "xschedule", "measured")
        if prediction is None or prediction.relative_margin >= self.margin_threshold:
            return None
        return ("xscan" if scan is None else "xschedule", "explore")

    # -------------------------------------------------------- calibration

    @property
    def samples(self) -> list[ChooserSample]:
        """The fit samples accumulated so far (a copy)."""
        return list(self._samples)

    def refit(self) -> ChooserCostModel | None:
        """Fit chooser CPU constants from the accumulated samples.

        Installs and returns the fitted model; with no samples the model
        is left untouched and ``None`` is returned.
        """
        if not self._samples:
            return None
        self.model = fit_chooser_model(self._samples)
        return self.model

    def clear(self) -> None:
        """Drop every observation and sample (the model is kept)."""
        self._observed.clear()
        self._samples.clear()
        self.observations = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CalibrationStore(shapes={len(self._observed)}, "
            f"observations={self.observations}, "
            f"model={'fitted' if self.model is not None else 'none'})"
        )
