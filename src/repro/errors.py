"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (bad NodeID, full page, ...)."""


class BufferError_(StorageError):
    """The buffer manager could not satisfy a fix request.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`BufferError`.
    """


class XmlSyntaxError(ReproError):
    """The XML parser rejected its input document."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class XPathSyntaxError(ReproError):
    """The XPath parser rejected the query string."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class UnsupportedQueryError(ReproError):
    """The query parses but uses features outside the supported subset."""


class PlanError(ReproError):
    """A physical plan was mis-assembled or used out of protocol."""
