"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class StorageError(ReproError):
    """A storage-layer invariant was violated (bad NodeID, full page, ...)."""


class StoreCorruptError(StorageError):
    """Stored data failed a structural validity check.

    Raised wherever the engine reads back records — navigation, export,
    persistence, the importer's finalisation — and finds a shape the
    writer can never have produced (a border where a core record must
    sit, a missing child list, a dangling companion).  These checks are
    *data* validation, not programming asserts: they must survive
    ``python -O``, which is why the storage layer raises this type
    instead of using ``assert`` (enforced by replint's runtime-assert
    rule; see ``docs/static-analysis.md``).
    """


class WalCorruptError(StoreCorruptError):
    """The write-ahead log failed a structural validity check.

    Raised for damage *before* the log's tail — a bad magic number, an
    unsupported version, an LSN that jumps backwards.  A torn or
    checksum-failing **tail** is not an error: recovery stops cleanly at
    the last valid entry instead (the expected shape of a crash).
    """


class SimulatedCrashError(ReproError):
    """A deterministic crash point fired (kill-and-recover testing).

    Raised by :class:`repro.sim.faults.CrashInjector` at the Nth
    occurrence of a durability step (WAL append, checkpoint page write,
    rename, ...).  Models the process dying at that instant: whatever
    bytes reached the OS before the raise are on disk — possibly a torn
    write — and everything in memory is lost.  Test harnesses catch this
    error, then call :func:`repro.storage.wal.recover_store` on the
    files left behind.
    """

    def __init__(self, step: str, occurrence: int) -> None:
        super().__init__(
            f"simulated crash at durability step {step!r} (occurrence {occurrence})"
        )
        self.step = step
        self.occurrence = occurrence


class BufferError_(StorageError):
    """The buffer manager could not satisfy a fix request.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`BufferError`.
    """


class XmlSyntaxError(ReproError):
    """The XML parser rejected its input document."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class XPathSyntaxError(ReproError):
    """The XPath parser rejected the query string."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class UnsupportedQueryError(ReproError):
    """The query parses but uses features outside the supported subset."""


class PlanError(ReproError):
    """A physical plan was mis-assembled or used out of protocol."""


class IOError_(ReproError):
    """The simulated I/O stack could not complete a request.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IOError` (an alias of :class:`OSError`).
    """


class PageReadError(IOError_):
    """A page read kept failing past the retry cap."""

    def __init__(self, page: int, attempts: int, sim_time: float) -> None:
        super().__init__(
            f"read of page {page} failed after {attempts} attempts "
            f"(at simulated t={sim_time:.6f}s)"
        )
        self.page = page
        self.attempts = attempts
        self.sim_time = sim_time


class RequestLostError(IOError_):
    """A request's completion never arrived despite resubmissions."""

    def __init__(self, page: int, attempts: int, sim_time: float) -> None:
        super().__init__(
            f"request for page {page} lost {attempts} times without an answer "
            f"(at simulated t={sim_time:.6f}s)"
        )
        self.page = page
        self.attempts = attempts
        self.sim_time = sim_time


class DiskProgressError(IOError_):
    """The disk simulation could not advance (an internal invariant broke)."""

    def __init__(self, message: str, pending_pages: tuple[int, ...], sim_time: float) -> None:
        super().__init__(
            f"{message} (pending pages {list(pending_pages)}, "
            f"at simulated t={sim_time:.6f}s)"
        )
        self.pending_pages = pending_pages
        self.sim_time = sim_time


class BudgetExceededError(ReproError):
    """An execution budget limit was reached mid-query.

    ``partial`` tells drain loops whether the budget asked for a partial
    result (``on_exceeded="partial"``) instead of an error.
    """

    def __init__(
        self, dimension: str, limit: float, spent: float, partial: bool
    ) -> None:
        super().__init__(
            f"execution budget exceeded: {dimension} limit {limit:g} "
            f"reached (spent {spent:g})"
        )
        self.dimension = dimension
        self.limit = limit
        self.spent = spent
        self.partial = partial
