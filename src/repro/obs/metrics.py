"""Derived metrics: rollups over a trace, reconcilable against Stats.

A :class:`TraceSummary` is the queryable face of a trace — the mirrored
counters, per-operator rollups, the cluster-access heatmap and the retry
histogram — detached from the tracer that produced it (summaries are
plain data, safe to keep on :class:`~repro.engine.Result`).

The reconciliation contract: the tracer mirrors every ``Stats`` counter
increment independently, so for any execution slice
``summary.reconcile(result.stats)`` must return an empty dict.  A
non-empty return means an instrumentation site is missing or double
counted — this is the drift detector the test suite leans on whenever a
new counter is added to :class:`~repro.sim.stats.Stats`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.stats import Stats


@dataclass
class TraceSummary:
    """Rollups derived from one tracer (optionally since a mark).

    ``counters`` is the per-slice delta (matching the result's ``Stats``
    attribution); the operator/cluster/retry rollups are cumulative over
    the tracer's lifetime, like the tracer's plan-cache and batch tallies.
    """

    counters: dict[str, float] = field(default_factory=dict)
    operators: dict[str, dict[str, float]] = field(default_factory=dict)
    cluster_reads: dict[int, int] = field(default_factory=dict)
    retry_histogram: dict[int, int] = field(default_factory=dict)
    plan_cache: dict[str, int] = field(default_factory=dict)
    batches: dict[str, int] = field(default_factory=dict)
    plan_choices: dict[str, int] = field(default_factory=dict)
    events_recorded: int = 0
    events_dropped: int = 0

    def counter(self, name: str) -> float:
        """The mirrored value of one ``Stats`` counter (0 if never hit)."""
        return self.counters.get(name, 0)

    def reconcile(self, stats: "Stats") -> dict[str, tuple[float, float]]:
        """Compare the mirrored counters against a ``Stats`` bundle.

        Returns ``{field: (traced, stats)}`` for every field that
        disagrees — empty when the trace reconciles.  Driven by
        ``dataclasses.fields(Stats)``, so a counter added to ``Stats``
        without a matching tracer mirror shows up here the moment it is
        exercised.

        Integer counters must match exactly.  Float counters (only
        ``backoff_wait`` today) are compared to within float round-off:
        per-slice attribution subtracts cumulative totals on both sides,
        and ``(a + b) - a`` is not bit-equal to ``b`` for floats.
        """
        mismatches: dict[str, tuple[float, float]] = {}
        for f in fields(type(stats)):
            expected = getattr(stats, f.name)
            traced = self.counters.get(f.name, 0)
            if isinstance(expected, float):
                if not math.isclose(traced, expected, rel_tol=1e-9, abs_tol=1e-12):
                    mismatches[f.name] = (traced, expected)
            elif traced != expected:
                mismatches[f.name] = (traced, expected)
        return mismatches

    def hottest_clusters(self, n: int = 10) -> list[tuple[int, int]]:
        """The ``n`` most-serviced pages, hottest first."""
        ranked = sorted(self.cluster_reads.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {k: v for k, v in self.counters.items() if v}
        return (
            f"TraceSummary({len(nonzero)} live counters, "
            f"{len(self.operators)} operators, {self.events_recorded} events)"
        )


def format_metrics(summary: TraceSummary) -> str:
    """Render a summary as the text report behind the CLI's ``--metrics``."""
    lines: list[str] = []
    lines.append("-- trace metrics " + "-" * 43)
    live = {k: v for k, v in sorted(summary.counters.items()) if v}
    if live:
        lines.append("counters:")
        for name, value in live.items():
            shown = f"{value:.6f}".rstrip("0").rstrip(".") if isinstance(value, float) else str(value)
            lines.append(f"  {name:28s} {shown}")
    if summary.operators:
        lines.append("operators (opens/calls/out, busy simulated-s):")
        for name, roll in sorted(summary.operators.items()):
            lines.append(
                f"  {name:28s} {int(roll['opens']):4d} / {int(roll['calls']):7d} "
                f"/ {int(roll['out']):7d}   {roll['busy']:.4f}s"
            )
    hottest = summary.hottest_clusters()
    if hottest:
        heat = "  ".join(f"{page}:{count}" for page, count in hottest)
        lines.append(f"hottest clusters (page:reads): {heat}")
    if summary.retry_histogram:
        hist = "  ".join(
            f"{attempt}:{count}"
            for attempt, count in sorted(summary.retry_histogram.items())
        )
        lines.append(f"retry histogram (attempt:count): {hist}")
    if any(summary.plan_cache.values()):
        lines.append(
            f"plan cache: {summary.plan_cache.get('hits', 0)} hits, "
            f"{summary.plan_cache.get('misses', 0)} misses"
        )
    if summary.batches.get("batches"):
        lines.append(
            f"batches: {summary.batches['batches']} "
            f"(scan-shared {summary.batches['scan_shared']}, "
            f"interleaved {summary.batches['interleaved']})"
        )
    lines.append(
        f"events: {summary.events_recorded} recorded, "
        f"{summary.events_dropped} dropped from ring"
    )
    return "\n".join(lines)
