"""The Tracer: a bounded event ring plus an online metrics registry.

One :class:`Tracer` instance is installed on an
:class:`~repro.exec.environment.ExecutionEnvironment` and shared by every
context built from it (cold contexts, warm sessions, batch views alike),
so a whole workload lands in one trace.  Instrumentation sites throughout
the stack call :meth:`Tracer.count` (a counter mirror of a ``Stats``
increment) and :meth:`Tracer.event` (a structured record in the ring).

Two invariants the rest of the system relies on:

* the tracer never charges the simulated clock — timestamps are *read*
  from it, so traced runs are bit-identical in simulated time;
* every ``Stats`` counter increment in the engine has a matching
  ``count`` call with the same name and amount, which is what makes
  :meth:`repro.obs.metrics.TraceSummary.reconcile` exact.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.obs.metrics import TraceSummary


class TraceEvent:
    """One structured trace record.

    ``ts`` is the simulated time of the event; ``dur`` (when not None)
    makes it a *span* (``ts`` is then the span's start).  ``cat`` groups
    events into tracks: ``io``, ``disk``, ``buffer``, ``op``,
    ``session``, ``degradation``.
    """

    __slots__ = ("ts", "cat", "name", "page", "dur", "args")

    def __init__(
        self,
        ts: float,
        cat: str,
        name: str,
        page: int | None = None,
        dur: float | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.ts = ts
        self.cat = cat
        self.name = name
        self.page = page
        self.dur = dur
        self.args = args

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {"ts": self.ts, "cat": self.cat, "name": self.name}
        if self.page is not None:
            record["page"] = self.page
        if self.dur is not None:
            record["dur"] = self.dur
        if self.args:
            record["args"] = self.args
        return record

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f", page={self.page}" if self.page is not None else ""
        return f"TraceEvent({self.ts:.6f}, {self.cat}/{self.name}{extra})"


class Tracer:
    """Record structured execution events and derive rollups.

    The ring buffer holds the most recent ``capacity`` events; metric
    counters, operator rollups, the cluster heatmap and the retry
    histogram are maintained *online* at record time, so they stay exact
    even after the ring has wrapped (``dropped`` tells you by how much).
    """

    def __init__(self, capacity: int = 65536, shadow: bool = False) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: True for a sanitizer-installed shadow tracer
        #: (:mod:`repro.analysis.sanitize`): it exists only to feed the
        #: shadow accounting, so reporting sites skip it and
        #: ``Result.trace_summary`` stays ``None`` exactly as if no
        #: tracer were attached
        self.shadow = shadow
        self.events: deque[TraceEvent] = deque(maxlen=capacity)
        #: total events recorded (including any the ring has dropped)
        self.events_recorded = 0
        #: mirror of every Stats counter increment, by field name
        self.counters: dict[str, float] = {}
        #: per-operator rollups: class name -> opens/calls/out/busy
        self.operators: dict[str, dict[str, float]] = {}
        #: cluster-access heatmap: page -> physical service count
        self.cluster_reads: dict[int, int] = {}
        #: retry histogram: attempt number -> occurrences
        self.retry_histogram: dict[int, int] = {}
        #: plan-cache behaviour across the sessions sharing this tracer
        self.plan_cache = {"hits": 0, "misses": 0}
        #: batch routing decisions
        self.batches = {"batches": 0, "scan_shared": 0, "interleaved": 0}
        #: AUTO plan-choice resolutions by decision source
        self.plan_choices = {"estimator": 0, "measured": 0, "explore": 0}
        #: largest simulated timestamp seen (for events outside any clock)
        self.last_ts = 0.0

    @property
    def dropped(self) -> int:
        """Events recorded but no longer in the ring."""
        return self.events_recorded - len(self.events)

    # ------------------------------------------------------------ recording

    def count(self, name: str, amount: float = 1) -> None:
        """Mirror one ``Stats`` counter increment (``stats.name += amount``)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + amount

    def event(
        self,
        ts: float,
        cat: str,
        name: str,
        page: int | None = None,
        dur: float | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        """Append one structured event to the ring."""
        self.events.append(TraceEvent(ts, cat, name, page=page, dur=dur, args=args))
        self.events_recorded += 1
        if ts > self.last_ts:
            self.last_ts = ts

    def io_retry(self, attempt: int) -> None:
        """One recovery retry, by the attempt number it followed."""
        hist = self.retry_histogram
        hist[attempt] = hist.get(attempt, 0) + 1

    def cluster_read(self, page: int) -> None:
        """One physical service of ``page`` (the heatmap's unit)."""
        heat = self.cluster_reads
        heat[page] = heat.get(page, 0) + 1

    def op_call(self, name: str, produced: bool) -> None:
        """One ``next()`` crossing of operator class ``name``."""
        ops = self.operators.get(name)
        if ops is None:
            ops = self.operators[name] = {
                "opens": 0,
                "calls": 0,
                "out": 0,
                "busy": 0.0,
            }
        ops["calls"] += 1
        if produced:
            ops["out"] += 1

    def op_span(self, name: str, t0: float, t1: float, out: int) -> None:
        """One open→close lifetime of an operator instance."""
        ops = self.operators.get(name)
        if ops is None:
            ops = self.operators[name] = {
                "opens": 0,
                "calls": 0,
                "out": 0,
                "busy": 0.0,
            }
        ops["opens"] += 1
        ops["busy"] += t1 - t0
        self.event(t0, "op", name, dur=t1 - t0, args={"out": out})

    def plan_cache_event(self, hit: bool, query: str, doc: str, plan: str) -> None:
        """A session's plan-cache lookup (compilation is off the sim clock)."""
        self.plan_cache["hits" if hit else "misses"] += 1
        self.event(
            self.last_ts,
            "session",
            "plan-cache-hit" if hit else "plan-cache-miss",
            args={"query": query, "doc": doc, "plan": plan},
        )

    def plan_choice_event(
        self,
        chosen: str,
        source: str,
        sequential_cost: float | None = None,
        random_cost: float | None = None,
        margin: float | None = None,
    ) -> None:
        """One AUTO resolution (planning is off the sim clock, like the
        plan cache): the chosen family, why it won (``estimator`` /
        ``measured`` / ``explore``) and the predicted costs behind it."""
        self.plan_choices[source] = self.plan_choices.get(source, 0) + 1
        self.event(
            self.last_ts,
            "session",
            "plan-choice",
            args={
                "chosen": chosen,
                "source": source,
                "sequential_cost": sequential_cost,
                "random_cost": random_cost,
                "margin": margin,
            },
        )

    def rewrite_event(
        self,
        query: str,
        refuted: bool,
        expanded: int,
        cardinality: float | None = None,
    ) -> None:
        """One path-summary rewrite decision (planning is off the sim
        clock): whether the path was refuted outright, how many
        ``descendant`` steps were expanded into child chains, and the
        exact cardinality when the summary proved one."""
        self.event(
            self.last_ts,
            "session",
            "path-refuted" if refuted else "path-rewrite",
            args={
                "query": query,
                "refuted": refuted,
                "expanded": expanded,
                "cardinality": cardinality,
            },
        )

    def batch_event(
        self, ts: float, queries: int, scan_shared: int, interleaved: int
    ) -> None:
        """One ``run_batch`` routing decision."""
        self.batches["batches"] += 1
        self.batches["scan_shared"] += scan_shared
        self.batches["interleaved"] += interleaved
        self.event(
            ts,
            "session",
            "batch",
            args={
                "queries": queries,
                "scan_shared": scan_shared,
                "interleaved": interleaved,
            },
        )

    # ----------------------------------------------------------- summaries

    def mark(self) -> dict[str, float]:
        """Counter snapshot; pass to :meth:`summary` for a per-run delta.

        The same discipline as ``Stats.snapshot``/``diff``: warm sessions
        and batches mark before a run and summarise since the mark, so
        the per-run summary reconciles with the per-run stats delta.
        """
        return dict(self.counters)

    def summary(self, since: dict[str, float] | None = None) -> TraceSummary:
        """Derive the current rollups (counters diffed against ``since``)."""
        if since is None:
            counters = dict(self.counters)
        else:
            counters = {
                name: value - since.get(name, 0)
                for name, value in self.counters.items()
            }
        return TraceSummary(
            counters=counters,
            operators={name: dict(roll) for name, roll in self.operators.items()},
            cluster_reads=dict(self.cluster_reads),
            retry_histogram=dict(self.retry_histogram),
            plan_cache=dict(self.plan_cache),
            batches=dict(self.batches),
            plan_choices=dict(self.plan_choices),
            events_recorded=self.events_recorded,
            events_dropped=self.dropped,
        )

    # -------------------------------------------------------------- export

    def export_jsonl(self, path: str) -> int:
        """Write the ring as JSON-lines; returns the number of events."""
        import json

        with open(path, "w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event.as_dict(), sort_keys=True))
                handle.write("\n")
        return len(self.events)

    def export_chrome(self, path: str) -> int:
        """Write a Chrome-trace-viewer file (about:tracing / Perfetto).

        Events with a duration become complete (``"ph": "X"``) spans,
        the rest instants; each category gets its own named thread row.
        Timestamps are converted from simulated seconds to microseconds.
        """
        import json

        tids: dict[str, int] = {}
        trace_events: list[dict[str, Any]] = []
        for event in self.events:
            tid = tids.get(event.cat)
            if tid is None:
                tid = tids[event.cat] = len(tids) + 1
                trace_events.append(
                    {
                        "ph": "M",
                        "name": "thread_name",
                        "pid": 1,
                        "tid": tid,
                        "args": {"name": event.cat},
                    }
                )
            record: dict[str, Any] = {
                "name": event.name,
                "cat": event.cat,
                "pid": 1,
                "tid": tid,
                "ts": round(event.ts * 1e6, 3),
            }
            args = dict(event.args) if event.args else {}
            if event.page is not None:
                args["page"] = event.page
            if args:
                record["args"] = args
            if event.dur is not None:
                record["ph"] = "X"
                record["dur"] = round(event.dur * 1e6, 3)
            else:
                record["ph"] = "i"
                record["s"] = "t"
            trace_events.append(record)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"traceEvents": trace_events, "displayTimeUnit": "ms"}, handle)
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Tracer({self.events_recorded} events, {self.dropped} dropped, "
            f"{len(self.counters)} counters)"
        )
