"""Observability: execution tracing and derived metrics.

The tracing subsystem records *structured events* from every layer of
the stack — I/O request lifecycle, buffer behaviour, per-operator spans,
session/batch decisions — stamped with the **simulated** clock, and
derives per-operator / per-cluster rollups that reconcile exactly with
:class:`~repro.sim.stats.Stats`.

Design constraints (see ``docs/observability.md``):

* **zero overhead when off** — every instrumentation site is a single
  ``if tracer is not None`` test, the same discipline as budget
  enforcement in ``EvalContext.charge_call``;
* **non-perturbing when on** — the tracer never touches the simulated
  clock, so traced runs report bit-identical simulated timings;
* **bounded memory** — events land in a ring buffer; the metric
  counters are maintained online and survive ring overflow.
"""

from repro.obs.metrics import TraceSummary, format_metrics
from repro.obs.tracer import TraceEvent, Tracer

__all__ = ["TraceEvent", "TraceSummary", "Tracer", "format_metrics"]
