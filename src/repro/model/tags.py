"""Tag dictionary: interning of element/attribute names to small integers.

Node tests in the paper are subsets of the tag alphabet Sigma; representing
tags as dense integers makes a node test a set-of-int membership check and
keeps the array-backed tree compact.

Two pseudo-tags are pre-interned so that *every* node carries a tag id:
``#document`` for the document root and ``#text`` for text nodes.
"""

from __future__ import annotations

import sys

DOCUMENT_TAG_NAME = "#document"
TEXT_TAG_NAME = "#text"

#: Tag id of the document root pseudo-tag (always 0).
DOCUMENT_TAG = 0
#: Tag id of the text-node pseudo-tag (always 1).
TEXT_TAG = 1


class TagDictionary:
    """Bidirectional mapping between tag names and dense integer ids."""

    def __init__(self) -> None:
        self._by_name: dict[str, int] = {}
        self._by_id: list[str] = []
        # Reserved pseudo-tags occupy ids 0 and 1.  The intern() calls
        # are load-bearing (they allocate the ids), so they must not sit
        # inside an assert: python -O would strip them and every tag id
        # in the process would shift by two.
        if self.intern(DOCUMENT_TAG_NAME) != DOCUMENT_TAG:
            raise RuntimeError("document pseudo-tag did not receive id 0")
        if self.intern(TEXT_TAG_NAME) != TEXT_TAG:
            raise RuntimeError("text pseudo-tag did not receive id 1")

    def intern(self, name: str) -> int:
        """Return the id for ``name``, allocating a new one if needed."""
        tag = self._by_name.get(name)
        if tag is None:
            # sys.intern makes repeated dictionary probes on the parse
            # path pointer comparisons and dedups the many copies of the
            # same tag string an XML parse produces
            name = sys.intern(name)
            tag = len(self._by_id)
            self._by_name[name] = tag
            self._by_id.append(name)
        return tag

    def lookup(self, name: str) -> int | None:
        """Return the id for ``name`` or None if it was never interned."""
        return self._by_name.get(name)

    def name_of(self, tag: int) -> str:
        """Return the name for a tag id."""
        return self._by_id[tag]

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> list[str]:
        """All interned names, in id order (including pseudo-tags)."""
        return list(self._by_id)
