"""Logical document model: labeled, ordered trees (paper Sec. 3.1).

The paper models XML documents as labeled ordered trees over a tag
alphabet.  We additionally keep text and attribute nodes (the paper omits
them "for brevity" but XMark query Q15 ends in ``text()``, so a faithful
reproduction needs them).
"""

from repro.model.tags import DOCUMENT_TAG, TEXT_TAG, TagDictionary
from repro.model.tree import Kind, LogicalTree
from repro.model.builder import TreeBuilder, tree_from_nested

__all__ = [
    "TagDictionary",
    "DOCUMENT_TAG",
    "TEXT_TAG",
    "Kind",
    "LogicalTree",
    "TreeBuilder",
    "tree_from_nested",
]
