"""Event-driven construction of :class:`~repro.model.tree.LogicalTree`.

The builder exposes the classic SAX-shaped interface
(``start_element`` / ``attribute`` / ``text`` / ``end_element``) consumed
by both the XML parser and the XMark generator.  ``tree_from_nested``
is a compact literal syntax used heavily by the tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ReproError
from repro.model.tags import TEXT_TAG, TagDictionary
from repro.model.tree import NIL, Kind, LogicalTree


class TreeBuilder:
    """Incrementally build a document tree.

    Elements must be properly nested; attributes may only be added to the
    currently open element before any of its content.
    """

    def __init__(self, tags: TagDictionary | None = None) -> None:
        self.tags = tags if tags is not None else TagDictionary()
        self.tree = LogicalTree(self.tags)
        self._open: list[int] = [self.tree.root]
        self._last_child: dict[int, int] = {}
        self._content_started: set[int] = set()
        self._finished = False

    # ------------------------------------------------------------- events

    def start_element(self, name: str, attributes: Sequence[tuple[str, str]] = ()) -> int:
        """Open an element; returns its node id."""
        self._check_open()
        node = self._attach(Kind.ELEMENT, self.tags.intern(name))
        self._open.append(node)
        for attr_name, attr_value in attributes:
            self.attribute(attr_name, attr_value)
        return node

    def attribute(self, name: str, value: str) -> int:
        """Attach an attribute to the currently open element."""
        self._check_open()
        owner = self._open[-1]
        if owner == self.tree.root:
            raise ReproError("attributes are not allowed on the document root")
        if owner in self._content_started:
            raise ReproError(
                f"attribute {name!r} added after content of its element started"
            )
        node = self._attach(Kind.ATTRIBUTE, self.tags.intern(name), mark_content=False)
        self.tree.values[node] = value
        return node

    def text(self, content: str) -> int:
        """Attach a text node to the currently open element."""
        self._check_open()
        node = self._attach(Kind.TEXT, TEXT_TAG)
        self.tree.values[node] = content
        return node

    def end_element(self, name: str | None = None) -> None:
        """Close the current element, optionally checking its name."""
        self._check_open()
        if len(self._open) <= 1:
            raise ReproError("end_element with no open element")
        node = self._open.pop()
        if name is not None and self.tree.tag_name(node) != name:
            raise ReproError(
                f"mismatched end tag: expected {self.tree.tag_name(node)!r}, got {name!r}"
            )

    def finish(self) -> LogicalTree:
        """Close the document and return the finished tree."""
        self._check_open()
        if len(self._open) != 1:
            open_names = [self.tree.tag_name(n) for n in self._open[1:]]
            raise ReproError(f"unclosed elements at end of document: {open_names}")
        self._finished = True
        return self.tree

    # ----------------------------------------------------------- internals

    def _check_open(self) -> None:
        if self._finished:
            raise ReproError("builder already finished")

    def _attach(self, kind: Kind, tag: int, mark_content: bool = True) -> int:
        parent = self._open[-1]
        node = self.tree._append(kind, tag, parent)
        prev = self._last_child.get(parent, NIL)
        if prev == NIL:
            self.tree.first_child[parent] = node
        else:
            self.tree.next_sibling[prev] = node
        self._last_child[parent] = node
        if mark_content:
            self._content_started.add(parent)
        return node


def tree_from_nested(spec: object, tags: TagDictionary | None = None) -> LogicalTree:
    """Build a tree from a nested-literal spec (testing convenience).

    The spec grammar::

        element  := (name,)                         # empty element
                  | (name, [child, ...])
                  | (name, {attr: value}, [child, ...])
        child    := element | "text string"

    Example::

        tree_from_nested(("a", [("b", ["hi"]), "tail", ("c", [])]))
    """
    builder = TreeBuilder(tags)

    def emit(item: object) -> None:
        if isinstance(item, str):
            builder.text(item)
            return
        if not isinstance(item, tuple):
            raise ReproError(f"bad nested-tree spec item: {item!r}")
        if len(item) == 1:
            name, attrs, children = item[0], {}, []
        elif len(item) == 2:
            name, attrs, children = item[0], {}, item[1]
        elif len(item) == 3:
            name, attrs, children = item
        else:
            raise ReproError(f"bad nested-tree spec item: {item!r}")
        builder.start_element(name, sorted(attrs.items()))
        for child in children:
            emit(child)
        builder.end_element()

    emit(spec)
    return builder.finish()
