"""Array-backed labeled ordered tree.

A :class:`LogicalTree` stores one document as five parallel arrays
(kind, tag, parent, first_child, next_sibling) plus a sparse value table
for text and attribute nodes.  Node 0 is always the document root.

This representation is compact enough to hold XMark documents with
hundreds of thousands of nodes in pure Python, and it is the *input* to
the storage importer — the physical store re-encodes it into clustered
pages with border nodes.
"""

from __future__ import annotations

import enum
from array import array
from typing import Iterator

from repro.model.tags import DOCUMENT_TAG, TEXT_TAG, TagDictionary

#: Sentinel for "no node" in the link arrays.
NIL = -1


class Kind(enum.IntEnum):
    """Node kinds of the logical model."""

    DOCUMENT = 0
    ELEMENT = 1
    TEXT = 2
    ATTRIBUTE = 3


class LogicalTree:
    """One document as parallel arrays; built via :class:`TreeBuilder`.

    Attribute nodes are ordinary children that precede all element/text
    children of their owner, mirroring how XPath exposes the attribute
    axis separately from the child axis: the child axis iterators skip
    them, the attribute axis iterator selects exactly them.
    """

    def __init__(self, tags: TagDictionary) -> None:
        self.tags = tags
        self.kind = array("b")
        self.tag = array("i")
        self.parent = array("i")
        self.first_child = array("i")
        self.next_sibling = array("i")
        self.values: dict[int, str] = {}
        # the document root
        self._append(Kind.DOCUMENT, DOCUMENT_TAG, NIL)

    # ------------------------------------------------------------- building

    def _append(self, kind: Kind, tag: int, parent: int) -> int:
        node = len(self.kind)
        self.kind.append(int(kind))
        self.tag.append(tag)
        self.parent.append(parent)
        self.first_child.append(NIL)
        self.next_sibling.append(NIL)
        return node

    # ------------------------------------------------------------ accessors

    @property
    def root(self) -> int:
        """The document root node (always 0)."""
        return 0

    def __len__(self) -> int:
        return len(self.kind)

    def kind_of(self, node: int) -> Kind:
        return Kind(self.kind[node])

    def tag_of(self, node: int) -> int:
        return self.tag[node]

    def tag_name(self, node: int) -> str:
        return self.tags.name_of(self.tag[node])

    def value_of(self, node: int) -> str | None:
        return self.values.get(node)

    def parent_of(self, node: int) -> int:
        """Parent node, or NIL for the root."""
        return self.parent[node]

    def children(self, node: int) -> Iterator[int]:
        """All children in order, including attribute nodes."""
        child = self.first_child[node]
        while child != NIL:
            yield child
            child = self.next_sibling[child]

    def element_children(self, node: int) -> Iterator[int]:
        """Children on the XPath child axis (elements and text nodes)."""
        for child in self.children(node):
            if self.kind[child] != Kind.ATTRIBUTE:
                yield child

    def attributes(self, node: int) -> Iterator[int]:
        """Attribute nodes of ``node``."""
        for child in self.children(node):
            if self.kind[child] == Kind.ATTRIBUTE:
                yield child

    def descendants(self, node: int, include_self: bool = False) -> Iterator[int]:
        """Preorder traversal below ``node`` (child axis only, no attrs)."""
        if include_self:
            yield node
        stack = [c for c in self.element_children(node)]
        stack.reverse()
        while stack:
            n = stack.pop()
            yield n
            tail = [c for c in self.element_children(n)]
            stack.extend(reversed(tail))

    def subtree_size(self, node: int) -> int:
        """Number of nodes in the subtree rooted at ``node`` (all kinds)."""
        count = 1
        for child in self.children(node):
            count += self.subtree_size(child)
        return count

    def depth_of(self, node: int) -> int:
        """Distance from the root (root has depth 0)."""
        depth = 0
        while self.parent[node] != NIL:
            node = self.parent[node]
            depth += 1
        return depth

    # ---------------------------------------------------------- diagnostics

    def count_tag(self, name: str) -> int:
        """Number of element nodes with tag ``name`` (testing helper)."""
        tag = self.tags.lookup(name)
        if tag is None:
            return 0
        kinds, tags = self.kind, self.tag
        element = int(Kind.ELEMENT)
        return sum(1 for i in range(len(kinds)) if kinds[i] == element and tags[i] == tag)

    def validate(self) -> None:
        """Check structural invariants; raises AssertionError on corruption."""
        n = len(self)
        assert self.kind[0] == Kind.DOCUMENT
        assert self.parent[0] == NIL
        seen = [False] * n
        stack = [0]
        while stack:
            node = stack.pop()
            assert not seen[node], f"node {node} reachable twice"
            seen[node] = True
            for child in self.children(node):
                assert self.parent[child] == node, f"bad parent link at {child}"
                stack.append(child)
        assert all(seen), "unreachable nodes present"
        for node in range(n):
            if self.kind[node] == Kind.TEXT:
                assert self.tag[node] == TEXT_TAG
                assert self.first_child[node] == NIL, "text node with children"
