"""XPath axes supported by the engine.

The paper's queries use only ``child`` and ``descendant-or-self``; we
support the full set of axes that our storage layout can navigate without
auxiliary indexes.  ``following``/``preceding`` are not implemented (they
are expressible as unions over these axes, and the paper never needs
them).
"""

from __future__ import annotations

import enum


class Axis(enum.Enum):
    """Navigational axes."""

    SELF = "self"
    CHILD = "child"
    DESCENDANT = "descendant"
    DESCENDANT_OR_SELF = "descendant-or-self"
    ATTRIBUTE = "attribute"
    PARENT = "parent"
    ANCESTOR = "ancestor"
    ANCESTOR_OR_SELF = "ancestor-or-self"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING_SIBLING = "preceding-sibling"

    @property
    def is_downward(self) -> bool:
        """Does the axis move toward descendants (or stay put)?"""
        return self in _DOWNWARD

    @property
    def is_upward(self) -> bool:
        """Does the axis move toward ancestors?"""
        return self in (Axis.PARENT, Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF)

    @property
    def is_sibling(self) -> bool:
        return self in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING)


_DOWNWARD = frozenset(
    {
        Axis.SELF,
        Axis.CHILD,
        Axis.DESCENDANT,
        Axis.DESCENDANT_OR_SELF,
        Axis.ATTRIBUTE,
    }
)

#: Axis applied when a paused step *resumes* in the cluster it crossed
#: into.  Inter-cluster edges are parent-child edges (subtree clustering),
#: which makes this mapping exact: e.g. a ``descendant`` step that paused
#: at a border continues as ``descendant-or-self`` of the remote subtree
#: root, because the remote root is itself a descendant of the context.
RESUME_AXIS: dict[Axis, Axis] = {
    Axis.CHILD: Axis.SELF,
    Axis.DESCENDANT: Axis.DESCENDANT_OR_SELF,
    Axis.DESCENDANT_OR_SELF: Axis.DESCENDANT_OR_SELF,
    Axis.ATTRIBUTE: Axis.SELF,
    Axis.PARENT: Axis.SELF,
    Axis.ANCESTOR: Axis.ANCESTOR_OR_SELF,
    Axis.ANCESTOR_OR_SELF: Axis.ANCESTOR_OR_SELF,
    # sibling axes resume with dedicated entry logic in the nav module
    Axis.FOLLOWING_SIBLING: Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING: Axis.PRECEDING_SIBLING,
}
