"""XSchedule: asynchronous-I/O cluster scheduling (paper Sec. 5.3.4/5.4.4).

All physical access for a path is funnelled through this operator.  Its
queue Q holds unprocessed path instances keyed by the cluster of their
right end; cluster loads are issued to the asynchronous I/O subsystem as
soon as an instance enters Q, so the lower layers (and the simulated
on-disk controller) can reorder many outstanding requests.

Per the paper's ``next`` method, each call:

1. replenishes Q from the producer until at least ``k`` entries exist
   (default 100);
2. submits cluster requests for new entries;
3. returns an instance from the *current cluster* if one remains,
   otherwise blocks on the next I/O completion and switches clusters.

With ``speculative`` set (Sec. 5.4.4) the operator generates
left-incomplete path instances on the first visit of each cluster — the
same speculation as XScan — so a cluster never needs to be visited twice:
later crossings into a visited cluster are *parked* instead of enqueued,
because their continuation already sits in XAssembly's S.  (Parked
entries are re-enqueued if the plan trips into fallback mode, where S is
discarded.)
"""

from __future__ import annotations

from bisect import insort
from typing import Iterator

from repro.algebra.base import Operator
from repro.algebra.context import EvalContext
from repro.algebra.pathinstance import PathInstance
from repro.algebra.steps import CompiledStep
from repro.errors import IOError_
from repro.storage.nav import speculative_entries
from repro.storage.nodeid import NodeID, make_nodeid, page_of, slot_of
from repro.storage.pathsummary import PathPostings
from repro.storage.store import StoredDocument


class _QEntry:
    """One unprocessed path instance parked in Q (unswizzled)."""

    __slots__ = ("s_l", "n_l", "left_open", "s_r", "target", "resumed")

    def __init__(
        self,
        s_l: int,
        n_l: NodeID | None,
        left_open: bool,
        s_r: int,
        target: NodeID,
        resumed: bool,
    ) -> None:
        self.s_l = s_l
        self.n_l = n_l
        self.left_open = left_open
        self.s_r = s_r
        self.target = target
        self.resumed = resumed


class XSchedule(Operator):
    """The I/O-performing operator based on asynchronous I/O."""

    __slots__ = (
        "producer",
        "steps",
        "speculative",
        "synopsis",
        "postings",
        "k",
        "_q",
        "_qcount",
        "_seq",
        "_visited",
        "_parked",
        "_current",
        "_sidelined",
        "_dead_tries",
        "_dead_noted",
    )

    #: synchronous recovery rounds per cluster (each round is a full retry
    #: chain inside ``read_sync``) before the error is surfaced — results
    #: are never silently dropped
    MAX_DEAD_TRIES = 2

    def __init__(
        self,
        ctx: EvalContext,
        producer: Operator,
        steps: list[CompiledStep],
        speculative: bool | None = None,
        document: StoredDocument | None = None,
        postings: PathPostings | None = None,
    ) -> None:
        super().__init__(ctx)
        self.producer = producer
        self.steps = steps
        self.speculative = (
            ctx.options.speculative if speculative is None else speculative
        )
        self.synopsis = (
            document.synopsis
            if document is not None and ctx.options.synopsis
            else None
        )
        # postings refine the synopsis (transit residues live in its
        # rows), so the filter only engages when the synopsis does too
        self.postings = postings if self.synopsis is not None else None
        self.k = ctx.options.k_min_queue
        self._q: dict[int, list[tuple[int, int, _QEntry]]] = {}
        self._qcount = 0
        self._seq = 0
        self._visited: set[int] = set()
        self._parked: list[_QEntry] = []
        self._current: int | None = None
        #: clusters deprioritised after an SLO violation or I/O error;
        #: they are drained last, so one sick region cannot stall the rest
        self._sidelined: set[int] = set()
        self._dead_tries: dict[int, int] = {}
        #: pages already reported as "dead-page" — a page can fail on the
        #: async path *and* on each synchronous recovery round, but the
        #: degradation report must carry it once
        self._dead_noted: set[int] = set()

    def open(self) -> None:
        self.producer.open()
        super().open()

    def close(self) -> None:
        super().close()
        self.producer.close()

    # ---------------------------------------------------------------- queue

    def add_from_assembly(
        self, s_l: int, n_l: NodeID | None, s_r: int, target: NodeID
    ) -> None:
        """XAssembly notification: a new inter-cluster edge to follow."""
        self._enqueue(_QEntry(s_l, n_l, False, s_r, target, resumed=True))

    def enter_fallback(self) -> None:
        """Fallback (Sec. 5.4.6): stop speculating, revive parked entries."""
        parked = self._parked
        self._parked = []
        for entry in parked:
            self._enqueue(entry)

    def _enqueue(self, entry: _QEntry) -> None:
        ctx = self.ctx
        cluster = page_of(entry.target)
        if (
            self.synopsis is not None
            and entry.resumed
            and not ctx.fallback
            and entry.s_r < len(self.steps)
            and not self.synopsis.can_extend(cluster, self.steps[entry.s_r])
        ):
            # the target cluster can neither hold a match for the resumed
            # step nor transit onward: dropping the request is lossless
            # (consulting the synopsis is planning metadata — free)
            ctx.stats.synopsis_entries_pruned += 1
            if ctx.tracer is not None:
                ctx.tracer.count("synopsis_entries_pruned")
            return
        if (
            self.postings is not None
            and entry.resumed
            and not ctx.fallback
            and entry.s_r < len(self.steps)
            and not self.postings.can_extend(self.synopsis, cluster, entry.s_r)
        ):
            # the synopsis alone could not refuse the request, but the
            # postings prove the target cluster holds no node of the
            # resumed step's path set and no transit residue onward
            ctx.stats.pathsummary_entries_pruned += 1
            if ctx.tracer is not None:
                ctx.tracer.count("pathsummary_entries_pruned")
            return
        if (
            entry.resumed
            and self.speculative
            and not ctx.fallback
            and cluster in self._visited
        ):
            # the cluster's speculative instances already cover this entry
            self._parked.append(entry)
            return
        ctx.charge_queue_op()
        insort(self._q.setdefault(cluster, []), (entry.s_r, self._seq, entry))
        self._seq += 1
        self._qcount += 1
        if not ctx.buffer.is_resident(cluster):
            ctx.iosys.request(cluster)

    # -------------------------------------------------------------- pipeline

    def _produce(self) -> Iterator[PathInstance]:
        ctx = self.ctx
        exhausted = False
        while True:
            while not exhausted and self._qcount < self.k:
                y = self.producer.next()
                if y is None:
                    exhausted = True
                    break
                assert y.page_no is not None
                self._enqueue(
                    _QEntry(
                        y.s_l,
                        y.n_l,
                        y.left_open,
                        y.s_r,
                        make_nodeid(y.page_no, y.slot),
                        resumed=False,
                    )
                )
            if self._qcount == 0:
                if exhausted:
                    return
                continue
            cluster = self._current
            if cluster is None or cluster not in self._q:
                cluster = self._pick_cluster()
            entries = self._q[cluster]
            _, _, entry = entries.pop(0)
            if not entries:
                del self._q[cluster]
            self._qcount -= 1
            ctx.charge_queue_op()

            frame = ctx.buffer.try_fix_resident(cluster)
            if frame is None:
                # evicted (or never loaded) since scheduling: pay a
                # synchronous read
                try:
                    frame = ctx.buffer.fix(cluster)
                except IOError_ as exc:
                    self._on_unreadable(cluster, entry, exc)
                    continue
            ctx.set_current_frame(frame)
            if cluster != self._current:
                ctx.stats.clusters_visited += 1
                if ctx.tracer is not None:
                    ctx.tracer.count("clusters_visited")
            self._current = cluster

            first_visit = cluster not in self._visited
            self._visited.add(cluster)
            if first_visit and self.speculative and not ctx.fallback:
                yield from self._speculate(frame.page)

            ctx.charge_instance()
            yield PathInstance(
                s_l=entry.s_l,
                n_l=entry.n_l,
                left_open=entry.left_open,
                s_r=entry.s_r,
                slot=slot_of(entry.target),
                is_border=entry.resumed,
                resumed=entry.resumed,
                page_no=cluster,
            )

    def _pick_cluster(self) -> int:
        """Next cluster to process: prefer buffered, else await I/O.

        Sidelined clusters are only chosen when nothing healthy is
        available — they still produce all their results, just last.
        """
        ctx = self.ctx
        sidelined_choice: int | None = None
        for cluster in self._q:
            if ctx.buffer.is_resident(cluster):
                if cluster not in self._sidelined:
                    return cluster
                if sidelined_choice is None:
                    sidelined_choice = cluster
        while True:
            try:
                page = ctx.iosys.get_completion()
            except IOError_ as exc:
                self._on_dead_page(exc)
                if sidelined_choice is not None:
                    return sidelined_choice
                continue
            if page is None:
                # nothing in flight (entries whose pages were resident at
                # enqueue time but have been evicted): fall back to any
                if sidelined_choice is not None:
                    return sidelined_choice
                return next(iter(self._q))
            ctx.buffer.admit_completed(page)
            self._check_slo(page)
            if page in self._q:
                if page not in self._sidelined:
                    return page
                # freshly sidelined: keep draining healthy clusters first
                if sidelined_choice is None:
                    sidelined_choice = page
            # completion for a cluster whose entries were already consumed
            # via buffer residency; keep the frame and wait on

    # ------------------------------------------------------- fault handling

    def _check_slo(self, page: int) -> None:
        """Sideline a cluster whose completion blew the latency SLO."""
        ctx = self.ctx
        slo = ctx.options.latency_slo
        if slo is None or ctx.iosys.last_latency <= slo:
            return
        ctx.stats.slo_violations += 1
        if ctx.tracer is not None:
            ctx.tracer.count("slo_violations")
        if page not in self._sidelined:
            self._sidelined.add(page)
            ctx.stats.sidelined_clusters += 1
            if ctx.tracer is not None:
                ctx.tracer.count("sidelined_clusters")
            ctx.note_degradation(
                "latency-slo",
                page=page,
                detail=(
                    f"completion latency {ctx.iosys.last_latency:.6f}s "
                    f"exceeded SLO {slo:g}s"
                ),
            )

    def _on_dead_page(self, exc: IOError_) -> None:
        """An async read exhausted its retries: degrade, don't crash.

        The cluster's Q entries stay queued; they will be retried through
        the synchronous path (with its own bounded recovery rounds) when
        the cluster is eventually drained.
        """
        ctx = self.ctx
        page = getattr(exc, "page", None)
        if page is not None and page not in self._sidelined:
            self._sidelined.add(page)
            ctx.stats.sidelined_clusters += 1
            if ctx.tracer is not None:
                ctx.tracer.count("sidelined_clusters")
        self._note_dead(page, str(exc))

    def _on_unreadable(self, cluster: int, entry: _QEntry, exc: IOError_) -> None:
        """A synchronous cluster read failed even after retries."""
        ctx = self.ctx
        tries = self._dead_tries.get(cluster, 0) + 1
        self._dead_tries[cluster] = tries
        if tries > self.MAX_DEAD_TRIES:
            # out of recovery options: surfacing the typed error beats
            # silently returning a result set with holes in it
            ctx.note_degradation(
                "data-loss",
                page=cluster,
                detail=f"cluster unreadable after {tries} recovery rounds",
            )
            raise exc
        self._note_dead(cluster, str(exc))
        self._current = None
        self._enqueue(entry)

    def _note_dead(self, page: int | None, detail: str) -> None:
        """Report a dead page exactly once, however many paths hit it.

        The same page can exhaust its async retries (``_on_dead_page``)
        and then fail again on one or more synchronous recovery rounds
        (``_on_unreadable``); without this dedup each round appended its
        own "dead-page" event to the degradation report.
        """
        ctx = self.ctx
        already = page is not None and page in self._dead_noted
        if page is not None:
            self._dead_noted.add(page)
        if not ctx.fallback:
            ctx.trip_fallback("dead-page", page=page, detail=detail)
        elif not already:
            ctx.note_degradation("dead-page", page=page, detail=detail)

    def _speculate(self, page) -> Iterator[PathInstance]:
        """Left-incomplete instances for every entry border of ``page``."""
        ctx = self.ctx
        page_no = page.page_no
        synopsis = self.synopsis
        postings = self.postings
        batched = ctx.options.batched
        for step_index, step in enumerate(self.steps):
            if synopsis is not None and not synopsis.can_contribute(page_no, step):
                # no entry of this cluster can extend this step
                ctx.stats.synopsis_entries_pruned += 1
                if ctx.tracer is not None:
                    ctx.tracer.count("synopsis_entries_pruned")
                continue
            if postings is not None and not postings.can_contribute(
                synopsis, page_no, step_index
            ):
                # the postings place this step's whole path set elsewhere
                ctx.stats.pathsummary_entries_pruned += 1
                if ctx.tracer is not None:
                    ctx.tracer.count("pathsummary_entries_pruned")
                continue
            entries = (
                page.colview().entry_slots(step.axis)
                if batched
                else speculative_entries(page, step.axis)
            )
            for border_slot in entries:
                ctx.charge_instance()
                ctx.stats.speculative_instances += 1
                if ctx.tracer is not None:
                    ctx.tracer.count("speculative_instances")
                yield PathInstance(
                    s_l=step_index,
                    n_l=make_nodeid(page_no, border_slot),
                    left_open=True,
                    s_r=step_index,
                    slot=border_slot,
                    is_border=True,
                    resumed=True,
                    page_no=page_no,
                )
