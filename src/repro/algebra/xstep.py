"""XStep: intra-cluster step evaluation (paper Sec. 5.3.2).

XStep performs all of the *cheap* navigation in cost-sensitive plans.
It extends applicable path instances by one step using intra-cluster
edges only; a border encountered during enumeration is returned as a
right-incomplete path instance instead of being crossed.  Non-applicable
instances pass through unchanged.

In fallback mode (Sec. 5.4.6) XStep behaves as a plain Unnest-Map,
crossing borders eagerly with full-tree navigation.
"""

from __future__ import annotations

from typing import Iterator

from repro.algebra.base import Operator
from repro.algebra.context import EvalContext
from repro.algebra.fullnav import full_axis
from repro.algebra.pathinstance import PathInstance
from repro.algebra.steps import CompiledStep
from repro.errors import PlanError
from repro.storage.nav import iter_axis, iter_resume


class XStep(Operator):
    """Extend path instances by step ``step_index`` without leaving the cluster.

    Two intra-cluster kernels are available, selected once at
    construction by ``EvalOptions.batched``: the scalar kernel walks nav
    generators one record at a time; the batched kernel
    (:meth:`_produce_batched`) evaluates each extension against the
    page's :class:`~repro.storage.colview.ColumnView` — whole candidate
    array first, charges replayed after — with bit-identical results,
    ``Stats`` and simulated timings.
    """

    __slots__ = ("producer", "step_index", "step", "_batched")

    def __init__(
        self,
        ctx: EvalContext,
        producer: Operator,
        step_index: int,
        step: CompiledStep,
    ) -> None:
        super().__init__(ctx)
        if step.predicates:
            raise PlanError(
                "XStep does not evaluate nested predicates "
                "(paper: instances with more than two incomplete ends are future work)"
            )
        self.producer = producer
        self.step_index = step_index
        self.step = step
        self._batched = ctx.options.batched

    def open(self) -> None:
        self.producer.open()
        super().open()

    def close(self) -> None:
        super().close()
        self.producer.close()

    # ------------------------------------------------------------- pipeline

    def _applicable(self, p: PathInstance) -> bool:
        if p.s_r != self.step_index - 1:
            return False
        # a paused (right-incomplete) instance is only applicable when the
        # I/O operator re-delivered it at its entry border (resumed)
        return not p.is_border or p.resumed

    def _produce(self) -> Iterator[PathInstance]:
        if self._batched:
            return self._produce_batched()
        return self._produce_scalar()

    def _produce_scalar(self) -> Iterator[PathInstance]:
        for p in self.producer:
            if not self._applicable(p):
                yield p
                continue
            if self.ctx.fallback:
                yield from self._extend_full(p)
            else:
                yield from self._extend_intra(p)

    def _produce_batched(self) -> Iterator[PathInstance]:
        """Batch-at-a-time pipeline over the pinned page's columnar view.

        Candidate discovery charges nothing (pure page reads, and the
        page stays pinned for the whole extension), so the full candidate
        array of each (instance, step) extension is computed eagerly from
        the :class:`~repro.storage.colview.ColumnView` and node-tested
        with one ``match_batch`` call.  The simulated charges are then
        replayed candidate-for-candidate in the flat emit loop below, in
        exactly the order :meth:`_extend_intra` fires them.  Clock values
        accumulate in locals and stats/tracer increments in integer
        deltas; both flush *before every yield* and at batch end, and the
        clock locals reload after each yield (the consumer advances the
        clock between pulls).  Charges between two consecutive yields are
        atomic with respect to the consumer in both kernels, so the
        observable timeline — results, ``Stats``, simulated time — is
        bit-identical, without the per-candidate generator traffic,
        method calls and record-object access of the scalar path.
        """
        ctx = self.ctx
        step = self.step
        axis = step.axis
        test = step.test
        match_batch = step.match_batch
        step_index = self.step_index
        prev_index = step_index - 1
        clock = ctx.clock
        stats = ctx.stats
        tracer = ctx.tracer
        cost_hop = ctx._cost_hop
        cost_test = ctx._cost_test
        cost_instance = ctx._cost_instance
        for p in self.producer:
            if p.s_r != prev_index or (p.is_border and not p.resumed):
                yield p
                continue
            if ctx.fallback:
                yield from self._extend_full(p)
                continue
            page = self._pinned_page(p)
            view = page._colview
            if view is None:
                view = page.colview()
            upfront, free_head, cands, flags = view.extension_batch(
                test, match_batch, p.slot, axis, p.resumed
            )
            kinds = view.kinds
            page_no = page.page_no
            s_l = p.s_l
            n_l = p.n_l
            left_open = p.left_open
            if tracer is not None and cands:
                tracer.event(
                    clock.now,
                    "op",
                    "xstep-batch",
                    page=page_no,
                    args={"step": step_index, "batch_size": len(cands)},
                )
            now = clock.now
            cpu = clock.cpu_time
            d_hops = d_tests = 0
            if upfront:
                now += cost_hop
                cpu += cost_hop
                d_hops = upfront
            for i, slot in enumerate(cands):
                if i >= free_head:
                    now += cost_hop
                    cpu += cost_hop
                    d_hops += 1
                if kinds[slot] < 0:
                    now += cost_instance
                    cpu += cost_instance
                    clock.now = now
                    clock.cpu_time = cpu
                    stats.intra_hops += d_hops
                    stats.node_tests += d_tests
                    stats.border_crossings_deferred += 1
                    stats.instances_created += 1
                    if tracer is not None:
                        if d_hops:
                            tracer.count("intra_hops", d_hops)
                        if d_tests:
                            tracer.count("node_tests", d_tests)
                        tracer.count("border_crossings_deferred")
                        tracer.count("instances_created")
                    d_hops = d_tests = 0
                    yield PathInstance(
                        s_l=s_l,
                        n_l=n_l,
                        left_open=left_open,
                        s_r=prev_index,
                        slot=slot,
                        is_border=True,
                        page_no=page_no,
                    )
                    now = clock.now
                    cpu = clock.cpu_time
                elif flags[i]:
                    now += cost_test
                    cpu += cost_test
                    d_tests += 1
                    now += cost_instance
                    cpu += cost_instance
                    clock.now = now
                    clock.cpu_time = cpu
                    stats.intra_hops += d_hops
                    stats.node_tests += d_tests
                    stats.instances_created += 1
                    if tracer is not None:
                        if d_hops:
                            tracer.count("intra_hops", d_hops)
                        tracer.count("node_tests", d_tests)
                        tracer.count("instances_created")
                    d_hops = d_tests = 0
                    yield PathInstance(
                        s_l=s_l,
                        n_l=n_l,
                        left_open=left_open,
                        s_r=step_index,
                        slot=slot,
                        is_border=False,
                        page_no=page_no,
                    )
                    now = clock.now
                    cpu = clock.cpu_time
                else:
                    now += cost_test
                    cpu += cost_test
                    d_tests += 1
            clock.now = now
            clock.cpu_time = cpu
            # only hop/test deltas can be pending here: instance charges
            # always flush at their yield
            if d_hops:
                stats.intra_hops += d_hops
                if tracer is not None:
                    tracer.count("intra_hops", d_hops)
            if d_tests:
                stats.node_tests += d_tests
                if tracer is not None:
                    tracer.count("node_tests", d_tests)

    def _extend_intra(self, p: PathInstance) -> Iterator[PathInstance]:
        ctx = self.ctx
        page = self._pinned_page(p)
        if p.resumed:
            nav = iter_resume(page, p.slot, self.step.axis, ctx.charge_hop)
        else:
            nav = iter_axis(page, p.slot, self.step.axis, ctx.charge_hop)
        test = self.step.match
        # the innermost loop of every navigational plan: bind everything
        # once and inline charge_test/charge_instance (same simulated
        # amounts, no method-call overhead per candidate)
        records = page.records
        page_no = page.page_no
        clock = ctx.clock
        stats = ctx.stats
        tracer = ctx.tracer
        cost_test = ctx._cost_test
        cost_instance = ctx._cost_instance
        s_l, n_l, left_open = p.s_l, p.n_l, p.left_open
        step_index = self.step_index
        for is_border, slot in nav:
            if is_border:
                stats.border_crossings_deferred += 1
                stats.instances_created += 1
                clock.now += cost_instance
                clock.cpu_time += cost_instance
                if tracer is not None:
                    tracer.count("border_crossings_deferred")
                    tracer.count("instances_created")
                yield PathInstance(
                    s_l=s_l,
                    n_l=n_l,
                    left_open=left_open,
                    s_r=step_index - 1,
                    slot=slot,
                    is_border=True,
                    page_no=page_no,
                )
            else:
                record = records[slot]
                clock.now += cost_test
                clock.cpu_time += cost_test
                stats.node_tests += 1
                if tracer is not None:
                    tracer.count("node_tests")
                if test(record.kind, record.tag):
                    clock.now += cost_instance
                    clock.cpu_time += cost_instance
                    stats.instances_created += 1
                    if tracer is not None:
                        tracer.count("instances_created")
                    yield PathInstance(
                        s_l=s_l,
                        n_l=n_l,
                        left_open=left_open,
                        s_r=step_index,
                        slot=slot,
                        is_border=False,
                        page_no=page_no,
                    )

    def _extend_full(self, p: PathInstance) -> Iterator[PathInstance]:
        """Fallback: unrestricted navigation, as an Unnest-Map would do."""
        ctx = self.ctx
        assert p.page_no is not None
        test = self.step.match
        for page_no, slot in full_axis(ctx, p.page_no, p.slot, self.step.axis, resumed=p.resumed):
            record = ctx.segment.page(page_no).record(slot)
            ctx.charge_test()
            if test(int(record.kind), record.tag):
                ctx.charge_instance()
                yield PathInstance(
                    s_l=p.s_l,
                    n_l=p.n_l,
                    left_open=p.left_open,
                    s_r=self.step_index,
                    slot=slot,
                    is_border=False,
                    page_no=page_no,
                )

    def _pinned_page(self, p: PathInstance):
        """The current cluster's page; instances in flight must live on it."""
        frame = self.ctx.current_frame
        if frame is None or (p.page_no is not None and p.page_no != frame.page.page_no):
            raise PlanError(
                f"XStep {self.step_index}: instance references page {p.page_no}, "
                f"current cluster is "
                f"{frame.page.page_no if frame else None}"
            )
        return frame.page
