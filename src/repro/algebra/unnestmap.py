"""Unnest-Map: the Simple method's step operator (paper Sec. 5.1).

One Unnest-Map per location step; each reads complete path instances and
extends them by one step using *full-tree* navigation — every border
crossing pays a swizzle and, on a miss, synchronous I/O immediately.
This is the baseline the cost-sensitive plans are measured against.

Like :class:`~repro.algebra.xstep.XStep`, the operator carries two
kernels selected once by ``EvalOptions.batched``: the scalar kernel
drives :func:`~repro.algebra.fullnav.full_axis` one record at a time;
the batched kernel replays the identical traversal — same candidate
orders, same hop/test charges, same buffer fix/unfix sequence and
therefore the same simulated I/O timeline — over per-page
:class:`~repro.storage.colview.ColumnView` candidate arrays.  Steps with
predicates always take the scalar kernel (predicate evaluation is
recursive full-tree navigation).
"""

from __future__ import annotations

from typing import Iterator

from repro.algebra.base import Operator
from repro.algebra.context import EvalContext
from repro.algebra.fullnav import full_axis, predicate_holds
from repro.algebra.pathinstance import PathInstance
from repro.algebra.steps import CompiledStep
from repro.storage.nodeid import page_of, slot_of


class UnnestMap(Operator):
    """Extend complete path instances by one location step."""

    __slots__ = ("producer", "step_index", "step", "_batched")

    def __init__(
        self,
        ctx: EvalContext,
        producer: Operator,
        step_index: int,
        step: CompiledStep,
    ) -> None:
        super().__init__(ctx)
        self.producer = producer
        self.step_index = step_index
        self.step = step
        self._batched = ctx.options.batched and not step.predicates

    def open(self) -> None:
        self.producer.open()
        super().open()

    def close(self) -> None:
        super().close()
        self.producer.close()

    def _produce(self) -> Iterator[PathInstance]:
        if self._batched:
            return self._produce_batched()
        return self._produce_scalar()

    def _produce_scalar(self) -> Iterator[PathInstance]:
        ctx = self.ctx
        step = self.step
        match = step.match
        for p in self.producer:
            assert p.page_no is not None and not p.is_border
            for page_no, slot in full_axis(ctx, p.page_no, p.slot, step.axis):
                record = ctx.segment.page(page_no).record(slot)
                ctx.charge_test()
                if not match(record.kind, record.tag):
                    continue
                if any(
                    not predicate_holds(ctx, page_no, slot, predicate)
                    for predicate in step.predicates
                ):
                    continue
                ctx.charge_instance()
                yield PathInstance(
                    s_l=p.s_l,
                    n_l=p.n_l,
                    left_open=False,
                    s_r=self.step_index,
                    slot=slot,
                    is_border=False,
                    page_no=page_no,
                )

    def _produce_batched(self) -> Iterator[PathInstance]:
        """Full-tree traversal over columnar candidate batches.

        Replays :func:`~repro.algebra.fullnav.full_axis` exactly: an
        explicit stack of per-page candidate streams, each stream a
        memoized :class:`~repro.storage.colview.ColumnView` batch with
        its charge shape, node tests precomputed by one ``match_batch``
        call per stream.  A border candidate crosses eagerly — the
        stream's position is saved, the buffer unfixes/fixes exactly as
        the scalar walk does, and a resume stream is pushed.

        Clock values accumulate in locals and stats/tracer counters in
        integer deltas, flushed before every yield and before every
        buffer call (``fix``/``unfix`` advance the clock and stamp tracer
        events with it), then reloaded; the per-charge float additions
        happen in scalar order, so results, ``Stats`` and simulated time
        are bit-identical to :meth:`_produce_scalar`.
        """
        ctx = self.ctx
        step = self.step
        axis = step.axis
        test = step.test
        match_batch = step.match_batch
        step_index = self.step_index
        buffer = ctx.buffer
        clock = ctx.clock
        stats = ctx.stats
        tracer = ctx.tracer
        cost_hop = ctx._cost_hop
        cost_test = ctx._cost_test
        cost_instance = ctx._cost_instance
        for p in self.producer:
            assert p.page_no is not None and not p.is_border
            s_l = p.s_l
            n_l = p.n_l
            frame = buffer.fix(p.page_no)
            try:
                page = frame.page
                view = page._colview
                if view is None:
                    view = page.colview()
                upfront, free_head, cands, flags = view.extension_batch(
                    test, match_batch, p.slot, axis, False
                )
                if tracer is not None and cands:
                    tracer.event(
                        clock.now,
                        "op",
                        "unnest-batch",
                        page=p.page_no,
                        args={"step": step_index, "batch_size": len(cands)},
                    )
                # stream: [page_no, page, view, cands, flags, index, end,
                #          free_head, upfront_pending]
                stack = [
                    [p.page_no, page, view, cands, flags, 0, len(cands), free_head, upfront]
                ]
                now = clock.now
                cpu = clock.cpu_time
                d_hops = d_tests = 0
                while stack:
                    top = stack[-1]
                    page_no = top[0]
                    page = top[1]
                    view = top[2]
                    cands = top[3]
                    flags = top[4]
                    index = top[5]
                    end = top[6]
                    free_head = top[7]
                    if top[8]:
                        # the stream's upfront hops fire on its first
                        # advance, before any candidate (and even when
                        # the stream is empty)
                        now += cost_hop
                        cpu += cost_hop
                        d_hops += top[8]
                        top[8] = 0
                    kinds = view.kinds
                    crossed = False
                    while index < end:
                        slot = cands[index]
                        if index >= free_head:
                            now += cost_hop
                            cpu += cost_hop
                            d_hops += 1
                        index += 1
                        if kinds[slot] < 0:
                            # border: cross eagerly, exactly as full_axis
                            top[5] = index
                            target = page.records[slot].target()
                            target_page = page_of(target)
                            clock.now = now
                            clock.cpu_time = cpu
                            buffer.unfix(frame)
                            frame = buffer.fix(target_page)
                            now = clock.now
                            cpu = clock.cpu_time
                            page = frame.page
                            view = page._colview
                            if view is None:
                                view = page.colview()
                            r_up, r_free, r_cands, r_flags = view.extension_batch(
                                test, match_batch, slot_of(target), axis, True
                            )
                            stack.append(
                                [
                                    target_page,
                                    page,
                                    view,
                                    r_cands,
                                    r_flags,
                                    0,
                                    len(r_cands),
                                    r_free,
                                    r_up,
                                ]
                            )
                            crossed = True
                            break
                        now += cost_test
                        cpu += cost_test
                        d_tests += 1
                        if flags[index - 1]:
                            now += cost_instance
                            cpu += cost_instance
                            clock.now = now
                            clock.cpu_time = cpu
                            stats.intra_hops += d_hops
                            stats.node_tests += d_tests
                            stats.instances_created += 1
                            if tracer is not None:
                                if d_hops:
                                    tracer.count("intra_hops", d_hops)
                                tracer.count("node_tests", d_tests)
                                tracer.count("instances_created")
                            d_hops = d_tests = 0
                            yield PathInstance(
                                s_l=s_l,
                                n_l=n_l,
                                left_open=False,
                                s_r=step_index,
                                slot=slot,
                                is_border=False,
                                page_no=page_no,
                            )
                            now = clock.now
                            cpu = clock.cpu_time
                    if crossed:
                        continue
                    # stream exhausted: pop back to the previous page
                    stack.pop()
                    clock.now = now
                    clock.cpu_time = cpu
                    buffer.unfix(frame)
                    frame = None
                    if stack:
                        frame = buffer.fix(stack[-1][0])
                    now = clock.now
                    cpu = clock.cpu_time
                clock.now = now
                clock.cpu_time = cpu
                # only hop/test deltas can be pending here: instance
                # charges always flush at their yield
                if d_hops:
                    stats.intra_hops += d_hops
                    if tracer is not None:
                        tracer.count("intra_hops", d_hops)
                if d_tests:
                    stats.node_tests += d_tests
                    if tracer is not None:
                        tracer.count("node_tests", d_tests)
            finally:
                if frame is not None:
                    buffer.unfix(frame)
