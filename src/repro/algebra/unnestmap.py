"""Unnest-Map: the Simple method's step operator (paper Sec. 5.1).

One Unnest-Map per location step; each reads complete path instances and
extends them by one step using *full-tree* navigation — every border
crossing pays a swizzle and, on a miss, synchronous I/O immediately.
This is the baseline the cost-sensitive plans are measured against.
"""

from __future__ import annotations

from typing import Iterator

from repro.algebra.base import Operator
from repro.algebra.context import EvalContext
from repro.algebra.fullnav import full_axis, predicate_holds
from repro.algebra.pathinstance import PathInstance
from repro.algebra.steps import CompiledStep


class UnnestMap(Operator):
    """Extend complete path instances by one location step."""

    __slots__ = ("producer", "step_index", "step")

    def __init__(
        self,
        ctx: EvalContext,
        producer: Operator,
        step_index: int,
        step: CompiledStep,
    ) -> None:
        super().__init__(ctx)
        self.producer = producer
        self.step_index = step_index
        self.step = step

    def open(self) -> None:
        self.producer.open()
        super().open()

    def close(self) -> None:
        super().close()
        self.producer.close()

    def _produce(self) -> Iterator[PathInstance]:
        ctx = self.ctx
        step = self.step
        match = step.match
        for p in self.producer:
            assert p.page_no is not None and not p.is_border
            for page_no, slot in full_axis(ctx, p.page_no, p.slot, step.axis):
                record = ctx.segment.page(page_no).record(slot)
                ctx.charge_test()
                if not match(record.kind, record.tag):
                    continue
                if any(
                    not predicate_holds(ctx, page_no, slot, predicate)
                    for predicate in step.predicates
                ):
                    continue
                ctx.charge_instance()
                yield PathInstance(
                    s_l=p.s_l,
                    n_l=p.n_l,
                    left_open=False,
                    s_r=self.step_index,
                    slot=slot,
                    is_border=False,
                    page_no=page_no,
                )
