"""Full-tree navigation: axis iteration that crosses cluster borders.

This is the navigation style of the paper's *Simple* method (Sec. 5.1)
and of fallback mode (Sec. 5.4.6): every border crossing immediately
swizzles and — on a buffer miss — performs synchronous I/O.  The
cost-sensitive operators exist to avoid exactly this code path.
"""

from __future__ import annotations

from typing import Iterator

from repro.axes import Axis
from repro.algebra.context import EvalContext
from repro.algebra.steps import CompiledPredicate, CompiledStep
from repro.model.tree import Kind
from repro.storage.nav import iter_axis, iter_resume
from repro.storage.nodeid import page_of, slot_of
from repro.storage.record import BorderRecord


def full_axis(
    ctx: EvalContext, page_no: int, slot: int, axis: Axis, resumed: bool = False
) -> Iterator[tuple[int, int]]:
    """Apply ``axis`` from ``(page_no, slot)``, crossing borders eagerly.

    Yields ``(page_no, slot)`` of core candidate nodes.  ``resumed`` means
    the starting slot is an entry border record of a paused step (used by
    fallback XStep on instances delivered from XSchedule's queue).

    Implemented iteratively with an explicit stack: only the page being
    navigated is pinned.  Descending across a border unfixes the source
    page and returning to it re-fixes it (another buffer-hash lookup, and
    another read if it was evicted meanwhile) — exactly the repeated
    swizzling cost the Simple method pays and the cost-sensitive plans
    avoid.  Continuation chains in wide child lists can be hundreds of
    crossings long, so neither recursion depth nor pin count may grow
    with them.
    """
    frame = ctx.buffer.fix(page_no)
    nav = (
        iter_resume(frame.page, slot, axis, ctx.charge_hop)
        if resumed
        else iter_axis(frame.page, slot, axis, ctx.charge_hop)
    )
    stack: list[tuple[int, object]] = [(page_no, nav)]
    try:
        while stack:
            page_no, nav = stack[-1]
            item = next(nav, None)  # type: ignore[call-overload]
            if item is None:
                stack.pop()
                ctx.buffer.unfix(frame)
                frame = None
                if stack:
                    frame = ctx.buffer.fix(stack[-1][0])
                continue
            is_border, s = item
            if not is_border:
                yield (page_no, s)
                continue
            record = frame.page.record(s)
            assert isinstance(record, BorderRecord)
            target = record.target()
            target_page = page_of(target)
            ctx.buffer.unfix(frame)
            frame = ctx.buffer.fix(target_page)
            stack.append(
                (target_page, iter_resume(frame.page, slot_of(target), axis, ctx.charge_hop))
            )
    finally:
        if frame is not None and stack:
            ctx.buffer.unfix(frame)


def string_value(ctx: EvalContext, page_no: int, slot: int) -> str:
    """XPath string value of a node.

    Text and attribute nodes carry their value; elements (and the
    document root) concatenate the values of their text descendants in
    document order — crossing borders, as ``full_axis`` does.
    """
    record = ctx.segment.page(page_no).record(slot)
    if record.kind in (Kind.TEXT, Kind.ATTRIBUTE):
        return record.value or ""
    pieces: list[str] = []
    for text_page, text_slot in full_axis(ctx, page_no, slot, Axis.DESCENDANT):
        descendant = ctx.segment.page(text_page).record(text_slot)
        if descendant.kind == Kind.TEXT:
            pieces.append(descendant.value or "")
    return "".join(pieces)


def predicate_holds(
    ctx: EvalContext, page_no: int, slot: int, predicate: CompiledPredicate
) -> bool:
    """Evaluate one compiled predicate at a context node."""
    if predicate.op is None:
        return exists_path(ctx, page_no, slot, predicate.steps)
    if not predicate.steps:
        # comparison against the context node itself (e.g. ``[. = "x"]``)
        ctx.charge_test()
        return predicate.matches_value(string_value(ctx, page_no, slot))
    return _exists_matching(ctx, page_no, slot, predicate.steps, predicate)


def _exists_matching(
    ctx: EvalContext,
    page_no: int,
    slot: int,
    steps: list[CompiledStep],
    predicate: CompiledPredicate,
) -> bool:
    step = steps[0]
    rest = steps[1:]
    for candidate_page, candidate_slot in full_axis(ctx, page_no, slot, step.axis):
        record = ctx.segment.page(candidate_page).record(candidate_slot)
        ctx.charge_test()
        if not step.match(record.kind, record.tag):
            continue
        if any(
            not predicate_holds(ctx, candidate_page, candidate_slot, nested)
            for nested in step.predicates
        ):
            continue
        if rest:
            if _exists_matching(ctx, candidate_page, candidate_slot, rest, predicate):
                return True
        else:
            ctx.charge_test()
            if predicate.matches_value(string_value(ctx, candidate_page, candidate_slot)):
                return True
    return False


def exists_path(ctx: EvalContext, page_no: int, slot: int, steps: list[CompiledStep]) -> bool:
    """Existence check for a relative path (predicate evaluation).

    Nested-loop with early exit; only used by the Simple plan.
    """
    if not steps:
        return True
    step = steps[0]
    rest = steps[1:]
    for candidate_page, candidate_slot in full_axis(ctx, page_no, slot, step.axis):
        record = ctx.segment.page(candidate_page).record(candidate_slot)
        ctx.charge_test()
        if not step.match(record.kind, record.tag):
            continue
        if any(
            not predicate_holds(ctx, candidate_page, candidate_slot, nested)
            for nested in step.predicates
        ):
            continue
        if exists_path(ctx, candidate_page, candidate_slot, rest):
            return True
    return False
