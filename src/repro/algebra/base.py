"""Iterator protocol for physical operators.

Every operator follows the classic open/next/close discipline [Graefe 93]
the paper requires.  Concretely, subclasses implement ``_produce()`` as a
generator; ``open`` instantiates it, ``next`` advances it, ``close``
disposes of it.  This keeps operator control flow readable while staying
a strict pull-based iterator tree externally.
"""

from __future__ import annotations

from typing import Iterator

from repro.algebra.context import EvalContext
from repro.algebra.pathinstance import PathInstance
from repro.errors import PlanError


class Operator:
    """Base class for all physical operators."""

    __slots__ = ("ctx", "_iter", "_trace_t0", "_trace_out")

    def __init__(self, ctx: EvalContext) -> None:
        self.ctx = ctx
        self._iter: Iterator[PathInstance] | None = None
        #: open-time simulated timestamp while a trace span is live
        self._trace_t0: float | None = None
        self._trace_out = 0

    def _produce(self) -> Iterator[PathInstance]:
        raise NotImplementedError

    def open(self) -> None:
        """Prepare the operator (and its inputs) for enumeration."""
        self._iter = self._produce()
        if self.ctx.tracer is not None:
            self._trace_t0 = self.ctx.clock.now
            self._trace_out = 0

    def next(self) -> PathInstance | None:
        """Return the next result, or None when exhausted."""
        if self._iter is None:
            raise PlanError(f"{type(self).__name__}.next() before open()")
        self.ctx.charge_call()
        item = next(self._iter, None)
        tracer = self.ctx.tracer
        if tracer is not None:
            produced = item is not None
            self._trace_out += produced
            tracer.op_call(type(self).__name__, produced)
        if (san := self.ctx.san) is not None:
            # the charge sanitizer verifies its shadow books between
            # result tuples, pinning a divergence to one operator call
            san.check()
        return item

    def close(self) -> None:
        """Release operator resources."""
        if self._iter is not None:
            self._iter.close()  # type: ignore[attr-defined]
            self._iter = None
        tracer = self.ctx.tracer
        if tracer is not None and self._trace_t0 is not None:
            tracer.op_span(
                type(self).__name__, self._trace_t0, self.ctx.clock.now, self._trace_out
            )
            self._trace_t0 = None

    def __iter__(self) -> Iterator[PathInstance]:
        """Convenience: drain the operator (used inside ``_produce``).

        The untraced path inlines :meth:`next` — the same
        ``charge_call`` cost in the same order, the same budget check,
        one generator advance — without the two extra call frames per
        item; with a tracer attached it defers to :meth:`next` so
        ``op_call`` accounting stays exact.
        """
        if self._iter is None:
            raise PlanError(f"{type(self).__name__}.next() before open()")
        ctx = self.ctx
        if ctx.tracer is not None:
            while True:
                item = self.next()
                if item is None:
                    return
                yield item
            return
        it = self._iter
        clock = ctx.clock
        cost = ctx._cost_call
        while True:
            clock.now += cost
            clock.cpu_time += cost
            if ctx._budget is not None:
                ctx.check_budget()
            item = next(it, None)
            if item is None:
                return
            yield item
