"""Leaf, duplicate-elimination, ordering and aggregation operators."""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.algebra.base import Operator
from repro.algebra.context import EvalContext
from repro.algebra.pathinstance import PathInstance
from repro.errors import BudgetExceededError
from repro.storage.nodeid import NodeID, make_nodeid, page_of, slot_of
from repro.storage.record import CoreRecord


class ContextScan(Operator):
    """Enumerate context nodes as trivial complete path instances.

    Produces instances with ``S_L = S_R = 0`` and both ends equal to the
    context node (paper Sec. 5.1 / input spec of XSchedule and XScan).
    """

    __slots__ = ("contexts",)

    def __init__(self, ctx: EvalContext, contexts: Sequence[NodeID]) -> None:
        super().__init__(ctx)
        self.contexts = list(contexts)

    def _produce(self) -> Iterator[PathInstance]:
        for nid in self.contexts:
            self.ctx.charge_instance()
            yield PathInstance(
                s_l=0,
                n_l=nid,
                left_open=False,
                s_r=0,
                slot=slot_of(nid),
                is_border=False,
                page_no=page_of(nid),
            )


class DuplicateElimination(Operator):
    """Hash-based duplicate elimination on the right-end node.

    The Simple method needs this as a final operator (Sec. 5.1); the
    XAssembly plans get it for free through R.
    """

    __slots__ = ("producer",)

    def __init__(self, ctx: EvalContext, producer: Operator) -> None:
        super().__init__(ctx)
        self.producer = producer

    def open(self) -> None:
        self.producer.open()
        super().open()

    def close(self) -> None:
        super().close()
        self.producer.close()

    def _produce(self) -> Iterator[PathInstance]:
        seen: set[NodeID] = set()
        for instance in self.producer:
            assert instance.page_no is not None
            nid = make_nodeid(instance.page_no, instance.slot)
            self.ctx.charge_set_op()
            if nid in seen:
                self.ctx.stats.duplicates_suppressed += 1
                if self.ctx.tracer is not None:
                    self.ctx.tracer.count("duplicates_suppressed")
                continue
            seen.add(nid)
            yield instance


def result_nodeids(top: Operator) -> list[NodeID]:
    """Drain a path-instance operator into its result NodeIDs.

    Under an execution budget with ``on_exceeded="partial"`` the results
    accumulated so far are returned when the budget trips; in ``"raise"``
    mode the :class:`~repro.errors.BudgetExceededError` propagates.
    """
    top.open()
    try:
        out: list[NodeID] = []
        try:
            while True:
                instance = top.next()
                if instance is None:
                    return out
                assert instance.page_no is not None
                out.append(make_nodeid(instance.page_no, instance.slot))
        except BudgetExceededError as exc:
            if not exc.partial:
                raise
            return out
    finally:
        top.close()


def order_results(ctx: EvalContext, nids: list[NodeID]) -> list[NodeID]:
    """Sort result nodes into document order via their ORDPATH labels.

    Fetching a label swizzles the node; pages evicted since the result
    was produced are re-read — a real cost of reordering navigation
    (paper Sec. 5.5).
    """
    keyed = []
    for nid in nids:
        frame = ctx.buffer.fix(page_of(nid))
        record = frame.page.record(slot_of(nid))
        assert isinstance(record, CoreRecord)
        ctx.charge_set_op()
        keyed.append((record.ordpath, nid))
        ctx.buffer.unfix(frame)
    # charge an n log n comparison cost for the sort itself
    n = len(keyed)
    if n > 1:
        comparisons = int(n * max(1, n.bit_length()))
        ctx.clock.work(comparisons * ctx.costs.set_op)
    keyed.sort(key=lambda pair: pair[0])
    return [nid for _, nid in keyed]


def count_results(top: Operator, ctx: EvalContext) -> int:
    """Drain a path-instance operator and count results (``count()``).

    Budget semantics match :func:`result_nodeids`: a ``"partial"`` budget
    returns the count accumulated so far.
    """
    top.open()
    try:
        count = 0
        try:
            while True:
                instance = top.next()
                if instance is None:
                    return count
                ctx.charge_set_op()
                count += 1
        except BudgetExceededError as exc:
            if not exc.partial:
                raise
            return count
    finally:
        top.close()
