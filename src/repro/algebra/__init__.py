"""Physical algebra over partial path instances (paper Sec. 4 and 5).

Operators (all iterators with ``open``/``next``/``close``):

* :class:`~repro.algebra.misc.ContextScan` — enumerates context nodes as
  trivial complete path instances (Sec. 5.1).
* :class:`~repro.algebra.unnestmap.UnnestMap` — the Simple method's step
  operator: full-tree navigation with immediate (synchronous) I/O.
* :class:`~repro.algebra.xstep.XStep` — intra-cluster-only step operator
  (Sec. 5.3.2); defers border crossings as right-incomplete instances.
* :class:`~repro.algebra.xassembly.XAssembly` — collects full paths,
  deduplicates right ends (R), merges speculative left-incomplete
  instances (S) (Sec. 5.3.3 / 5.4.5).
* :class:`~repro.algebra.xschedule.XSchedule` — the asynchronous-I/O
  cluster scheduler with queue Q (Sec. 5.3.4 / 5.4.4).
* :class:`~repro.algebra.xscan.XScan` — single sequential scan with
  speculative instance generation (Sec. 5.4.3).
* :mod:`~repro.algebra.misc` — duplicate elimination, document-order
  sort, count aggregation (Sec. 5.1 / 5.5).
"""

from repro.algebra.context import EvalContext, EvalOptions
from repro.algebra.pathinstance import PathInstance
from repro.algebra.base import Operator

__all__ = ["EvalContext", "EvalOptions", "PathInstance", "Operator"]
