"""Shared evaluation state and cost charging for one query execution."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BudgetExceededError, PlanError
from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.faults import RetryPolicy
from repro.sim.iosys import AsyncIOSystem
from repro.sim.stats import Stats
from repro.storage.buffer import BufferManager, Frame
from repro.storage.page import Segment


@dataclass(frozen=True, slots=True)
class ExecutionBudget:
    """Hard limits on what one query execution may consume.

    Enforced in the operator ``next()`` loops (via
    :meth:`EvalContext.charge_call`), so a runaway query is stopped
    between result tuples, never mid-I/O.

    Attributes
    ----------
    max_seconds:
        Maximum simulated wall-clock seconds for the run.
    max_pages:
        Maximum *logical* page reads by the run (``Stats.pages_requested``).
        Fault-recovery retries of the same read are the fault injector's
        doing, not the query's, so they never double-charge this limit;
        cap recovery effort with ``max_retries`` instead.
    max_retries:
        Maximum fault-recovery retries the run may consume.
    on_exceeded:
        ``"raise"`` surfaces :class:`~repro.errors.BudgetExceededError`;
        ``"partial"`` stops the drain and returns the results produced so
        far, flagged in the result's :class:`DegradationReport`.
    """

    max_seconds: float | None = None
    max_pages: int | None = None
    max_retries: int | None = None
    on_exceeded: str = "raise"

    def __post_init__(self) -> None:
        for name in ("max_seconds", "max_pages", "max_retries"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise PlanError(f"budget {name} must be positive, got {value}")
        if self.on_exceeded not in ("raise", "partial"):
            raise PlanError(
                f"budget on_exceeded must be 'raise' or 'partial', "
                f"got {self.on_exceeded!r}"
            )

    @property
    def active(self) -> bool:
        return (
            self.max_seconds is not None
            or self.max_pages is not None
            or self.max_retries is not None
        )


@dataclass(frozen=True, slots=True)
class DegradationEvent:
    """One recorded degradation decision (why, where, when)."""

    reason: str  #: e.g. "memory-limit", "dead-page", "latency-slo", "budget"
    sim_time: float  #: simulated time of the event
    page: int | None = None  #: cluster involved, if any
    detail: str = ""  #: human-readable specifics


@dataclass(slots=True)
class DegradationReport:
    """Structured account of every degradation during one execution.

    Carried on :class:`repro.engine.Result` (``result.degradation``) and
    aggregated by :class:`repro.exec.session.QuerySession`.  An execution
    with an empty report ran at full fidelity.
    """

    events: list[DegradationEvent] = field(default_factory=list)
    partial: bool = False  #: True when a budget truncated the result

    @property
    def reasons(self) -> list[str]:
        """Distinct degradation reasons, in first-occurrence order."""
        seen: list[str] = []
        for event in self.events:
            if event.reason not in seen:
                seen.append(event.reason)
        return seen

    def __bool__(self) -> bool:
        return bool(self.events) or self.partial

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = ", partial" if self.partial else ""
        return f"DegradationReport({self.reasons}{flag}, {len(self.events)} events)"


@dataclass(frozen=True, slots=True)
class EvalOptions:
    """Tuning knobs of the cost-sensitive operators.

    Attributes
    ----------
    k_min_queue:
        Desired minimum fill of XSchedule's queue Q before asking the
        producer for more context nodes (paper default: 100).
    speculative:
        Whether XSchedule generates left-incomplete instances on first
        visit of a cluster to avoid re-visits (Sec. 5.4.4).  XScan always
        speculates.
    memory_limit:
        Maximum number of instances XAssembly may hold in S before the
        plan reverts to fallback mode (Sec. 5.4.6).  ``None`` = unlimited.
    descendant_root_opt:
        Enable the ``//``-prefix optimisation: with an XScan input, right
        ends of step 1 of a path starting ``/descendant-or-self::node()``
        need not be stored in R (Sec. 5.4.5.4).
    scan_readahead:
        Number of pages XScan keeps requested ahead of the one it is
        processing.  The default of 0 reads synchronously, faithful to
        the paper's O_DIRECT setup (OS readahead bypassed); positive
        values model asynchronous prefetch, which overlaps the scan's
        I/O with its CPU work (see the readahead ablation benchmark).
    rewrite_descendant:
        Logical rewrite ``descendant-or-self::node()/child::X`` =>
        ``descendant::X`` applied by the compiler (orthogonal logical
        optimisation, Sec. 2).
    synopsis:
        Consult the per-cluster synopsis
        (:class:`~repro.storage.synopsis.ClusterSynopsis`) to prune
        provably irrelevant clusters: XScan skips them, XSchedule drops
        queue requests for them.  Pruning is conservative — results are
        bit-identical either way — and free when the document carries no
        synopsis.  Disable (CLI ``--no-synopsis``) to reproduce the
        paper's unpruned I/O behaviour.
    pathsummary:
        Consult the document's path summary
        (:class:`~repro.storage.pathsummary.PathSummary`) in the logical
        rewrite pass that runs before physical plan choice: refute whole
        location paths the summary proves impossible (empty result, zero
        I/O, no plan compilation), expand provable ``//`` steps into
        concrete child chains, feed exact per-path cardinalities to the
        AUTO chooser, and hand per-path cluster postings to
        XScan/XSchedule/shared scans as a pre-scan cluster filter that
        composes with synopsis pruning.  Conservative — results are
        bit-identical either way — and free when the document carries no
        summary.  Disable with CLI ``--no-pathsummary``.
    batched:
        Run the intra-cluster datapath batch-at-a-time over columnar
        cluster views (:class:`~repro.storage.colview.ColumnView`): XStep
        discovers a whole extension's candidate array charge-free, tests
        it with one vectorised ``match_batch``, and replays the scalar
        charge sequence in a flat emit loop; XScan/XSchedule/shared scans
        enumerate speculative entry borders from the view's precomputed
        lists.  Pure CPU-dispatch optimisation: results, ``Stats`` and
        simulated timings are bit-identical with the flag off (CLI
        ``--no-batched``), which falls back to one-record-at-a-time
        navigation over record objects.
    calibration:
        Let :class:`~repro.exec.session.QuerySession` feed *measured*
        plan outcomes back into the AUTO chooser: observed per-shape
        simulated timings override the estimator once both plan families
        have been seen, and a low-confidence (small predicted margin)
        decision explores the unobserved family once instead of trusting
        the estimate.  Purely a planning-time feature — any individual
        plan executes bit-identically either way — and free when off
        (CLI ``--no-calibration``): no feedback store exists, AUTO
        resolves exactly as the bare estimator does.
    retry:
        How the I/O subsystem recovers from injected faults
        (:class:`~repro.sim.faults.RetryPolicy`): retry cap, exponential
        backoff, lost-request deadline.
    latency_slo:
        Completion-latency service-level objective in simulated seconds.
        A cluster whose read blows the SLO is *sidelined* by XSchedule
        (processed after well-behaved clusters, recorded in the
        degradation report).  ``None`` disables the check.
    budget:
        Optional :class:`ExecutionBudget` enforced during execution.

    Options are validated at construction; a bad combination raises
    :class:`~repro.errors.PlanError` here instead of failing deep inside
    an operator.
    """

    k_min_queue: int = 100
    speculative: bool = False
    memory_limit: int | None = None
    descendant_root_opt: bool = True
    scan_readahead: int = 0
    rewrite_descendant: bool = True
    synopsis: bool = True
    pathsummary: bool = True
    batched: bool = True
    calibration: bool = True
    retry: RetryPolicy = RetryPolicy()
    latency_slo: float | None = None
    budget: ExecutionBudget | None = None

    def __post_init__(self) -> None:
        if self.k_min_queue < 1:
            raise PlanError(
                f"k_min_queue must be >= 1, got {self.k_min_queue} "
                "(XSchedule needs at least one queue slot)"
            )
        if self.memory_limit is not None and self.memory_limit < 0:
            raise PlanError(
                f"memory_limit must be non-negative or None, got {self.memory_limit}"
            )
        if self.scan_readahead < 0:
            raise PlanError(
                f"scan_readahead must be non-negative, got {self.scan_readahead}"
            )
        if self.latency_slo is not None and self.latency_slo <= 0:
            raise PlanError(
                f"latency_slo must be positive or None, got {self.latency_slo}"
            )


class EvalContext:
    """Everything a plan's operators share during one execution."""

    __slots__ = (
        "segment",
        "buffer",
        "iosys",
        "clock",
        "costs",
        "stats",
        "options",
        "tags",
        "tracer",
        "san",
        "current_frame",
        "fallback",
        "degradation_events",
        "fallback_hooks",
        "_budget",
        "_budget_error",
        "_budget_t0",
        "_budget_pages0",
        "_budget_retries0",
        "_cost_hop",
        "_cost_test",
        "_cost_instance",
        "_cost_set",
        "_cost_queue",
        "_cost_call",
    )

    def __init__(
        self,
        segment: Segment,
        buffer: BufferManager,
        iosys: AsyncIOSystem,
        clock: SimClock,
        costs: CostModel,
        stats: Stats,
        options: EvalOptions,
        tags=None,
        tracer=None,
    ) -> None:
        self.segment = segment
        self.buffer = buffer
        self.iosys = iosys
        self.clock = clock
        self.costs = costs
        self.stats = stats
        self.options = options
        #: the store's tag dictionary (needed by serialisation operators)
        self.tags = tags
        #: optional :class:`~repro.obs.tracer.Tracer`; every
        #: instrumentation site guards on ``is not None`` (the same
        #: zero-overhead discipline as the budget check in charge_call)
        self.tracer = tracer
        #: optional charge sanitizer (:mod:`repro.analysis.sanitize`),
        #: installed by the environment when ``REPRO_SAN`` requests it
        #: and checked at every operator yield; ``None`` keeps the hook
        #: on its single-``is None``-test fast path
        self.san = None
        #: The cluster currently being processed; maintained (pinned) by
        #: the plan's I/O-performing operator.  All swizzled slot
        #: references in flight between XStep operators point into it.
        self.current_frame: Frame | None = None
        #: Set when XAssembly's memory limit trips (Sec. 5.4.6); operators
        #: poll it and degrade to the Simple method's behaviour.
        self.fallback = False
        #: Why execution degraded, in order of occurrence.  Shared
        #: contexts (warm sessions) accumulate; per-run slices are taken
        #: via :meth:`report_since`.
        self.degradation_events: list[DegradationEvent] = []
        #: callbacks invoked when :meth:`trip_fallback` fires (XAssembly
        #: registers its S-discard here while open)
        self.fallback_hooks: list = []
        self._budget: ExecutionBudget | None = None
        self._budget_error: BudgetExceededError | None = None
        self._budget_t0 = 0.0
        self._budget_pages0 = 0
        self._budget_retries0 = 0
        # per-primitive cost scalars, cached so the charge methods (the
        # hottest calls in the engine) skip the dataclass attribute chain
        self._cost_hop = costs.intra_hop
        self._cost_test = costs.node_test
        self._cost_instance = costs.instance_op
        self._cost_set = costs.set_op
        self._cost_queue = costs.queue_op
        self._cost_call = costs.iterator_call

    # ------------------------------------------------------- cost charging
    #
    # These inline SimClock.work (two float adds) instead of calling it:
    # they fire hundreds of thousands of times per query and the method
    # call dominated their cost.  The simulated amounts are identical.

    def charge_hop(self) -> None:
        """One intra-cluster edge traversal."""
        cost = self._cost_hop
        clock = self.clock
        clock.now += cost
        clock.cpu_time += cost
        self.stats.intra_hops += 1
        if (tracer := self.tracer) is not None:
            tracer.count("intra_hops")

    def charge_test(self) -> None:
        """One node-test evaluation."""
        cost = self._cost_test
        clock = self.clock
        clock.now += cost
        clock.cpu_time += cost
        self.stats.node_tests += 1
        if (tracer := self.tracer) is not None:
            tracer.count("node_tests")

    def charge_instance(self) -> None:
        """Creation/copy of one path-instance tuple."""
        cost = self._cost_instance
        clock = self.clock
        clock.now += cost
        clock.cpu_time += cost
        self.stats.instances_created += 1
        if (tracer := self.tracer) is not None:
            tracer.count("instances_created")

    def charge_set_op(self) -> None:
        """One R/S/duplicate-hash operation."""
        cost = self._cost_set
        clock = self.clock
        clock.now += cost
        clock.cpu_time += cost

    def charge_queue_op(self) -> None:
        """One insert/remove on XSchedule's queue Q."""
        cost = self._cost_queue
        clock = self.clock
        clock.now += cost
        clock.cpu_time += cost

    def charge_call(self) -> None:
        """One inter-operator ``next()`` call.

        Also the budget enforcement point: every operator crossing runs
        through here, so a tripped budget stops the plan between result
        tuples.  The check is a single ``is None`` test when no budget is
        armed — zero overhead for ordinary runs.
        """
        cost = self._cost_call
        clock = self.clock
        clock.now += cost
        clock.cpu_time += cost
        if self._budget is not None:
            self.check_budget()

    # ------------------------------------------------------------- budgets

    def arm_budget(self, budget: ExecutionBudget | None) -> bool:
        """Start enforcing ``budget`` from the current clock/stats state.

        Returns True if this call armed it (the caller then owns the
        matching :meth:`disarm_budget`); idempotent while armed so nested
        executions (unions, shared scans) keep the outermost baseline.
        """
        if budget is None or not budget.active or self._budget is not None:
            return False
        self._budget = budget
        self._budget_error = None
        self._budget_t0 = self.clock.now
        self._budget_pages0 = self.stats.pages_requested
        self._budget_retries0 = self.stats.retries
        return True

    def disarm_budget(self) -> None:
        self._budget = None
        self._budget_error = None

    def check_budget(self) -> None:
        """Raise :class:`~repro.errors.BudgetExceededError` on a blown limit."""
        budget = self._budget
        if budget is None:
            return
        if self._budget_error is not None:
            # already blown: later drains of the same execution (e.g. the
            # remaining branches of a union) stop immediately as well
            raise self._budget_error
        spent_s = self.clock.now - self._budget_t0
        if budget.max_seconds is not None and spent_s > budget.max_seconds:
            self._budget_blown("seconds", budget.max_seconds, spent_s, budget)
        # logical reads, not physical service attempts: a page the fault
        # layer retried (or that was sidelined and later recovered via
        # fallback) is charged once, however many attempts recovery took
        spent_pages = self.stats.pages_requested - self._budget_pages0
        if budget.max_pages is not None and spent_pages > budget.max_pages:
            self._budget_blown("pages", budget.max_pages, spent_pages, budget)
        spent_retries = self.stats.retries - self._budget_retries0
        if budget.max_retries is not None and spent_retries > budget.max_retries:
            self._budget_blown("retries", budget.max_retries, spent_retries, budget)

    def _budget_blown(
        self, dimension: str, limit: float, spent: float, budget: ExecutionBudget
    ) -> None:
        partial = budget.on_exceeded == "partial"
        self.note_degradation(
            "budget", detail=f"{dimension} limit {limit:g} reached (spent {spent:g})"
        )
        # the budget stays armed but short-circuits to this error from now
        # on, so nested drains cannot re-arm a fresh one mid-query
        self._budget_error = BudgetExceededError(dimension, limit, spent, partial)
        raise self._budget_error

    # --------------------------------------------------------- degradation

    def note_degradation(
        self, reason: str, page: int | None = None, detail: str = ""
    ) -> None:
        """Record why execution deviated from the full-fidelity plan."""
        self.degradation_events.append(
            DegradationEvent(reason=reason, sim_time=self.clock.now, page=page, detail=detail)
        )
        if (tracer := self.tracer) is not None:
            tracer.event(
                self.clock.now,
                "degradation",
                reason,
                page=page,
                args={"detail": detail} if detail else None,
            )

    def report_since(self, start_index: int, partial: bool = False) -> DegradationReport | None:
        """Degradation report for events recorded after ``start_index``.

        Returns None for a clean (non-degraded, non-partial) run so
        results stay cheap to inspect.
        """
        events = self.degradation_events[start_index:]
        if not events and not partial:
            return None
        return DegradationReport(events=list(events), partial=partial)

    def trip_fallback(self, reason: str, page: int | None = None, detail: str = "") -> None:
        """Degrade the plan to the Simple method's behaviour (Sec. 5.4.6).

        Sets the fallback flag that XStep/XScan poll, records the cause,
        and runs the registered hooks (XAssembly discards S and revives
        XSchedule's parked entries).  Idempotent.
        """
        if self.fallback:
            return
        self.fallback = True
        self.stats.fallbacks += 1
        if (tracer := self.tracer) is not None:
            tracer.count("fallbacks")
        self.note_degradation(reason, page=page, detail=detail or "fell back to Simple-method evaluation")
        for hook in list(self.fallback_hooks):
            hook()

    # -------------------------------------------------------- current frame

    def set_current_frame(self, frame: Frame | None) -> None:
        """Move the I/O operator's pin to ``frame`` (unpins the old one)."""
        if self.current_frame is not None:
            self.buffer.unfix(self.current_frame)
        self.current_frame = frame

    def current_page(self):
        if self.current_frame is None:
            raise RuntimeError("no current cluster set")
        return self.current_frame.page

    def release(self) -> None:
        """Drop the current-frame pin at end of execution."""
        self.set_current_frame(None)
