"""Shared evaluation state and cost charging for one query execution."""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.iosys import AsyncIOSystem
from repro.sim.stats import Stats
from repro.storage.buffer import BufferManager, Frame
from repro.storage.page import Segment


@dataclass(frozen=True)
class EvalOptions:
    """Tuning knobs of the cost-sensitive operators.

    Attributes
    ----------
    k_min_queue:
        Desired minimum fill of XSchedule's queue Q before asking the
        producer for more context nodes (paper default: 100).
    speculative:
        Whether XSchedule generates left-incomplete instances on first
        visit of a cluster to avoid re-visits (Sec. 5.4.4).  XScan always
        speculates.
    memory_limit:
        Maximum number of instances XAssembly may hold in S before the
        plan reverts to fallback mode (Sec. 5.4.6).  ``None`` = unlimited.
    descendant_root_opt:
        Enable the ``//``-prefix optimisation: with an XScan input, right
        ends of step 1 of a path starting ``/descendant-or-self::node()``
        need not be stored in R (Sec. 5.4.5.4).
    scan_readahead:
        Number of pages XScan keeps requested ahead of the one it is
        processing.  The default of 0 reads synchronously, faithful to
        the paper's O_DIRECT setup (OS readahead bypassed); positive
        values model asynchronous prefetch, which overlaps the scan's
        I/O with its CPU work (see the readahead ablation benchmark).
    rewrite_descendant:
        Logical rewrite ``descendant-or-self::node()/child::X`` =>
        ``descendant::X`` applied by the compiler (orthogonal logical
        optimisation, Sec. 2).
    """

    k_min_queue: int = 100
    speculative: bool = False
    memory_limit: int | None = None
    descendant_root_opt: bool = True
    scan_readahead: int = 0
    rewrite_descendant: bool = True


class EvalContext:
    """Everything a plan's operators share during one execution."""

    def __init__(
        self,
        segment: Segment,
        buffer: BufferManager,
        iosys: AsyncIOSystem,
        clock: SimClock,
        costs: CostModel,
        stats: Stats,
        options: EvalOptions,
        tags=None,
    ) -> None:
        self.segment = segment
        self.buffer = buffer
        self.iosys = iosys
        self.clock = clock
        self.costs = costs
        self.stats = stats
        self.options = options
        #: the store's tag dictionary (needed by serialisation operators)
        self.tags = tags
        #: The cluster currently being processed; maintained (pinned) by
        #: the plan's I/O-performing operator.  All swizzled slot
        #: references in flight between XStep operators point into it.
        self.current_frame: Frame | None = None
        #: Set when XAssembly's memory limit trips (Sec. 5.4.6); operators
        #: poll it and degrade to the Simple method's behaviour.
        self.fallback = False

    # ------------------------------------------------------- cost charging

    def charge_hop(self) -> None:
        """One intra-cluster edge traversal."""
        self.clock.work(self.costs.intra_hop)
        self.stats.intra_hops += 1

    def charge_test(self) -> None:
        """One node-test evaluation."""
        self.clock.work(self.costs.node_test)
        self.stats.node_tests += 1

    def charge_instance(self) -> None:
        """Creation/copy of one path-instance tuple."""
        self.clock.work(self.costs.instance_op)
        self.stats.instances_created += 1

    def charge_set_op(self) -> None:
        """One R/S/duplicate-hash operation."""
        self.clock.work(self.costs.set_op)

    def charge_queue_op(self) -> None:
        """One insert/remove on XSchedule's queue Q."""
        self.clock.work(self.costs.queue_op)

    def charge_call(self) -> None:
        """One inter-operator ``next()`` call."""
        self.clock.work(self.costs.iterator_call)

    # -------------------------------------------------------- current frame

    def set_current_frame(self, frame: Frame | None) -> None:
        """Move the I/O operator's pin to ``frame`` (unpins the old one)."""
        if self.current_frame is not None:
            self.buffer.unfix(self.current_frame)
        self.current_frame = frame

    def current_page(self):
        if self.current_frame is None:
            raise RuntimeError("no current cluster set")
        return self.current_frame.page

    def release(self) -> None:
        """Drop the current-frame pin at end of execution."""
        self.set_current_frame(None)
