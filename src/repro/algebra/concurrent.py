"""Concurrent query execution over one shared I/O subsystem.

The paper's outlook: "We also expect concurrent queries to strongly
benefit from asynchronous I/O, as scheduling decisions can be made based
on more pending requests" — and conversely warns that scan-based plans
suffer interference when several run at once (Sec. 2).

This module interleaves several query plans round-robin over a *shared*
clock, disk, buffer and asynchronous I/O subsystem:

* CPU work serialises (one simulated CPU), so total CPU is the sum;
* disk requests from all queries share the controller queue — the
  reordering policy sees more candidates, which is exactly the claimed
  benefit;
* the buffer is shared, so one query's reads can satisfy another's
  (request coalescing happens in the I/O subsystem).

Each query keeps its own :class:`EvalContext` view (own current-cluster
pin, own fallback flag) around the shared components.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.context import EvalContext, EvalOptions
from repro.algebra.misc import order_results
from repro.errors import PlanError
from repro.sim.stats import Stats
from repro.storage.nodeid import NodeID, make_nodeid
from repro.xpath.compile import CompiledPathPlan, CompiledQuery, PlanKind


@dataclass(slots=True)
class ConcurrentResult:
    """Per-query outcome of a concurrent run."""

    query: str
    plan_kinds: list[PlanKind]
    value: float | None
    nodes: list[NodeID] | None
    finished_at: float  #: simulated time when this query completed


@dataclass(slots=True)
class ConcurrentOutcome:
    """Aggregate outcome of one concurrent execution."""

    results: list[ConcurrentResult]
    total_time: float
    cpu_time: float
    io_wait: float
    stats: Stats

    @property
    def makespan(self) -> float:
        return self.total_time


def _drive_count(plan: CompiledPathPlan, ctx: EvalContext):
    top = plan.build(ctx)
    top.open()
    try:
        count = 0
        while True:
            item = top.next()
            if item is None:
                return count
            ctx.charge_set_op()
            count += 1
            yield
    finally:
        top.close()
        ctx.release()
        ctx.fallback = False


def _drive_nodes(plan: CompiledPathPlan, ctx: EvalContext):
    top = plan.build(ctx)
    top.open()
    try:
        nids: list[NodeID] = []
        while True:
            item = top.next()
            if item is None:
                break
            assert item.page_no is not None
            nids.append(make_nodeid(item.page_no, item.slot))
            yield
    finally:
        top.close()
        ctx.release()
        ctx.fallback = False
    return order_results(ctx, nids)


def _drive_number(node, ctx: EvalContext):
    if isinstance(node, float):
        return node
    op, left, right = node
    if op == "count":
        return (yield from _drive_count(left, ctx))
    left_value = yield from _drive_number(left, ctx)
    right_value = yield from _drive_number(right, ctx)
    return left_value + right_value if op == "+" else left_value - right_value


def _drive_query(compiled: CompiledQuery, ctx: EvalContext):
    """Generator evaluating a compiled query with cooperative yields.

    Yields after every result tuple so the scheduler can interleave
    queries; returns ``(value, nodes)``.
    """
    if isinstance(compiled.expr, CompiledPathPlan):
        nodes = yield from _drive_nodes(compiled.expr, ctx)
        return (None, nodes)
    value = yield from _drive_number(compiled.expr, ctx)
    return (value, None)


def interleave(
    jobs: list[tuple[CompiledQuery, EvalContext]],
) -> list[tuple[float | None, list[NodeID] | None, tuple[float, float, float]]]:
    """Advance compiled queries round-robin, one result tuple at a time.

    Each job is ``(compiled, ctx)`` where every ``ctx`` is a private view
    over one shared runtime (see
    :meth:`repro.exec.environment.ExecutionEnvironment.view`) — the
    queries' disk requests land in a single controller queue and their
    reads share one buffer pool.  Returns, in job order,
    ``(value, nodes, clock_checkpoint_at_completion)``.
    """
    drivers = [
        (compiled, ctx, _drive_query(compiled, ctx)) for compiled, ctx in jobs
    ]
    outcomes: list[tuple | None] = [None] * len(drivers)
    active = list(range(len(drivers)))
    while active:
        for index in list(active):
            compiled, ctx, generator = drivers[index]
            try:
                next(generator)
            except StopIteration as done:
                value, nodes = done.value
                outcomes[index] = (value, nodes, ctx.clock.checkpoint())
                active.remove(index)
    return outcomes  # type: ignore[return-value]


def run_concurrent(
    db,
    requests: list[tuple[str, str, str]],
    options: EvalOptions | None = None,
) -> ConcurrentOutcome:
    """Execute ``(query, doc, plan)`` requests concurrently.

    All queries share one cold execution environment (clock, disk
    controller queue, buffer pool); their operator trees are advanced
    round-robin, one result tuple at a time.
    """
    if not requests:
        raise PlanError("run_concurrent needs at least one request")
    shared = db.env.fresh_context(options)
    jobs = [
        (db.prepare(query, doc, plan, options), db.env.view(shared, options))
        for query, doc, plan in requests
    ]
    outcomes = interleave(jobs)
    results = [
        ConcurrentResult(
            query=query,
            plan_kinds=compiled.plan_kinds,
            value=value,
            nodes=nodes,
            finished_at=checkpoint[0],
        )
        for (query, _, _), (compiled, _), (value, nodes, checkpoint) in zip(
            requests, jobs, outcomes
        )
    ]
    return ConcurrentOutcome(
        results=results,
        total_time=shared.clock.now,
        cpu_time=shared.clock.cpu_time,
        io_wait=shared.clock.io_wait,
        stats=shared.stats,
    )
