"""Shared scan: several location paths over one physical pass.

The paper's outlook: "Our method can be easily extended to evaluate
multiple location paths with a single I/O-performing operator."  This
module implements that extension for the scan operator: one sequential
pass over the document drives the XStep chains and XAssembly instances
of *all* paths — Q7's three descendant counts read the document once
instead of three times.

Mechanics: the driver performs XScan's physical work (sequential page
loads, current-cluster pinning).  For every cluster it feeds each path
its context instances and its speculative left-incomplete instances
through a per-cluster XStep chain into that path's persistent XAssembly
(whose R and S state spans the whole scan — re-opening an XAssembly over
a new producer preserves its execution state by design).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.algebra.base import Operator
from repro.algebra.context import EvalContext
from repro.algebra.pathinstance import PathInstance
from repro.algebra.xassembly import XAssembly
from repro.algebra.xstep import XStep
from repro.errors import BudgetExceededError, PlanError
from repro.storage.nav import speculative_entries
from repro.storage.nodeid import NodeID, make_nodeid, page_of, slot_of
from repro.storage.store import StoredDocument
from repro.storage.synopsis import cost_effective_skips


class _Replay(Operator):
    """Producer replaying a fixed batch of instances (one cluster's feed)."""

    __slots__ = ("items",)

    def __init__(self, ctx: EvalContext, items: list[PathInstance]) -> None:
        super().__init__(ctx)
        self.items = items

    def _produce(self) -> Iterator[PathInstance]:
        yield from self.items


class _PathState:
    """Per-path machinery persisting across clusters."""

    __slots__ = ("steps", "assembly", "results", "postings")

    def __init__(
        self, ctx: EvalContext, steps, descendant_root_opt: bool, postings=None
    ) -> None:
        self.steps = steps
        self.postings = postings
        # the producer is swapped per cluster; XAssembly's R/S survive
        self.assembly = XAssembly(
            ctx,
            producer=_Replay(ctx, []),
            path_len=len(steps),
            schedule=None,
            descendant_root_opt=descendant_root_opt,
        )
        self.results: list[NodeID] = []

    def feed(self, ctx: EvalContext, batch: list[PathInstance]) -> None:
        source: Operator = _Replay(ctx, batch)
        top = source
        for index, step in enumerate(self.steps, start=1):
            top = XStep(ctx, top, index, step)
        self.assembly.producer = top
        self.assembly.open()
        while True:
            item = self.assembly.next()
            if item is None:
                break
            assert item.page_no is not None
            self.results.append(make_nodeid(item.page_no, item.slot))
        self.assembly.close()


def shared_scan(
    ctx: EvalContext,
    document: StoredDocument,
    paths: Sequence,  # CompiledPathPlan-like: .steps, .descendant_root_opt
) -> list[list[NodeID]]:
    """Evaluate several paths with one sequential scan; returns result
    NodeIDs per path (unordered)."""
    if not paths:
        raise PlanError("shared_scan needs at least one path")
    states = [
        _PathState(
            ctx,
            plan.steps,
            getattr(plan, "descendant_root_opt", False),
            postings=getattr(plan, "postings", None),
        )
        for plan in paths
    ]
    root = document.root
    context_cluster = page_of(root)
    batched = ctx.options.batched
    synopsis = document.synopsis if ctx.options.synopsis else None
    page_nos = document.page_nos
    if synopsis is not None:
        # skip clusters no path can draw a candidate or transit from
        # (the context cluster always stays in); only runs long enough
        # to beat the seek their gap induces are actually dropped
        prunable = [
            page_no != context_cluster
            and all(
                synopsis.prunable_for_scan(page_no, state.steps)
                for state in states
            )
            for page_no in page_nos
        ]
        skips = cost_effective_skips(page_nos, prunable, ctx.iosys.disk.geometry)
        if skips:
            ctx.stats.synopsis_clusters_pruned += len(skips)
            if ctx.tracer is not None:
                ctx.tracer.count("synopsis_clusters_pruned", len(skips))
        if any(state.postings is not None for state in states):
            # widen the prunable vector with each path's cluster postings
            # (a page is skippable only when *every* path rules it out;
            # paths without postings keep their synopsis-only verdict);
            # the synopsis-only skips above are a pointwise subset, so the
            # union attributes only the extra skips to the path summary
            def ruled_out(state: _PathState, page_no: int) -> bool:
                if state.postings is not None:
                    return state.postings.prunable_for_scan(synopsis, page_no)
                return synopsis.prunable_for_scan(page_no, state.steps)

            combined = [
                flag
                or (
                    page_no != context_cluster
                    and all(ruled_out(state, page_no) for state in states)
                )
                for flag, page_no in zip(prunable, page_nos)
            ]
            extra = (
                cost_effective_skips(page_nos, combined, ctx.iosys.disk.geometry)
                - skips
            )
            if extra:
                ctx.stats.pathsummary_clusters_pruned += len(extra)
                if ctx.tracer is not None:
                    ctx.tracer.count("pathsummary_clusters_pruned", len(extra))
                skips = skips | extra
        if skips:
            page_nos = [p for p in page_nos if p not in skips]

    try:
        for page_no in page_nos:
            if not ctx.buffer.is_resident(page_no):
                pass  # synchronous sequential read below (O_DIRECT semantics)
            frame = ctx.buffer.try_fix_resident(page_no)
            if frame is None:
                frame = ctx.buffer.fix(page_no)
            ctx.set_current_frame(frame)
            ctx.stats.clusters_visited += 1
            if ctx.tracer is not None:
                ctx.tracer.count("clusters_visited")
            page = frame.page
            for state in states:
                batch: list[PathInstance] = []
                if page_no == context_cluster:
                    ctx.charge_instance()
                    batch.append(
                        PathInstance(
                            s_l=0,
                            n_l=root,
                            left_open=False,
                            s_r=0,
                            slot=slot_of(root),
                            is_border=False,
                            page_no=page_no,
                        )
                    )
                for step_index, step in enumerate(state.steps):
                    if synopsis is not None and not synopsis.can_contribute(
                        page_no, step
                    ):
                        ctx.stats.synopsis_entries_pruned += 1
                        if ctx.tracer is not None:
                            ctx.tracer.count("synopsis_entries_pruned")
                        continue
                    if (
                        synopsis is not None
                        and state.postings is not None
                        and not state.postings.can_contribute(
                            synopsis, page_no, step_index
                        )
                    ):
                        # the postings place this step's path set elsewhere
                        ctx.stats.pathsummary_entries_pruned += 1
                        if ctx.tracer is not None:
                            ctx.tracer.count("pathsummary_entries_pruned")
                        continue
                    entries = (
                        page.colview().entry_slots(step.axis)
                        if batched
                        else speculative_entries(page, step.axis)
                    )
                    for border_slot in entries:
                        ctx.charge_instance()
                        ctx.stats.speculative_instances += 1
                        if ctx.tracer is not None:
                            ctx.tracer.count("speculative_instances")
                        batch.append(
                            PathInstance(
                                s_l=step_index,
                                n_l=make_nodeid(page_no, border_slot),
                                left_open=True,
                                s_r=step_index,
                                slot=border_slot,
                                is_border=True,
                                resumed=True,
                                page_no=page_no,
                            )
                        )
                state.feed(ctx, batch)
    except BudgetExceededError as exc:
        # a "partial" budget stops the scan; each path keeps what it has
        if not exc.partial:
            ctx.release()
            raise
    ctx.release()
    return [state.results for state in states]
