"""XScan: sequential-scan-based cluster access (paper Sec. 5.4.3).

The second I/O-performing operator.  Instead of scheduling individual
cluster accesses, XScan reads *every* cluster of the document exactly
once, in physical order — the access pattern the disk (and any OS
readahead) serves at streaming bandwidth.  Because clusters are visited
in physical rather than logical order, XScan speculatively produces
left-incomplete path instances for every entry border of each cluster;
XAssembly later merges them with the instances that prove their left
ends reachable.

Fallback (Sec. 5.4.6): XScan restarts its producer and degrades to the
identity operator — every context is re-delivered and the (now
unrestricted) XStep chain re-evaluates the whole path; R in XAssembly
prevents duplicate results.
"""

from __future__ import annotations

from typing import Iterator

from repro.algebra.base import Operator
from repro.algebra.context import EvalContext
from repro.algebra.pathinstance import PathInstance
from repro.algebra.steps import CompiledStep
from repro.storage.nav import speculative_entries
from repro.storage.nodeid import make_nodeid
from repro.storage.pathsummary import PathPostings
from repro.storage.store import StoredDocument
from repro.storage.synopsis import cost_effective_skips


class XScan(Operator):
    """The I/O-performing operator based on a single sequential scan."""

    __slots__ = ("producer", "steps", "document", "postings")

    def __init__(
        self,
        ctx: EvalContext,
        producer: Operator,
        steps: list[CompiledStep],
        document: StoredDocument,
        postings: PathPostings | None = None,
    ) -> None:
        super().__init__(ctx)
        self.producer = producer
        self.steps = steps
        self.document = document
        self.postings = postings

    def open(self) -> None:
        self.producer.open()
        super().open()

    def close(self) -> None:
        super().close()
        self.producer.close()

    def _produce(self) -> Iterator[PathInstance]:
        ctx = self.ctx
        # The paper requires the context input sorted by cluster id; we
        # group the (typically single) context instances per cluster.
        by_cluster: dict[int, list[PathInstance]] = {}
        all_contexts: list[PathInstance] = []
        for y in self.producer:
            assert y.page_no is not None
            ctx.charge_queue_op()
            by_cluster.setdefault(y.page_no, []).append(y)
            all_contexts.append(y)

        page_nos = self.document.page_nos
        synopsis = self.document.synopsis if ctx.options.synopsis else None
        # The path-summary postings refine the synopsis, never replace
        # it: transit residues live in the synopsis rows, so the filter
        # is only sound with the synopsis alongside.
        postings = self.postings if synopsis is not None else None
        if synopsis is not None:
            # Skip clusters that provably cannot contribute: no pending
            # context lives there and no step's speculative resume can
            # yield a candidate or a transit (conservative, so results
            # are bit-identical to the unpruned scan).  Consulting the
            # synopsis is planning metadata — no simulated time charged.
            # Only runs of prunable pages long enough to beat the seek
            # their gap induces are dropped: skipping an isolated page in
            # a streaming read costs more than transferring it.
            steps = self.steps
            prunable = [
                page_no not in by_cluster
                and synopsis.prunable_for_scan(page_no, steps)
                for page_no in page_nos
            ]
            skips = cost_effective_skips(
                page_nos, prunable, ctx.iosys.disk.geometry
            )
            if skips:
                ctx.stats.synopsis_clusters_pruned += len(skips)
                if ctx.tracer is not None:
                    ctx.tracer.count("synopsis_clusters_pruned", len(skips))
            if postings is not None:
                # Cluster postings widen the prunable vector (any page the
                # postings prove irrelevant is as safely skippable as a
                # synopsis-pruned one); the synopsis-only skip set above
                # is a pointwise subset, so taking the union keeps the
                # synopsis counter identical to a postings-free run and
                # attributes only the extra skips to the path summary.
                combined = [
                    flag
                    or (
                        page_no not in by_cluster
                        and postings.prunable_for_scan(synopsis, page_no)
                    )
                    for flag, page_no in zip(prunable, page_nos)
                ]
                extra = (
                    cost_effective_skips(
                        page_nos, combined, ctx.iosys.disk.geometry
                    )
                    - skips
                )
                if extra:
                    ctx.stats.pathsummary_clusters_pruned += len(extra)
                    if ctx.tracer is not None:
                        ctx.tracer.count(
                            "pathsummary_clusters_pruned", len(extra)
                        )
                    skips = skips | extra
            if skips:
                page_nos = [p for p in page_nos if p not in skips]
        readahead = ctx.options.scan_readahead
        batched = ctx.options.batched
        issued = 0
        for index, page_no in enumerate(page_nos):
            if ctx.fallback:
                break
            if readahead > 0:
                # asynchronous prefetch: keep a window of reads in flight
                while issued < len(page_nos) and issued <= index + readahead:
                    if not ctx.buffer.is_resident(page_nos[issued]):
                        ctx.iosys.request(page_nos[issued])
                    issued += 1
                while not ctx.buffer.is_resident(page_no):
                    done = ctx.iosys.get_completion()
                    if done is None:
                        break
                    ctx.buffer.admit_completed(done)
            frame = ctx.buffer.try_fix_resident(page_no)
            if frame is None:
                # synchronous sequential read (O_DIRECT semantics): the
                # disk detects the ascending pattern, so only transfer
                # time is paid, but it is serial with the CPU work
                frame = ctx.buffer.fix(page_no)
            ctx.set_current_frame(frame)
            ctx.stats.clusters_visited += 1
            if ctx.tracer is not None:
                ctx.tracer.count("clusters_visited")

            for y in by_cluster.pop(page_no, ()):  # contexts first (paper)
                ctx.charge_instance()
                yield y
            for step_index, step in enumerate(self.steps):
                if ctx.fallback:
                    break
                if synopsis is not None and not synopsis.can_contribute(
                    page_no, step
                ):
                    # no entry of this cluster can extend this step: the
                    # speculative instances would all come up empty
                    ctx.stats.synopsis_entries_pruned += 1
                    if ctx.tracer is not None:
                        ctx.tracer.count("synopsis_entries_pruned")
                    continue
                if postings is not None and not postings.can_contribute(
                    synopsis, page_no, step_index
                ):
                    # the synopsis could not rule the cluster out, but the
                    # postings prove no node of this step's path set lives
                    # here and no transit residue remains either
                    ctx.stats.pathsummary_entries_pruned += 1
                    if ctx.tracer is not None:
                        ctx.tracer.count("pathsummary_entries_pruned")
                    continue
                # the columnar view's precomputed border lists replace the
                # record scan; enumeration charges nothing in either mode
                entries = (
                    frame.page.colview().entry_slots(step.axis)
                    if batched
                    else speculative_entries(frame.page, step.axis)
                )
                for border_slot in entries:
                    ctx.charge_instance()
                    ctx.stats.speculative_instances += 1
                    if ctx.tracer is not None:
                        ctx.tracer.count("speculative_instances")
                    yield PathInstance(
                        s_l=step_index,
                        n_l=make_nodeid(page_no, border_slot),
                        left_open=True,
                        s_r=step_index,
                        slot=border_slot,
                        is_border=True,
                        resumed=True,
                        page_no=page_no,
                    )

        if ctx.fallback:
            # restart the producer, behave as the identity operator: the
            # fallback XStep chain fully re-evaluates every context
            ctx.stats.fallbacks += 0  # counted by XAssembly; kept for clarity
            for y in all_contexts:
                ctx.charge_instance()
                yield y
