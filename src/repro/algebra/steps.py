"""Compiled location steps: axes bound to tag-dictionary ids.

The paper models node tests as subsets of the tag alphabet (Sec. 4.1).  A
:class:`CompiledNodeTest` is exactly that, refined with node kinds so the
XPath kind tests (``text()``, ``node()``) and the attribute axis's
principal node kind resolve correctly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.axes import Axis
from repro.model.tree import Kind

_KIND_ELEMENT = int(Kind.ELEMENT)
_KIND_TEXT = int(Kind.TEXT)
_KIND_ATTRIBUTE = int(Kind.ATTRIBUTE)
_KIND_DOCUMENT = int(Kind.DOCUMENT)

#: Sentinel tag id for a name that does not occur in the document: the
#: test can never match, but the query is still valid.
UNKNOWN_TAG = -1


@dataclass(frozen=True, slots=True)
class CompiledNodeTest:
    """Kind/tag membership test on candidate nodes."""

    kinds: frozenset[int]
    tag: int | None = None  #: required tag id; None = any tag

    def matches(self, kind: int, tag: int) -> bool:
        return kind in self.kinds and (self.tag is None or tag == self.tag)

    @property
    def is_node_test(self) -> bool:
        """True if this is ``node()`` on a non-attribute axis: any node matches."""
        return self.tag is None and len(self.kinds) >= 3

    @staticmethod
    def compile(test_kind: str, axis: Axis, tag_id: int | None) -> "CompiledNodeTest":
        """Build a compiled test from an AST node test on ``axis``."""
        principal = (
            frozenset({_KIND_ATTRIBUTE})
            if axis is Axis.ATTRIBUTE
            else frozenset({_KIND_ELEMENT})
        )
        if test_kind == "name":
            return CompiledNodeTest(principal, UNKNOWN_TAG if tag_id is None else tag_id)
        if test_kind == "wildcard":
            return CompiledNodeTest(principal)
        if test_kind == "text":
            kinds = frozenset() if axis is Axis.ATTRIBUTE else frozenset({_KIND_TEXT})
            return CompiledNodeTest(kinds)
        if test_kind == "node":
            if axis is Axis.ATTRIBUTE:
                return CompiledNodeTest(frozenset({_KIND_ATTRIBUTE}))
            return CompiledNodeTest(
                frozenset({_KIND_ELEMENT, _KIND_TEXT, _KIND_DOCUMENT})
            )
        if test_kind == "comment":
            return CompiledNodeTest(frozenset())  # comments are not stored
        raise ValueError(f"unknown node test kind {test_kind!r}")


def _never(kind: int, tag: int) -> bool:
    return False


#: Signature of a batch node test: (kind column, tag column, candidate
#: slots) -> match flags, parallel to the candidate array.
BatchMatch = Callable[["list[int]", "list[int]", "list[int]"], "list[bool]"]


def _never_batch(kinds: "list[int]", tags: "list[int]", slots: "list[int]") -> "list[bool]":
    return [False] * len(slots)


def compile_match(test: CompiledNodeTest) -> Callable[[int, int], bool]:
    """Specialise ``test.matches`` into a minimal closure.

    Node tests are evaluated once per candidate record in every hot
    loop; the generic ``matches`` pays a frozenset membership plus a
    None-check on each call.  The common shapes (single kind + required
    tag, single kind + any tag) collapse to one or two int comparisons.
    """
    kinds = test.kinds
    tag = test.tag
    if not kinds or tag == UNKNOWN_TAG:
        return _never
    if len(kinds) == 1:
        (only,) = kinds
        if tag is None:
            return lambda kind, _tag, _k=only: kind == _k
        return lambda kind, t, _k=only, _t=tag: kind == _k and t == _t
    if tag is None:
        return lambda kind, _tag, _ks=kinds: kind in _ks
    return lambda kind, t, _ks=kinds, _t=tag: kind in _ks and t == _t


def compile_match_batch(test: CompiledNodeTest) -> BatchMatch:
    """Vectorised form of :func:`compile_match` over columnar arrays.

    Evaluates the node test for a whole candidate batch against a page's
    kind/tag columns (:class:`~repro.storage.colview.ColumnView`) in one
    list comprehension — the batched XStep kernel's replacement for one
    ``match`` call per candidate.  Border and tombstone slots carry
    negative kind sentinels, so they can never match (the kernel routes
    borders before consulting the flags anyway).
    """
    kinds = test.kinds
    tag = test.tag
    if not kinds or tag == UNKNOWN_TAG:
        return _never_batch
    if len(kinds) == 1:
        (only,) = kinds
        if tag is None:
            return lambda kc, tc, slots, _k=only: [kc[s] == _k for s in slots]
        return lambda kc, tc, slots, _k=only, _t=tag: [
            kc[s] == _k and tc[s] == _t for s in slots
        ]
    if tag is None:
        return lambda kc, tc, slots, _ks=kinds: [kc[s] in _ks for s in slots]
    return lambda kc, tc, slots, _ks=kinds, _t=tag: [
        kc[s] in _ks and tc[s] == _t for s in slots
    ]


@dataclass(slots=True)
class CompiledPredicate:
    """A compiled step predicate (Simple plan only).

    ``op is None``: existence of the relative path.  Otherwise a general
    comparison in XPath's node-set semantics: some node reached by the
    path has a string value satisfying ``value <op> literal``.
    """

    steps: list["CompiledStep"]
    op: str | None = None  #: None (existence), "=" or "!="
    literal: str | None = None

    def matches_value(self, text: str) -> bool:
        assert self.op is not None and self.literal is not None
        return (text == self.literal) if self.op == "=" else (text != self.literal)


@dataclass(slots=True)
class CompiledStep:
    """One location step ready for execution."""

    axis: Axis
    test: CompiledNodeTest
    #: Nested predicates; only the Simple plan evaluates these (the paper
    #: defers nested paths — "more than two incomplete ends").
    predicates: list[CompiledPredicate] = field(default_factory=list)
    #: Precompiled ``(kind, tag) -> bool`` form of ``test`` for the
    #: per-record hot loops.
    match: Callable[[int, int], bool] = field(
        init=False, repr=False, compare=False
    )
    #: Precompiled batch form of ``test`` for the columnar kernel.
    match_batch: BatchMatch = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.match = compile_match(self.test)
        self.match_batch = compile_match_batch(self.test)
