"""XAssembly: result filtering, dedup, and speculative merging.

Implements both the restricted XAssembly^R (paper Sec. 5.3.3) and the
general XAssembly (Sec. 5.4.5): the general behaviour degenerates to the
restricted one when no left-incomplete instances arrive.

Execution state (paper's terms):

* ``R`` — set of *reachable right ends*: keys ``(step, NodeID)``.  For a
  paused crossing the NodeID is the junction (the entry border record on
  the target side, i.e. ``target(N_R)``); for a full result it is the
  result node itself — which is how final duplicates are eliminated for
  free.
* ``S`` — left-incomplete (speculative) instances, keyed by their left
  junction ``(S_L, N_L)``, waiting for that junction to become reachable.

When a key enters R, all S-instances parked under it activate, possibly
cascading (a speculative fragment can end at yet another border).  With
an XSchedule input, proving a junction also enqueues a visit of the
junction's cluster; with an XScan input the scan visits every cluster
anyway, so no notification is needed (``schedule is None``).

The ``//``-prefix optimisation (Sec. 5.4.5.4) treats every key of step 1
as present in R without storing it; it is only sound when all clusters
are guaranteed to be visited (an XScan input) *and* the second step is
not a sibling axis — sibling steps enter plain up-borders as candidate
crossings whose junctions are not implied by the ``//`` prefix (the
compiler disables the flag in that case).

If ``|S|`` exceeds the memory limit, the plan trips into *fallback mode*
(Sec. 5.4.6): S is discarded, arriving left-incomplete instances are
dropped (the complete re-evaluation regenerates their results), and only
R survives as the duplicate filter.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.algebra.base import Operator
from repro.algebra.context import EvalContext
from repro.algebra.pathinstance import PathInstance
from repro.errors import PlanError
from repro.storage.nodeid import NodeID, make_nodeid, page_of, slot_of
from repro.storage.record import BorderRecord


class _Stored:
    """An S-resident instance: right end normalized to NodeIDs."""

    __slots__ = ("s_r", "right", "incomplete")

    def __init__(self, s_r: int, right: NodeID, incomplete: bool) -> None:
        self.s_r = s_r
        #: junction NodeID (incomplete) or result-node NodeID (complete)
        self.right = right
        self.incomplete = incomplete


class XAssembly(Operator):
    """Topmost operator of a cost-sensitive path plan."""

    __slots__ = (
        "producer",
        "path_len",
        "schedule",
        "descendant_root_opt",
        "_r",
        "_s",
        "_s_size",
        "_ready",
    )

    def __init__(
        self,
        ctx: EvalContext,
        producer: Operator,
        path_len: int,
        schedule=None,
        descendant_root_opt: bool = False,
    ) -> None:
        super().__init__(ctx)
        self.producer = producer
        self.path_len = path_len
        #: the associated XSchedule, or None when the input is an XScan
        self.schedule = schedule
        #: step-1 keys are implicitly reachable (``//`` prefix + scan input)
        self.descendant_root_opt = descendant_root_opt and path_len > 1
        self._r: set[tuple[int, NodeID]] = set()
        self._s: dict[tuple[int, NodeID], list[_Stored]] = {}
        self._s_size = 0
        self._ready: deque[_Stored] = deque()

    def open(self) -> None:
        self.producer.open()
        # lower operators (XSchedule giving up on a dead page) trip
        # fallback through the context; this hook discards S for them
        self.ctx.fallback_hooks.append(self._on_fallback_trip)
        super().open()

    def close(self) -> None:
        super().close()
        try:
            self.ctx.fallback_hooks.remove(self._on_fallback_trip)
        except ValueError:
            pass
        self.producer.close()

    # ------------------------------------------------------------ R helpers

    def _r_contains(self, key: tuple[int, NodeID]) -> bool:
        self.ctx.charge_set_op()
        if self.descendant_root_opt and key[0] == 1:
            return True
        return key in self._r

    def _r_add(self, key: tuple[int, NodeID]) -> None:
        if self.descendant_root_opt and key[0] == 1:
            return
        self._r.add(key)

    # -------------------------------------------------------------- pipeline

    def _produce(self) -> Iterator[PathInstance]:
        ctx = self.ctx
        while True:
            while self._ready:
                stored = self._ready.popleft()
                result = self._activate(stored)
                if result is not None:
                    yield self._result_instance(result)
            y = self.producer.next()
            if y is None:
                return
            result = self._intake(y)
            if result is not None:
                yield self._result_instance(result)

    def _result_instance(self, nid: NodeID) -> PathInstance:
        self.ctx.charge_instance()
        return PathInstance(
            s_l=0,
            n_l=None,
            left_open=False,
            s_r=self.path_len,
            slot=slot_of(nid),
            is_border=False,
            page_no=page_of(nid),
        )

    # ---------------------------------------------------------------- intake

    def _intake(self, y: PathInstance) -> NodeID | None:
        ctx = self.ctx
        assert y.page_no is not None
        if y.is_border:
            border = ctx.segment.page(y.page_no).record(y.slot)
            assert isinstance(border, BorderRecord)
            junction = border.target()
            if y.left_open:
                return self._store(y, _Stored(y.s_r, junction, incomplete=True))
            self._prove(y.s_r, junction, origin=(y.s_l, y.n_l))
            return None
        nid = make_nodeid(y.page_no, y.slot)
        if y.left_open:
            return self._store(y, _Stored(y.s_r, nid, incomplete=False))
        if y.s_r != self.path_len:
            raise PlanError(
                f"XAssembly received a complete non-full instance (s_r={y.s_r})"
            )
        return self._final(nid)

    def _store(self, y: PathInstance, stored: _Stored) -> NodeID | None:
        """Handle a left-incomplete instance: activate now or park in S."""
        if self.ctx.fallback:
            # complete re-evaluation covers all speculative results
            return None
        assert y.n_l is not None
        left_key = (y.s_l, y.n_l)
        if self._r_contains(left_key):
            self.ctx.stats.merges += 1
            if self.ctx.tracer is not None:
                self.ctx.tracer.count("merges")
            return self._activate(stored)
        self.ctx.charge_set_op()
        self._s.setdefault(left_key, []).append(stored)
        self._s_size += 1
        limit = self.ctx.options.memory_limit
        if limit is not None and self._s_size > limit:
            self._enter_fallback()
        return None

    # ------------------------------------------------------------ activation

    def _activate(self, stored: _Stored) -> NodeID | None:
        """Process an instance whose left end is known reachable."""
        if stored.incomplete:
            self._prove(stored.s_r, stored.right, origin=(0, None))
            return None
        if stored.s_r == self.path_len:
            return self._final(stored.right)
        raise PlanError(
            f"complete non-full instance in S (s_r={stored.s_r}, len={self.path_len})"
        )

    def _final(self, nid: NodeID) -> NodeID | None:
        """Deduplicate and emit a full path's result node."""
        key = (self.path_len, nid)
        if self._r_contains(key):
            self.ctx.stats.duplicates_suppressed += 1
            if self.ctx.tracer is not None:
                self.ctx.tracer.count("duplicates_suppressed")
            return None
        self._r_add(key)
        return nid

    def _prove(self, step: int, junction: NodeID, origin: tuple[int, NodeID | None]) -> None:
        """Record that ``junction`` is reachable after ``step`` steps.

        Adds the key to R, schedules a visit of the junction's cluster
        (XSchedule input only), and activates any S-instances waiting on
        the key.
        """
        key = (step, junction)
        if self._r_contains(key):
            self.ctx.stats.duplicates_suppressed += 1
            if self.ctx.tracer is not None:
                self.ctx.tracer.count("duplicates_suppressed")
            return
        self._r_add(key)
        if self.schedule is not None:
            origin_step, origin_node = origin
            self.schedule.add_from_assembly(
                s_l=origin_step,
                n_l=origin_node,
                s_r=step,
                target=junction,
            )
        pending = self._s.pop(key, None)
        if pending:
            self.ctx.stats.merges += len(pending)
            if self.ctx.tracer is not None:
                self.ctx.tracer.count("merges", len(pending))
            self._s_size -= len(pending)
            self._ready.extend(pending)

    # -------------------------------------------------------------- fallback

    def _enter_fallback(self) -> None:
        """Memory limit exceeded: revert to the Simple method (Sec. 5.4.6)."""
        self.ctx.trip_fallback(
            "memory-limit",
            detail=f"|S|={self._s_size} exceeded memory_limit="
            f"{self.ctx.options.memory_limit}",
        )

    def _on_fallback_trip(self) -> None:
        """Context hook: discard S, keep R as the duplicate filter."""
        self._s.clear()
        self._s_size = 0
        self._ready.clear()
        if self.schedule is not None:
            self.schedule.enter_fallback()
