"""Partial path instances (paper Sec. 4).

The paper represents a partial path instance by the 4-tuple
``(S_L, N_L, S_R, N_R)``.  Our pipeline representation refines this with
the bookkeeping the operators need:

* ``s_l`` / ``n_l`` — the left end.  For a *left-complete* instance,
  ``n_l`` is the NodeID of the originating context node (or ``None`` once
  speculative merging has lost the concrete context, see XAssembly).  For
  a *left-incomplete* instance (``left_open=True``), ``n_l`` is the
  junction: the NodeID of the entry border record the instance
  speculatively starts at.
* ``s_r`` — number of completed steps, exactly the paper's ``S_R`` (a
  right-incomplete instance paused inside step ``s_r + 1``).
* right end — while an instance flows through the XStep chain, its right
  end is *swizzled*: ``slot`` on the current cluster's page (the frame
  pinned by the I/O-performing operator).  ``is_border`` marks a paused
  crossing.  In fallback mode (and in the Simple method) ``page_no`` is
  set explicitly because navigation is no longer confined to one cluster.
* ``resumed`` — the right end is an entry border record just delivered by
  the I/O operator; the applicable XStep must apply its *resume* axis.

Instances parked in the main-memory structures R, S and Q are stored
unswizzled (plain NodeIDs), mirroring Sec. 3.6.
"""

from __future__ import annotations

from repro.storage.nodeid import NodeID


class PathInstance:
    """One partial path instance flowing through the pipeline."""

    __slots__ = ("s_l", "n_l", "left_open", "s_r", "slot", "is_border", "resumed", "page_no")

    def __init__(
        self,
        s_l: int,
        n_l: NodeID | None,
        left_open: bool,
        s_r: int,
        slot: int,
        is_border: bool,
        resumed: bool = False,
        page_no: int | None = None,
    ) -> None:
        self.s_l = s_l
        self.n_l = n_l
        self.left_open = left_open
        self.s_r = s_r
        self.slot = slot
        self.is_border = is_border
        self.resumed = resumed
        self.page_no = page_no

    @property
    def right_complete(self) -> bool:
        return not self.is_border

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        left = f"?{self.n_l}" if self.left_open else f"{self.n_l}"
        right = f"{'page ' + str(self.page_no) + ' ' if self.page_no is not None else ''}slot {self.slot}"
        flags = ("B" if self.is_border else "") + ("R" if self.resumed else "")
        return f"PathInstance([{self.s_l}]{left} -> [{self.s_r}]{right}{flags})"
