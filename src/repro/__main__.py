"""Command-line interface: ``python -m repro``.

Run XPath queries against an XML file or a generated XMark document on
the simulated storage engine, comparing physical plans::

    python -m repro --xml doc.xml "count(//item)"
    python -m repro --xmark 0.1 --compare "count(/site/regions//item)"
    python -m repro --xmark 0.1 --explain --plan xscan "//keyword"

With ``--wal FILE`` the store becomes durable: updates are write-ahead
logged next to FILE and checkpointed into it.  After a crash,
``python -m repro recover FILE`` loads the last checkpoint, replays the
log's valid prefix and reports what was recovered::

    python -m repro --xmark 0.1 --wal store.bin "count(//item)"
    python -m repro recover store.bin "count(//item)"
"""

from __future__ import annotations

import argparse
import sys

from repro import (
    Database,
    EvalOptions,
    ExecutionBudget,
    ImportOptions,
    ReproError,
    Tracer,
    fault_profile,
    format_metrics,
)
from repro.xmark import generate_xmark

PLAN_CHOICES = ("auto", "simple", "xschedule", "xscan", "xscan-shared")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Cost-sensitive XPath evaluation on a simulated storage engine",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--xml", metavar="FILE", help="load an XML document from FILE")
    source.add_argument(
        "--xmark", metavar="SCALE", type=float, help="generate an XMark document"
    )
    source.add_argument(
        "--store", metavar="FILE", help="open a persisted store (see --save)"
    )
    parser.add_argument(
        "--save", metavar="FILE", help="persist the store to FILE after loading"
    )
    parser.add_argument(
        "--wal",
        metavar="FILE",
        default=None,
        help="make the store durable: checkpoint it to FILE and write-ahead "
        "log updates to FILE.wal (recover after a crash with "
        "'python -m repro recover FILE')",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="checkpoint automatically after every N logged update "
        "operations (default: only on explicit checkpoint)",
    )
    parser.add_argument("queries", nargs="+", metavar="QUERY", help="XPath queries to run")
    parser.add_argument("--plan", choices=PLAN_CHOICES, default="auto")
    parser.add_argument(
        "--compare", action="store_true", help="run every plan and tabulate"
    )
    parser.add_argument("--explain", action="store_true", help="print the physical plan")
    parser.add_argument("--page-size", type=int, default=8192)
    parser.add_argument("--buffer-pages", type=int, default=256)
    parser.add_argument(
        "--fragmentation",
        type=float,
        default=1.0,
        help="physical layout dispersion, 0.0 (document order) to 1.0 (shuffled)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--show-nodes", type=int, default=5, metavar="N", help="print up to N result nodes"
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help="run each query N times through one session (exercises the "
        "compiled-plan cache); prints per-run and aggregate timings",
    )
    parser.add_argument(
        "--warm",
        action="store_true",
        help="keep one runtime (buffer, clock, disk head) alive across runs "
        "instead of running each one cold",
    )
    parser.add_argument(
        "--faults",
        metavar="PROFILE[:SEED]",
        default=None,
        help="inject a fault workload into the simulated disk "
        "(none, transient-errors, latency-spikes, lost-requests, mixed); "
        "an optional :SEED reseeds the deterministic fault stream",
    )
    parser.add_argument(
        "--budget",
        metavar="SPEC",
        default=None,
        help="execution budget as comma-separated key=value pairs: "
        "seconds=<float>, pages=<int>, retries=<int>, mode=raise|partial "
        "(e.g. 'seconds=5,pages=2000,mode=partial')",
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="record execution traces and write them to FILE on exit "
        "(Chrome trace-viewer JSON; a .jsonl suffix selects JSON-lines "
        "events instead)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print the per-query metrics rollup (operator table, cluster "
        "heatmap, retry histogram) derived from the tracer",
    )
    parser.add_argument(
        "--no-synopsis",
        action="store_true",
        help="disable cluster-synopsis pruning (XScan reads every page, "
        "XSchedule enqueues every crossing), reproducing the paper's "
        "unpruned I/O behaviour",
    )
    parser.add_argument(
        "--no-pathsummary",
        action="store_true",
        help="disable the path-summary index: no refutation of impossible "
        "paths, no //-to-child expansion, no per-path cluster postings — "
        "planning falls back to the tag-level synopsis and estimator",
    )
    parser.add_argument(
        "--no-batched",
        action="store_true",
        help="disable the batched columnar datapath: navigate record "
        "objects one at a time instead of columnar cluster views "
        "(bit-identical results and simulated timings, more interpreter "
        "overhead per node)",
    )
    parser.add_argument(
        "--no-calibration",
        action="store_true",
        help="disable the AUTO chooser's measured-outcome feedback: plan "
        "choices come from the open-loop estimator only (no observed-"
        "timing overrides, no exploration runs, no fitted cost model)",
    )
    parser.add_argument(
        "--latency-slo",
        type=float,
        default=None,
        metavar="SECONDS",
        help="completion-latency SLO; clusters whose reads exceed it are "
        "sidelined and reported in the degradation summary",
    )
    return parser


def parse_budget(spec: str) -> ExecutionBudget:
    """Parse a ``--budget`` spec like ``seconds=5,pages=2000,mode=partial``."""
    kwargs: dict = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        key, _, value = part.partition("=")
        key, value = key.strip(), value.strip()
        if not value:
            raise ReproError(f"bad budget entry {part!r} (expected key=value)")
        try:
            if key == "seconds":
                kwargs["max_seconds"] = float(value)
            elif key == "pages":
                kwargs["max_pages"] = int(value)
            elif key == "retries":
                kwargs["max_retries"] = int(value)
            elif key == "mode":
                kwargs["on_exceeded"] = value
            else:
                raise ReproError(
                    f"unknown budget key {key!r} "
                    "(known: seconds, pages, retries, mode)"
                )
        except ValueError:
            raise ReproError(f"bad budget value in {part!r}") from None
    return ExecutionBudget(**kwargs)


def eval_options_from(args: argparse.Namespace) -> EvalOptions | None:
    kwargs: dict = {}
    if args.budget:
        kwargs["budget"] = parse_budget(args.budget)
    if args.latency_slo is not None:
        kwargs["latency_slo"] = args.latency_slo
    if args.no_synopsis:
        kwargs["synopsis"] = False
    if args.no_pathsummary:
        kwargs["pathsummary"] = False
    if args.no_batched:
        kwargs["batched"] = False
    if args.no_calibration:
        kwargs["calibration"] = False
    return EvalOptions(**kwargs) if kwargs else None


def _attach_wal(db: Database, args: argparse.Namespace) -> None:
    if not args.wal:
        return
    wal = db.attach_wal(args.wal, checkpoint_every=args.checkpoint_every)
    every = (
        f", checkpoint every {args.checkpoint_every} ops"
        if args.checkpoint_every
        else ""
    )
    print(f"durable: checkpoint {args.wal}, log {wal.wal_path}{every}")


def load_database(args: argparse.Namespace, tracer: Tracer | None = None) -> Database:
    faults = fault_profile(args.faults) if args.faults else None
    options = eval_options_from(args)
    if faults is not None and faults.active:
        print(f"fault profile: {faults.name} (seed {faults.seed})")
    if args.store:
        db = Database.load(
            args.store,
            buffer_pages=args.buffer_pages,
            eval_options=options,
            faults=faults,
            tracer=tracer,
        )
        name = next(iter(db.store.documents))
        if name != "doc":
            db.store.documents["doc"] = db.store.documents[name]
        doc = db.document("doc")
        print(
            f"document: {doc.n_nodes} nodes on {doc.n_pages} pages "
            f"({doc.n_border_pairs} border pairs)"
        )
        _attach_wal(db, args)
        return db
    db = Database(
        page_size=args.page_size,
        buffer_pages=args.buffer_pages,
        eval_options=options,
        faults=faults,
        tracer=tracer,
    )
    import_options = ImportOptions(
        page_size=args.page_size, fragmentation=args.fragmentation, seed=args.seed
    )
    if args.xml:
        with open(args.xml, encoding="utf-8") as handle:
            db.load_xml(handle.read(), "doc", import_options)
    else:
        tree = generate_xmark(scale=args.xmark, tags=db.tags, seed=args.seed)
        db.add_tree(tree, "doc", import_options)
    if args.save:
        db.save(args.save)
        print(f"store saved to {args.save}")
    doc = db.document("doc")
    print(
        f"document: {doc.n_nodes} nodes on {doc.n_pages} pages "
        f"({doc.n_border_pairs} border pairs)"
    )
    _attach_wal(db, args)
    return db


def print_result(db: Database, plan: str, result, show_nodes: int) -> None:
    if result.value is not None:
        answer = f"value = {result.value:g}"
    else:
        answer = f"{len(result.nodes)} nodes"
    print(
        f"  {plan:<14s} {answer:<20s} total={result.total_time:9.4f}s "
        f"cpu={result.cpu_time:8.4f}s ({result.cpu_fraction * 100:4.1f}%) "
        f"pages={result.stats.pages_read:6d} seeks={result.stats.seeks:5d}"
    )
    stats = result.stats
    if stats.io_errors or stats.timeouts or stats.slow_services:
        print(
            f"      faults survived: errors={stats.io_errors} "
            f"timeouts={stats.timeouts} spikes={stats.slow_services} "
            f"retries={stats.retries} backoff={stats.backoff_wait:.4f}s"
        )
    if result.degraded:
        report = result.degradation
        flag = " — PARTIAL RESULT" if report.partial else ""
        print(
            f"      degraded: {', '.join(report.reasons)} "
            f"({len(report.events)} events){flag}"
        )
    if result.nodes is not None and show_nodes:
        for nid in result.nodes[:show_nodes]:
            kind, tag, value = db.node_info(nid)
            rendered = f"  <{tag}>" if kind == "ELEMENT" else f"  {kind.lower()}: {value!r}"
            print(f"      {rendered}")
        if len(result.nodes) > show_nodes:
            print(f"      ... and {len(result.nodes) - show_nodes} more")


def run_repeated(db, session, query: str, plan: str, args: argparse.Namespace) -> None:
    """Run one query ``--repeat`` times through the session; print each
    run and the session-level aggregate."""
    results = []
    for run in range(1, args.repeat + 1):
        compiles_before = session.compiles
        try:
            result = session.execute(query, doc="doc", plan=plan)
        except ReproError as error:
            print(f"  {plan:<14s} error: {error}")
            return
        results.append(result)
        cache = "compiled" if session.compiles > compiles_before else "plan cache hit"
        print(
            f"  {plan:<14s} run {run}/{args.repeat}  total={result.total_time:9.4f}s "
            f"cpu={result.cpu_time:8.4f}s io_wait={result.io_wait:8.4f}s "
            f"pages={result.stats.pages_read:6d} [{cache}]"
        )
    total = sum(r.total_time for r in results)
    print(
        f"  {'':<14s} aggregate: total={total:9.4f}s "
        f"mean={total / len(results):8.4f}s "
        f"({session.compiles} compiles, {session.cache_hits} cache hits, "
        f"{'warm' if args.warm else 'cold'} runs)"
    )
    if args.metrics and results[-1].trace_summary is not None:
        print(f"  metrics for run {len(results)}/{args.repeat}:")
        print(format_metrics(results[-1].trace_summary))


def build_recover_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro recover",
        description="Recover a durable store: load the last checkpoint, "
        "replay the write-ahead log's valid prefix, report what survived, "
        "and optionally run queries against the recovered document",
    )
    parser.add_argument("store", metavar="FILE", help="checkpoint store file")
    parser.add_argument(
        "queries", nargs="*", metavar="QUERY", help="XPath queries to run after recovery"
    )
    parser.add_argument(
        "--wal",
        metavar="FILE",
        default=None,
        help="write-ahead log path (default: the store path + '.wal')",
    )
    parser.add_argument("--plan", choices=PLAN_CHOICES, default="auto")
    parser.add_argument("--buffer-pages", type=int, default=256)
    parser.add_argument(
        "--checkpoint",
        action="store_true",
        help="checkpoint the recovered state back into the store file "
        "(folds the replayed tail in and truncates the log)",
    )
    parser.add_argument(
        "--show-nodes", type=int, default=5, metavar="N", help="print up to N result nodes"
    )
    return parser


def run_recover(argv: list[str]) -> int:
    args = build_recover_parser().parse_args(argv)
    try:
        db, report = Database.recover(
            args.store, buffer_pages=args.buffer_pages, wal_path=args.wal
        )
        print(
            f"recovered {args.store}: checkpoint LSN {report.checkpoint_lsn}, "
            f"last LSN {report.last_lsn} ({report.replayed} entries replayed, "
            f"{report.skipped} already checkpointed)"
        )
        if report.torn_tail:
            print("  torn log tail discarded (crash mid-append; entry was never acknowledged)")
        if report.touched_pages:
            pages = ", ".join(str(p) for p in report.touched_pages)
            print(f"  synopsis repaired for pages: {pages}")
        name = next(iter(db.store.documents))
        if name != "doc":
            db.store.documents["doc"] = db.store.documents[name]
        doc = db.document("doc")
        print(
            f"document: {doc.n_nodes} nodes on {doc.n_pages} pages "
            f"({doc.n_border_pairs} border pairs)"
        )
        if args.checkpoint:
            wal = db.attach_wal(args.store, wal_path=args.wal)
            wal.checkpoint()
            print(f"checkpointed recovered state to {args.store}")
        session = db.session()
        for query in args.queries:
            print(f"\n{query}")
            try:
                result = session.execute(query, doc="doc", plan=args.plan)
            except ReproError as error:
                print(f"  {args.plan:<14s} error: {error}")
                continue
            print_result(db, args.plan, result, args.show_nodes)
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "recover":
        return run_recover(argv[1:])
    args = build_parser().parse_args(argv)
    if args.repeat < 1:
        print("error: --repeat must be >= 1", file=sys.stderr)
        return 1
    tracer = Tracer() if (args.trace or args.metrics) else None
    try:
        db = load_database(args, tracer=tracer)
        session = db.session(warm=args.warm)
        for query in args.queries:
            print(f"\n{query}")
            if args.explain:
                compiled = session.prepare(query, doc="doc", plan=args.plan)
                print(compiled.explain())
            plans = PLAN_CHOICES[1:] if args.compare else (args.plan,)
            for plan in plans:
                if args.repeat > 1:
                    run_repeated(db, session, query, plan, args)
                    continue
                try:
                    result = session.execute(query, doc="doc", plan=plan)
                except ReproError as error:
                    print(f"  {plan:<14s} error: {error}")
                    continue
                print_result(db, plan, result, args.show_nodes)
                if args.metrics and result.trace_summary is not None:
                    print(format_metrics(result.trace_summary))
        if tracer is not None and args.trace:
            if args.trace.endswith(".jsonl"):
                tracer.export_jsonl(args.trace)
            else:
                tracer.export_chrome(args.trace)
            print(
                f"\ntrace written to {args.trace} "
                f"({tracer.events_recorded} events, {tracer.dropped} dropped)"
            )
    except (ReproError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
