"""XMark benchmark workloads (Schmidt et al., VLDB 2002).

The paper evaluates on documents produced by the XMark generator
``xmlgen`` at scaling factors 0.1-2.  This package is a from-scratch
generator producing documents with the same element hierarchy and the
same *relative* entity fan-outs, scaled down ~10x in absolute node count
so that a pure-Python engine sweeps all nine scale factors in minutes
(the substitution is documented in DESIGN.md; the selectivity ratios
that drive the paper's plan crossovers are preserved).
"""

from repro.xmark.generator import XMarkProfile, generate_xmark
from repro.xmark.queries import PAPER_QUERIES, Q6_PRIME, Q7, Q15

__all__ = [
    "generate_xmark",
    "XMarkProfile",
    "PAPER_QUERIES",
    "Q6_PRIME",
    "Q7",
    "Q15",
]
