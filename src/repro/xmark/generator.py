"""From-scratch XMark document generator.

Reproduces the element hierarchy of the XMark benchmark's auction site
document [Schmidt et al., VLDB 2002]: regions with items, categories
with a category graph, people, open and closed auctions, and the
recursive ``description``/``parlist``/``listitem``/``text`` machinery
whose nested ``keyword``/``bold``/``emph`` content Q15 drills into.

Entity counts follow xmlgen's ratios (items : persons : open auctions :
closed auctions : categories = 21750 : 25500 : 12000 : 9750 : 1000 at
scale 1) divided by :data:`XMarkProfile.downscale` so a pure-Python
engine can sweep all nine scale factors of the paper's evaluation.  Set
``downscale=1`` to generate full-size documents.

The generator is deterministic per ``(scale, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.model.builder import TreeBuilder
from repro.model.tags import TagDictionary
from repro.model.tree import LogicalTree

#: Word pool for generated prose (keeps text nodes short but realistic).
_WORDS = (
    "auction bid lot seller rare fine crate ship port trade gold silver "
    "silk amber ledger note offer price deal stock yield market charter "
    "guild wagon cargo spice linen copper tin grain salt wine oak pine"
).split()

#: Regional distribution of items, as in xmlgen.
_REGIONS = (
    ("africa", 0.0275),
    ("asia", 0.10),
    ("australia", 0.0275),
    ("europe", 0.30),
    ("namerica", 0.515),
    ("samerica", 0.03),
)


@dataclass(frozen=True)
class XMarkProfile:
    """Entity counts at scale 1.0 before downscaling, plus shape knobs."""

    items: int = 21750
    persons: int = 25500
    open_auctions: int = 12000
    closed_auctions: int = 9750
    categories: int = 1000
    downscale: int = 10
    #: probability that a description holds a parlist rather than flat text
    parlist_probability: float = 0.35
    #: probability that a listitem nests another parlist (per level)
    nested_parlist_probability: float = 0.30
    max_parlist_depth: int = 3

    def scaled(self, scale: float, base: int) -> int:
        return max(1, round(base * scale / self.downscale))


class _Generator:
    def __init__(self, scale: float, seed: int, profile: XMarkProfile, tags: TagDictionary | None):
        # explicit integer mixing: round(scale * 1000) is a small non-negative
        # int, so this produces the same stream as the historical hash()-based
        # mixing while staying independent of PYTHONHASHSEED
        self.rng = random.Random((seed << 16) ^ round(scale * 1000))
        self.profile = profile
        self.scale = scale
        self.builder = TreeBuilder(tags)
        self.n_items = profile.scaled(scale, profile.items)
        self.n_persons = profile.scaled(scale, profile.persons)
        self.n_open = profile.scaled(scale, profile.open_auctions)
        self.n_closed = profile.scaled(scale, profile.closed_auctions)
        self.n_categories = profile.scaled(scale, profile.categories)

    # --------------------------------------------------------------- helpers

    def words(self, low: int, high: int) -> str:
        rng = self.rng
        return " ".join(rng.choice(_WORDS) for _ in range(rng.randint(low, high)))

    def element(self, name: str, text_low: int = 1, text_high: int = 4) -> None:
        b = self.builder
        b.start_element(name)
        b.text(self.words(text_low, text_high))
        b.end_element()

    # ----------------------------------------------------------- description

    def text_block(self) -> None:
        """A ``text`` element with mixed keyword/bold/emph content.

        The nesting ``text/emph/keyword`` is what Q15's tail selects; its
        probability mirrors xmlgen's grammar closely enough to keep Q15
        highly selective.
        """
        b = self.builder
        rng = self.rng
        b.start_element("text")
        for _ in range(rng.randint(1, 3)):
            roll = rng.random()
            if roll < 0.55:
                b.text(self.words(2, 6))
            elif roll < 0.70:
                self.element("keyword", 1, 3)
            elif roll < 0.85:
                self.element("bold", 1, 3)
            else:
                b.start_element("emph")
                if rng.random() < 0.45:
                    self.element("keyword", 1, 3)
                else:
                    b.text(self.words(1, 3))
                b.end_element()
        b.end_element()

    def parlist(self, depth: int) -> None:
        b = self.builder
        rng = self.rng
        b.start_element("parlist")
        for _ in range(rng.randint(2, 4)):
            b.start_element("listitem")
            nest = (
                depth < self.profile.max_parlist_depth
                and rng.random() < self.profile.nested_parlist_probability
            )
            if nest:
                self.parlist(depth + 1)
            else:
                self.text_block()
            b.end_element()
        b.end_element()

    def description(self) -> None:
        b = self.builder
        b.start_element("description")
        if self.rng.random() < self.profile.parlist_probability:
            self.parlist(1)
        else:
            self.text_block()
        b.end_element()

    # -------------------------------------------------------------- sections

    def item(self, item_id: int) -> None:
        b = self.builder
        rng = self.rng
        b.start_element("item", [("id", f"item{item_id}")])
        self.element("location")
        self.element("quantity", 1, 1)
        self.element("name", 2, 4)
        b.start_element("payment")
        b.text(rng.choice(["Cash", "Creditcard", "Money order"]))
        b.end_element()
        self.description()
        self.element("shipping", 2, 5)
        for _ in range(rng.randint(1, 3)):
            b.start_element(
                "incategory",
                [("category", f"category{rng.randrange(self.n_categories)}")],
            )
            b.end_element()
        b.start_element("mailbox")
        for _ in range(rng.randint(0, 2)):
            b.start_element("mail")
            self.element("from", 2, 3)
            self.element("to", 2, 3)
            self.element("date", 1, 1)
            self.text_block()
            b.end_element()
        b.end_element()
        b.end_element()

    def person(self, person_id: int) -> None:
        b = self.builder
        rng = self.rng
        b.start_element("person", [("id", f"person{person_id}")])
        self.element("name", 2, 2)
        b.start_element("emailaddress")
        b.text(f"mailto:user{person_id}@site.example")
        b.end_element()
        if rng.random() < 0.5:
            self.element("phone", 1, 1)
        if rng.random() < 0.6:
            b.start_element("address")
            self.element("street", 2, 3)
            self.element("city", 1, 1)
            self.element("country", 1, 1)
            self.element("zipcode", 1, 1)
            b.end_element()
        if rng.random() < 0.3:
            self.element("homepage", 1, 1)
        if rng.random() < 0.4:
            self.element("creditcard", 1, 1)
        if rng.random() < 0.7:
            b.start_element("profile", [("income", str(rng.randint(10000, 100000)))])
            for _ in range(rng.randint(0, 3)):
                b.start_element(
                    "interest",
                    [("category", f"category{rng.randrange(self.n_categories)}")],
                )
                b.end_element()
            if rng.random() < 0.5:
                self.element("education", 1, 2)
            b.start_element("business")
            b.text(rng.choice(["Yes", "No"]))
            b.end_element()
            if rng.random() < 0.6:
                self.element("age", 1, 1)
            b.end_element()
        if rng.random() < 0.4:
            b.start_element("watches")
            for _ in range(rng.randint(1, 3)):
                b.start_element(
                    "watch",
                    [("open_auction", f"open_auction{rng.randrange(self.n_open)}")],
                )
                b.end_element()
            b.end_element()
        b.end_element()

    def annotation(self) -> None:
        b = self.builder
        b.start_element("annotation")
        self.element("author", 2, 2)
        self.description()
        self.element("happiness", 1, 1)
        b.end_element()

    def open_auction(self, auction_id: int) -> None:
        b = self.builder
        rng = self.rng
        b.start_element("open_auction", [("id", f"open_auction{auction_id}")])
        self.element("initial", 1, 1)
        if rng.random() < 0.4:
            self.element("reserve", 1, 1)
        for _ in range(rng.randint(0, 4)):
            b.start_element("bidder")
            self.element("date", 1, 1)
            self.element("time", 1, 1)
            b.start_element(
                "personref", [("person", f"person{rng.randrange(self.n_persons)}")]
            )
            b.end_element()
            self.element("increase", 1, 1)
            b.end_element()
        self.element("current", 1, 1)
        if rng.random() < 0.3:
            self.element("privacy", 1, 1)
        b.start_element("itemref", [("item", f"item{rng.randrange(self.n_items)}")])
        b.end_element()
        b.start_element("seller", [("person", f"person{rng.randrange(self.n_persons)}")])
        b.end_element()
        self.annotation()
        self.element("quantity", 1, 1)
        b.start_element("type")
        b.text(rng.choice(["Regular", "Featured", "Dutch"]))
        b.end_element()
        b.start_element("interval")
        self.element("start", 1, 1)
        self.element("end", 1, 1)
        b.end_element()
        b.end_element()

    def closed_auction(self) -> None:
        b = self.builder
        rng = self.rng
        b.start_element("closed_auction")
        b.start_element("seller", [("person", f"person{rng.randrange(self.n_persons)}")])
        b.end_element()
        b.start_element("buyer", [("person", f"person{rng.randrange(self.n_persons)}")])
        b.end_element()
        b.start_element("itemref", [("item", f"item{rng.randrange(self.n_items)}")])
        b.end_element()
        self.element("price", 1, 1)
        self.element("date", 1, 1)
        self.element("quantity", 1, 1)
        b.start_element("type")
        b.text(rng.choice(["Regular", "Featured", "Dutch"]))
        b.end_element()
        self.annotation()
        b.end_element()

    def category(self, category_id: int) -> None:
        b = self.builder
        b.start_element("category", [("id", f"category{category_id}")])
        self.element("name", 1, 3)
        self.description()
        b.end_element()

    # ------------------------------------------------------------------ run

    def run(self) -> LogicalTree:
        b = self.builder
        b.start_element("site")

        b.start_element("regions")
        remaining = self.n_items
        next_id = 0
        for index, (region, fraction) in enumerate(_REGIONS):
            count = (
                remaining
                if index == len(_REGIONS) - 1
                else min(remaining, round(self.n_items * fraction))
            )
            remaining -= count
            b.start_element(region)
            for _ in range(count):
                self.item(next_id)
                next_id += 1
            b.end_element()
        b.end_element()

        b.start_element("categories")
        for i in range(self.n_categories):
            self.category(i)
        b.end_element()

        b.start_element("catgraph")
        for _ in range(self.n_categories):
            b.start_element(
                "edge",
                [
                    ("from", f"category{self.rng.randrange(self.n_categories)}"),
                    ("to", f"category{self.rng.randrange(self.n_categories)}"),
                ],
            )
            b.end_element()
        b.end_element()

        b.start_element("people")
        for i in range(self.n_persons):
            self.person(i)
        b.end_element()

        b.start_element("open_auctions")
        for i in range(self.n_open):
            self.open_auction(i)
        b.end_element()

        b.start_element("closed_auctions")
        for _ in range(self.n_closed):
            self.closed_auction()
        b.end_element()

        b.end_element()
        return b.finish()


def generate_xmark(
    scale: float = 0.1,
    tags: TagDictionary | None = None,
    seed: int = 0,
    profile: XMarkProfile | None = None,
) -> LogicalTree:
    """Generate an XMark-shaped document at scaling factor ``scale``."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return _Generator(scale, seed, profile or XMarkProfile(), tags).run()
