"""The paper's benchmark queries (Table 2).

Notes on fidelity:

* Q6' is the paper's variant of XMark Q6 with an aggregation over the
  regions: ``count(/site/regions//item)``.
* Q7 counts descriptions, annotations and email addresses.  The paper
  prints the last path as ``/site//email``; the XMark DTD's element is
  ``emailaddress``, which is what our generator (like xmlgen) emits, so
  the query here uses ``emailaddress``.  The selectivity is the same.
* Q15 is the long, highly selective child path into closed-auction
  annotations, ending in a ``text()`` node test.  The paper's rendering
  of the tail is garbled by typesetting; this is the XMark original.
"""

Q6_PRIME = "count(/site/regions//item)"

Q7 = (
    "count(/site//description)"
    "+count(/site//annotation)"
    "+count(/site//emailaddress)"
)

Q15 = (
    "/site/closed_auctions/closed_auction/annotation/description"
    "/parlist/listitem/parlist/listitem/text/emph/keyword/text()"
)

#: (experiment id, paper label, query string)
PAPER_QUERIES: list[tuple[str, str, str]] = [
    ("q6", "Q6'", Q6_PRIME),
    ("q7", "Q7", Q7),
    ("q15", "Q15", Q15),
]
