"""repro — Cost-Sensitive Reordering of Navigational Primitives.

A complete, simulation-backed reproduction of Kanne, Brantner &
Moerkotte, "Cost-Sensitive Reordering of Navigational Primitives"
(SIGMOD 2005): the partial-path-instance algebra (XStep, XAssembly,
XSchedule, XScan) over a Natix-style clustered tree store, a simulated
disk with asynchronous I/O, and the XMark workloads of the paper's
evaluation.

Quickstart::

    from repro import Database
    from repro.xmark import generate_xmark

    db = Database(buffer_pages=256)
    tree = generate_xmark(scale=0.1, tags=db.tags)
    db.add_tree(tree, "xmark")
    for plan in ("simple", "xschedule", "xscan"):
        r = db.execute("count(/site/regions//item)", doc="xmark", plan=plan)
        print(plan, r.value, f"{r.total_time:.3f}s")
"""

from repro.axes import Axis
from repro.engine import Database, Result
from repro.exec import (
    BatchOutcome,
    CalibrationStore,
    DeleteOp,
    ExecutionEnvironment,
    InsertOp,
    QuerySession,
    SetValueOp,
    run_batch,
)
from repro.obs import TraceEvent, TraceSummary, Tracer, format_metrics
from repro.errors import (
    BudgetExceededError,
    DiskProgressError,
    IOError_,
    PageReadError,
    PlanError,
    ReproError,
    RequestLostError,
    SimulatedCrashError,
    StorageError,
    StoreCorruptError,
    UnsupportedQueryError,
    WalCorruptError,
    XPathSyntaxError,
    XmlSyntaxError,
)
from repro.algebra.context import (
    DegradationEvent,
    DegradationReport,
    EvalOptions,
    ExecutionBudget,
)
from repro.sim.costmodel import ChooserCostModel, CostModel
from repro.sim.disk import DiskGeometry, SchedulingPolicy
from repro.sim.faults import (
    CRASH_STEPS,
    PROFILES,
    CrashInjector,
    CrashPoint,
    FaultPlan,
    FaultProfile,
    RetryPolicy,
    fault_profile,
)
from repro.storage.importer import ClusterPolicy, ImportOptions
from repro.storage.synopsis import ClusterSynopsis
from repro.storage.wal import RecoveryReport, WriteAheadLog, recover_store
from repro.xpath.compile import PlanKind

__version__ = "1.0.0"

__all__ = [
    "Database",
    "Result",
    "ExecutionEnvironment",
    "QuerySession",
    "CalibrationStore",
    "BatchOutcome",
    "run_batch",
    "InsertOp",
    "DeleteOp",
    "SetValueOp",
    "WriteAheadLog",
    "RecoveryReport",
    "recover_store",
    "CrashPoint",
    "CrashInjector",
    "CRASH_STEPS",
    "Tracer",
    "TraceEvent",
    "TraceSummary",
    "format_metrics",
    "Axis",
    "EvalOptions",
    "ExecutionBudget",
    "DegradationEvent",
    "DegradationReport",
    "FaultProfile",
    "FaultPlan",
    "RetryPolicy",
    "fault_profile",
    "PROFILES",
    "CostModel",
    "ChooserCostModel",
    "DiskGeometry",
    "SchedulingPolicy",
    "ImportOptions",
    "ClusterPolicy",
    "ClusterSynopsis",
    "PlanKind",
    "ReproError",
    "StorageError",
    "StoreCorruptError",
    "WalCorruptError",
    "SimulatedCrashError",
    "XmlSyntaxError",
    "XPathSyntaxError",
    "UnsupportedQueryError",
    "PlanError",
    "IOError_",
    "PageReadError",
    "RequestLostError",
    "DiskProgressError",
    "BudgetExceededError",
    "__version__",
]
