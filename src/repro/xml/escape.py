"""XML serialization: the inverse of the parser.

Used by tests (round-trip property: ``parse(serialize(tree)) == tree``)
and by the document-export example the paper's outlook section mentions.
"""

from __future__ import annotations

from repro.model.tree import Kind, LogicalTree


# C0 control characters must round-trip as character references: emitted
# raw, a control like \r makes a text node whitespace-only *before* the
# parser decodes entities, so re-import silently drops it.  Tab and
# newline stay literal in text (they survive the whitespace test inside
# non-empty text and read better); attributes escape every control so the
# value is safe on a single source line.
_TEXT_CONTROLS = {
    i: f"&#{i};" for i in range(0x20) if i not in (ord("\t"), ord("\n"))
}
_ATTR_CONTROLS = {i: f"&#{i};" for i in range(0x20)}


def escape_text(text: str) -> str:
    """Escape character data for element content.

    ``>`` is always escaped, so a literal ``]]>`` in a text node can
    never form a CDATA-section terminator in the output.
    """
    escaped = text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    return escaped.translate(_TEXT_CONTROLS)


def escape_attribute(value: str) -> str:
    """Escape an attribute value for double-quoted serialization."""
    escaped = value.replace("&", "&amp;").replace("<", "&lt;").replace('"', "&quot;")
    return escaped.translate(_ATTR_CONTROLS)


def serialize(tree: LogicalTree, node: int | None = None, indent: bool = False) -> str:
    """Serialize ``tree`` (or the subtree at ``node``) back to XML text."""
    out: list[str] = []
    roots = list(tree.element_children(tree.root)) if node is None else [node]
    for root in roots:
        _serialize_node(tree, root, out, 0, indent)
    return "".join(out)


def _serialize_node(
    tree: LogicalTree, node: int, out: list[str], depth: int, indent: bool
) -> None:
    kind = tree.kind_of(node)
    pad = "  " * depth if indent else ""
    newline = "\n" if indent else ""
    if kind == Kind.TEXT:
        out.append(pad + escape_text(tree.value_of(node) or "") + newline)
        return
    if kind == Kind.ATTRIBUTE:
        return  # attributes are emitted with their owner's start tag
    name = tree.tag_name(node)
    attrs = "".join(
        f' {tree.tag_name(a)}="{escape_attribute(tree.value_of(a) or "")}"'
        for a in tree.attributes(node)
    )
    content = [c for c in tree.element_children(node)]
    if not content:
        out.append(f"{pad}<{name}{attrs}/>{newline}")
        return
    out.append(f"{pad}<{name}{attrs}>{newline}")
    for child in content:
        _serialize_node(tree, child, out, depth + 1, indent)
    out.append(f"{pad}</{name}>{newline}")
