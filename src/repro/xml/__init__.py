"""From-scratch XML frontend.

A small, strict XML parser sufficient for database import workloads:
elements, attributes, character data, CDATA sections, comments,
processing instructions, and the five predefined entities plus numeric
character references.  DTDs are recognised and skipped.
"""

from repro.xml.parser import parse_document, parse_into
from repro.xml.escape import escape_attribute, escape_text, serialize

__all__ = [
    "parse_document",
    "parse_into",
    "escape_text",
    "escape_attribute",
    "serialize",
]
