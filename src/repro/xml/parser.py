"""A small, strict, from-scratch XML parser.

Supports the subset of XML 1.0 needed for database import: elements,
attributes (quoted with ``"`` or ``'``), character data, CDATA sections,
comments, processing instructions, the five predefined entities
(``&amp; &lt; &gt; &quot; &apos;``) and numeric character references
(``&#...;`` / ``&#x...;``).  An XML declaration and a DOCTYPE without an
internal subset are recognised and skipped.  Namespace prefixes are kept
as part of the tag name (no namespace processing), matching how the
paper's tag alphabet treats names as opaque labels.

Parsing is event-driven into a :class:`repro.model.builder.TreeBuilder`,
so document size is bounded by the tree representation, not by an
intermediate DOM.
"""

from __future__ import annotations

from repro.errors import XmlSyntaxError
from repro.model.builder import TreeBuilder
from repro.model.tags import TagDictionary
from repro.model.tree import LogicalTree

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_:")
_NAME_CHARS = _NAME_START | set("0123456789.-")


class _Scanner:
    """Character-level cursor over the document text."""

    __slots__ = ("text", "pos", "length")

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < self.length else ""

    def take(self) -> str:
        ch = self.text[self.pos]
        self.pos += 1
        return ch

    def match(self, literal: str) -> bool:
        if self.text.startswith(literal, self.pos):
            self.pos += len(literal)
            return True
        return False

    def expect(self, literal: str, context: str) -> None:
        if not self.match(literal):
            raise XmlSyntaxError(f"expected {literal!r} in {context}", self.pos)

    def skip_whitespace(self) -> None:
        text, pos, length = self.text, self.pos, self.length
        while pos < length and text[pos] in " \t\r\n":
            pos += 1
        self.pos = pos

    def read_name(self) -> str:
        start = self.pos
        if self.eof() or self.text[self.pos] not in _NAME_START:
            raise XmlSyntaxError("expected a name", self.pos)
        pos, text, length = self.pos + 1, self.text, self.length
        while pos < length and text[pos] in _NAME_CHARS:
            pos += 1
        self.pos = pos
        return text[start:pos]

    def read_until(self, terminator: str, context: str) -> str:
        end = self.text.find(terminator, self.pos)
        if end < 0:
            raise XmlSyntaxError(f"unterminated {context}", self.pos)
        chunk = self.text[self.pos : end]
        self.pos = end + len(terminator)
        return chunk


def _decode_entities(raw: str, scanner_pos: int) -> str:
    """Resolve entity and character references in ``raw``."""
    if "&" not in raw:
        return raw
    out: list[str] = []
    i = 0
    n = len(raw)
    while i < n:
        ch = raw[i]
        if ch != "&":
            out.append(ch)
            i += 1
            continue
        end = raw.find(";", i + 1)
        if end < 0:
            raise XmlSyntaxError("unterminated entity reference", scanner_pos + i)
        body = raw[i + 1 : end]
        if body.startswith("#x") or body.startswith("#X"):
            try:
                out.append(chr(int(body[2:], 16)))
            except ValueError:
                raise XmlSyntaxError(f"bad character reference &{body};", scanner_pos + i)
        elif body.startswith("#"):
            try:
                out.append(chr(int(body[1:], 10)))
            except ValueError:
                raise XmlSyntaxError(f"bad character reference &{body};", scanner_pos + i)
        elif body in _PREDEFINED_ENTITIES:
            out.append(_PREDEFINED_ENTITIES[body])
        else:
            raise XmlSyntaxError(f"unknown entity &{body};", scanner_pos + i)
        i = end + 1
    return "".join(out)


def _parse_attributes(scanner: _Scanner) -> list[tuple[str, str]]:
    attributes: list[tuple[str, str]] = []
    seen: set[str] = set()
    while True:
        scanner.skip_whitespace()
        ch = scanner.peek()
        if ch in (">", "/", "?", ""):
            return attributes
        name = scanner.read_name()
        if name in seen:
            raise XmlSyntaxError(f"duplicate attribute {name!r}", scanner.pos)
        seen.add(name)
        scanner.skip_whitespace()
        scanner.expect("=", f"attribute {name!r}")
        scanner.skip_whitespace()
        quote = scanner.peek()
        if quote not in ('"', "'"):
            raise XmlSyntaxError(f"attribute {name!r} value must be quoted", scanner.pos)
        scanner.take()
        raw = scanner.read_until(quote, f"attribute {name!r} value")
        if "<" in raw:
            raise XmlSyntaxError(f"literal '<' in attribute {name!r}", scanner.pos)
        attributes.append((name, _decode_entities(raw, scanner.pos)))


def _skip_prolog(scanner: _Scanner) -> None:
    """Consume the XML declaration, DOCTYPE, comments and PIs before the root."""
    while True:
        scanner.skip_whitespace()
        if scanner.match("<?"):
            scanner.read_until("?>", "processing instruction")
        elif scanner.match("<!--"):
            scanner.read_until("-->", "comment")
        elif scanner.match("<!DOCTYPE"):
            depth = 1
            while depth > 0:
                if scanner.eof():
                    raise XmlSyntaxError("unterminated DOCTYPE", scanner.pos)
                ch = scanner.take()
                if ch == "<":
                    depth += 1
                elif ch == ">":
                    depth -= 1
        else:
            return


def parse_into(text: str, builder: TreeBuilder, keep_whitespace_text: bool = False) -> None:
    """Parse ``text`` and feed events into ``builder``.

    Whitespace-only text nodes between elements are dropped unless
    ``keep_whitespace_text`` is set — document-database import convention.
    """
    scanner = _Scanner(text)
    _skip_prolog(scanner)
    if scanner.eof() or scanner.peek() != "<":
        raise XmlSyntaxError("expected root element", scanner.pos)
    depth = 0
    started = False
    while not scanner.eof():
        if scanner.peek() == "<":
            if scanner.match("<!--"):
                scanner.read_until("-->", "comment")
                continue
            if scanner.match("<![CDATA["):
                if depth == 0:
                    raise XmlSyntaxError("CDATA outside the root element", scanner.pos)
                builder.text(scanner.read_until("]]>", "CDATA section"))
                continue
            if scanner.match("<?"):
                scanner.read_until("?>", "processing instruction")
                continue
            if scanner.match("</"):
                position = scanner.pos
                name = scanner.read_name()
                scanner.skip_whitespace()
                scanner.expect(">", f"end tag </{name}>")
                try:
                    builder.end_element(name)
                except Exception as exc:
                    raise XmlSyntaxError(str(exc), position) from None
                depth -= 1
                if depth == 0:
                    break
                continue
            scanner.expect("<", "tag")
            if started and depth == 0:
                raise XmlSyntaxError("content after the root element", scanner.pos)
            name = scanner.read_name()
            attributes = _parse_attributes(scanner)
            if scanner.match("/>"):
                builder.start_element(name, attributes)
                builder.end_element(name)
                if depth == 0:
                    started = True
                    break
            else:
                scanner.expect(">", f"start tag <{name}>")
                builder.start_element(name, attributes)
                depth += 1
                started = True
        else:
            start = scanner.pos
            end = scanner.text.find("<", start)
            if end < 0:
                end = scanner.length
            raw = scanner.text[start:end]
            scanner.pos = end
            if depth == 0:
                if raw.strip():
                    raise XmlSyntaxError("text outside the root element", start)
                continue
            if raw.strip() or keep_whitespace_text:
                builder.text(_decode_entities(raw, start))
    if depth != 0:
        raise XmlSyntaxError("unexpected end of document", scanner.pos)
    scanner.skip_whitespace()
    while scanner.match("<!--"):
        scanner.read_until("-->", "comment")
        scanner.skip_whitespace()
    if not scanner.eof():
        raise XmlSyntaxError("content after the root element", scanner.pos)


def parse_document(
    text: str,
    tags: TagDictionary | None = None,
    keep_whitespace_text: bool = False,
) -> LogicalTree:
    """Parse an XML document string into a :class:`LogicalTree`."""
    builder = TreeBuilder(tags)
    parse_into(text, builder, keep_whitespace_text=keep_whitespace_text)
    return builder.finish()
