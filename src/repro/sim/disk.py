"""Simulated disk device with an on-controller request queue.

The paper's performance argument rests on three physical facts:

1. random page accesses pay a seek (distance-dependent) plus rotational
   latency, while sequential accesses pay only transfer time;
2. a queue of outstanding asynchronous requests lets the controller
   reorder them to minimise head movement (SCSI tagged command queuing,
   Sec. 3.7);
3. a single sequential scan is the cheapest way to touch every page.

This module models exactly those three facts.  Pages are laid out linearly
on a logical track; the seek curve is the classic square-root-of-distance
model; requests are served one at a time by a controller that picks the
next request from its queue according to a :class:`SchedulingPolicy`.

The device keeps its own timeline (``busy_until``) which is merged with the
CPU clock by the caller: synchronous reads block the CPU, asynchronous
requests let disk service overlap CPU work.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass

from repro.errors import DiskProgressError
from repro.sim.faults import FaultPlan, Outcome
from repro.sim.stats import Stats


class SchedulingPolicy(enum.Enum):
    """How the controller picks the next request from its queue."""

    FIFO = "fifo"  #: strict submission order (no reordering)
    SSTF = "sstf"  #: shortest seek time first
    CLOOK = "clook"  #: circular elevator (ascending sweep, wrap around)


@dataclass(frozen=True, slots=True)
class DiskGeometry:
    """Physical parameters of the simulated device.

    The defaults model a circa-2005 7200 rpm SCSI drive: ~0.8 ms
    track-to-track seek, ~12 ms full-stroke seek, 4.17 ms revolution
    (2 ms average rotational latency charged per non-sequential access)
    and ~60 MB/s sequential transfer.
    """

    page_size: int = 8192  #: bytes per page; the unit of I/O and clustering
    min_seek: float = 0.0008  #: seconds; track-to-track settle time
    seek_factor: float = 7.0e-5  #: seconds per sqrt(page distance)
    full_seek: float = 0.012  #: seconds; cap for the seek curve
    rotational_latency: float = 0.0026  #: seconds; charged per random access
    #: bytes/second effective page-granular streaming rate; lower than raw
    #: media bandwidth because every page read pays per-command controller
    #: and DMA overhead
    transfer_rate: float = 20.0e6

    @property
    def transfer_time(self) -> float:
        """Seconds to transfer one page once the head is positioned."""
        return self.page_size / self.transfer_rate

    def seek_time(self, distance: int) -> float:
        """Seconds to move the head ``distance`` pages (0 => no seek)."""
        if distance <= 0:
            return 0.0
        return min(self.full_seek, self.min_seek + self.seek_factor * math.sqrt(distance))


class Request:
    """One outstanding page-read request."""

    __slots__ = ("page", "submit_time", "start_time", "done_time", "seq", "outcome")

    def __init__(self, page: int, submit_time: float, seq: int) -> None:
        self.page = page
        self.submit_time = submit_time
        self.start_time: float | None = None
        self.done_time: float | None = None
        self.seq = seq
        #: physical outcome, decided by the fault plan at service start
        self.outcome: Outcome = Outcome.OK

    @property
    def failed(self) -> bool:
        return self.outcome is Outcome.ERROR

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request(page={self.page}, submit={self.submit_time:.6f}, "
            f"done={self.done_time}, outcome={self.outcome.value})"
        )


class DiskDevice:
    """Event-driven disk: submit requests, advance time, pop completions.

    The device never looks into the future: a service can only start at a
    time ``s`` choosing among requests already submitted at ``s``.  This is
    what makes the asynchronous-queue reordering honest — the benefit of a
    deep queue is that more candidates are visible when the head frees up.
    """

    __slots__ = (
        "geometry",
        "policy",
        "stats",
        "tracer",
        "faults",
        "head",
        "busy_until",
        "_pending",
        "_in_flight",
        "_completed",
        "_seq",
    )

    def __init__(
        self,
        geometry: DiskGeometry | None = None,
        policy: SchedulingPolicy = SchedulingPolicy.SSTF,
        stats: Stats | None = None,
        faults: FaultPlan | None = None,
        tracer=None,
    ) -> None:
        self.geometry = geometry or DiskGeometry()
        self.policy = policy
        self.stats = stats if stats is not None else Stats()
        self.tracer = tracer
        #: fault plan consulted per service attempt; None = perfect disk
        self.faults = faults
        #: page number the head is positioned at (page following the last read)
        self.head = 0
        self.busy_until = 0.0
        self._pending: list[Request] = []
        self._in_flight: Request | None = None
        self._completed: deque[Request] = deque()
        self._seq = 0

    # ------------------------------------------------------------------ API

    def submit(self, page: int, now: float) -> Request:
        """Queue a read of ``page`` at simulated time ``now``."""
        if page < 0:
            raise ValueError(f"negative page number: {page}")
        req = Request(page, now, self._seq)
        self._seq += 1
        self._pending.append(req)
        self.stats.io_requests += 1
        if self.tracer is not None:
            self.tracer.count("io_requests")
            self.tracer.event(now, "disk", "enqueue", page=page)
        return req

    def queued(self, page: int) -> bool:
        """True if a request for ``page`` is pending or in flight."""
        if self._in_flight is not None and self._in_flight.page == page:
            return True
        return any(r.page == page for r in self._pending)

    def outstanding(self) -> int:
        """Number of requests submitted but not yet retrievable."""
        return len(self._pending) + (1 if self._in_flight is not None else 0)

    def pop_completed(self, now: float) -> Request | None:
        """Return one completed request (oldest completion first), or None.

        Advances the device's internal service simulation up to ``now``
        first, so everything that physically finished by ``now`` is
        retrievable.
        """
        self._advance(now)
        if self._completed:
            return self._completed.popleft()
        return None

    def run_until_completion(self, now: float) -> float | None:
        """Let the disk run (possibly past ``now``) until a completion exists.

        Returns the simulated time at which the oldest unretrieved
        completion became available, or ``None`` if no requests are
        outstanding.  The caller is expected to block the CPU clock until
        the returned time and then call :meth:`pop_completed`.
        """
        self._advance(now)
        while not self._completed:
            if self._in_flight is not None:
                done_time = self._in_flight.done_time
                if done_time is None:
                    raise DiskProgressError(
                        "in-flight request lost its completion time",
                        (self._in_flight.page,),
                        self.busy_until,
                    )
                self._advance(done_time)
            elif self._pending:
                start = max(self.busy_until, min(r.submit_time for r in self._pending))
                # force one service step at its start time
                self._advance(start)
                if (
                    self._in_flight is None
                    and not self._completed
                    and self._pending
                ):
                    raise DiskProgressError(
                        "disk failed to make progress",
                        tuple(r.page for r in self._pending),
                        start,
                    )
            else:
                return None
        return self._completed[0].done_time

    # -------------------------------------------------------------- internals

    def _advance(self, t: float) -> None:
        """Serve requests whose service can start at or before time ``t``."""
        while True:
            if self._in_flight is not None:
                if self._in_flight.done_time is None:
                    raise DiskProgressError(
                        "in-flight request lost its completion time",
                        (self._in_flight.page,),
                        self.busy_until,
                    )
                if self._in_flight.done_time <= t:
                    if self._in_flight.outcome is Outcome.LOST:
                        # serviced, but the completion notification vanished:
                        # the caller only finds out via its request timeout
                        self.stats.lost_requests += 1
                        if self.tracer is not None:
                            self.tracer.count("lost_requests")
                            self.tracer.event(
                                self._in_flight.done_time,
                                "disk",
                                "completion-lost",
                                page=self._in_flight.page,
                            )
                    else:
                        self._completed.append(self._in_flight)
                    self._in_flight = None
                else:
                    return
            if not self._pending:
                return
            start = max(self.busy_until, min(r.submit_time for r in self._pending))
            if start > t:
                return
            candidates = [r for r in self._pending if r.submit_time <= start]
            req = self._pick(candidates)
            self._pending.remove(req)
            self._start_service(req, start, len(candidates))

    def _start_service(self, req: Request, start: float, queue_depth: int) -> None:
        geo = self.geometry
        tracer = self.tracer
        distance = abs(req.page - self.head)
        if distance == 0:
            # head already positioned: streaming read, transfer only
            duration = geo.transfer_time
            self.stats.sequential_reads += 1
            if tracer is not None:
                tracer.count("sequential_reads")
        else:
            rotational = geo.rotational_latency
            if self.policy is not SchedulingPolicy.FIFO and queue_depth > 1:
                # Rotational-position optimisation: with several tagged
                # commands outstanding, the on-disk controller starts with
                # the request whose sectors reach the head first.  The
                # expected wait is the minimum of `depth` uniform rotation
                # offsets, floored at half the average latency (command
                # setup and settling bound the achievable gain).
                gain = max(0.7, 2.0 / (min(queue_depth, 16) + 1))
                rotational = geo.rotational_latency * gain
            duration = geo.seek_time(distance) + rotational + geo.transfer_time
            self.stats.seeks += 1
            self.stats.seek_distance += distance
            if tracer is not None:
                tracer.count("seeks")
                tracer.count("seek_distance", distance)
        if self.faults is not None:
            verdict = self.faults.service(req.page)
            req.outcome = verdict.outcome
            if verdict.slow_factor != 1.0:
                duration *= verdict.slow_factor
                self.stats.slow_services += 1
                if tracer is not None:
                    tracer.count("slow_services")
        req.start_time = start
        req.done_time = start + duration
        self.head = req.page + 1
        self.busy_until = req.done_time
        self.stats.pages_read += 1
        if tracer is not None:
            tracer.count("pages_read")
            tracer.cluster_read(req.page)
            tracer.event(
                start,
                "disk",
                "service",
                page=req.page,
                dur=duration,
                args={"outcome": req.outcome.value, "distance": distance},
            )
        self._in_flight = req

    def _pick(self, candidates: list[Request]) -> Request:
        if len(candidates) == 1:
            return candidates[0]
        if self.policy is SchedulingPolicy.FIFO:
            return min(candidates, key=lambda r: r.seq)
        if self.policy is SchedulingPolicy.SSTF:
            return min(candidates, key=lambda r: (abs(r.page - self.head), r.seq))
        if self.policy is SchedulingPolicy.CLOOK:
            ahead = [r for r in candidates if r.page >= self.head]
            pool = ahead if ahead else candidates
            return min(pool, key=lambda r: (r.page, r.seq))
        raise AssertionError(f"unknown policy {self.policy!r}")
