"""Execution statistics.

A :class:`Stats` object accumulates the physical counters behind the
numbers reported in the paper's evaluation: pages read, seek activity,
buffer behaviour, swizzling, and primitive counts.  Timing (total / CPU /
I/O wait) lives on the :class:`repro.sim.clock.SimClock` and is combined
with the counters into a :class:`repro.engine.Result` by the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


@dataclass(slots=True)
class Stats:
    """Mutable counter bundle for one query execution (or one component).

    All counters start at zero; operators and the storage layer increment
    them as side effects.  ``merge`` adds another bundle in, which the
    benchmarks use to aggregate across runs.
    """

    # I/O layer
    io_requests: int = 0
    #: logical page-read operations issued by the engine; fault-recovery
    #: retries of the same read do *not* recharge it (contrast
    #: ``pages_read``, which counts physical service attempts) — this is
    #: the dimension ``ExecutionBudget.max_pages`` meters
    pages_requested: int = 0
    pages_read: int = 0
    seeks: int = 0
    seek_distance: int = 0
    sequential_reads: int = 0
    async_requests: int = 0
    sync_requests: int = 0

    # fault injection and recovery (see repro.sim.faults)
    io_errors: int = 0  #: failed service attempts delivered to the I/O system
    retries: int = 0  #: resubmissions after an error or a timeout
    timeouts: int = 0  #: requests declared lost after the deadline
    lost_requests: int = 0  #: completions dropped by the fault plan
    slow_services: int = 0  #: latency-spiked service attempts
    backoff_wait: float = 0.0  #: simulated seconds of scheduled retry backoff
    slo_violations: int = 0  #: completions that blew the latency SLO
    sidelined_clusters: int = 0  #: clusters deprioritized after an SLO/IO event

    # buffer manager
    buffer_hits: int = 0
    buffer_misses: int = 0
    evictions: int = 0
    swizzles: int = 0
    unswizzles: int = 0

    # navigation / algebra
    intra_hops: int = 0
    node_tests: int = 0
    instances_created: int = 0
    border_crossings_deferred: int = 0
    speculative_instances: int = 0
    merges: int = 0
    duplicates_suppressed: int = 0
    fallbacks: int = 0
    clusters_visited: int = 0
    synopsis_clusters_pruned: int = 0  #: clusters XScan skipped via the synopsis
    #: per-step extensions dropped via the synopsis: queue requests
    #: XSchedule declined to enqueue, and (page, step) speculation
    #: rounds XScan skipped on pages it still had to read
    synopsis_entries_pruned: int = 0
    #: whole location paths the path summary refuted at compile time
    #: (the plan ran as a constant-empty result: zero pages requested)
    paths_refuted: int = 0
    #: clusters skipped *only* thanks to the path-summary postings —
    #: counted on top of (never instead of) ``synopsis_clusters_pruned``,
    #: which keeps its synopsis-only semantics
    pathsummary_clusters_pruned: int = 0
    #: per-step extensions dropped only thanks to the postings (same
    #: attribution rule as ``pathsummary_clusters_pruned``)
    pathsummary_entries_pruned: int = 0

    def merge(self, other: "Stats") -> None:
        """Add every counter of ``other`` into this bundle."""
        for f in fields(self):
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))

    def snapshot(self) -> "Stats":
        """An independent copy of the current counter values."""
        return Stats(**self.as_dict())

    def diff(self, earlier: "Stats") -> "Stats":
        """Counter-wise ``self - earlier`` (the activity since ``earlier``).

        Used by warm execution sessions to attribute per-run counters on a
        shared, long-lived runtime: snapshot before the run, diff after.
        """
        return Stats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    def as_dict(self) -> dict[str, float]:
        """Return a plain ``{name: value}`` dictionary of all counters."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def reset(self) -> None:
        """Zero every counter in place."""
        for f in fields(self):
            setattr(self, f.name, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {k: v for k, v in self.as_dict().items() if v}
        return f"Stats({nonzero})"
