"""CPU cost constants for the primitives of the evaluation engine.

The paper reports measured CPU seconds of a C++ runtime (Natix).  Our
runtime is a simulator, so CPU time is *modeled*: each physical primitive
executed by the engine charges a constant to the simulated clock.  The
constants below were calibrated so that the CPU/total breakdown of Table 3
lands in the same regime as the paper (CPU fractions of roughly 10-30% for
navigation-bound plans and 60-80% for the scan plan).

All values are in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True, slots=True)
class CostModel:
    """Per-primitive CPU costs charged by the engine.

    Attributes
    ----------
    swizzle:
        Translating a NodeID into a buffer-frame pointer.  Requires a
        buffer-manager hash table lookup with latch acquisition (Sec. 3.6),
        which is why it is an order of magnitude more expensive than an
        intra-cluster hop.
    unswizzle:
        Converting a pointer back into a NodeID.  Cheap (Sec. 3.6).
    intra_hop:
        Following one intra-cluster edge (slot-to-slot within a page).
    node_test:
        Evaluating a node test (tag-set membership) on one node.
    instance_op:
        Creating or copying one partial path instance tuple.
    set_op:
        One insert/lookup in the main-memory structures R, S of XAssembly
        or a duplicate-elimination hash table.
    queue_op:
        One insert/remove on XSchedule's queue Q.
    iterator_call:
        Overhead of one ``next()`` crossing between operators.
    page_register:
        Registering a page with the buffer after I/O completes (frame
        bookkeeping + record directory decoding), charged once per miss.
    io_submit:
        CPU cost of issuing one I/O request to the kernel/controller.
    """

    swizzle: float = 15.0e-6
    unswizzle: float = 0.5e-6
    intra_hop: float = 3.5e-6
    node_test: float = 1.2e-6
    instance_op: float = 4.0e-6
    set_op: float = 5.0e-6
    queue_op: float = 2.5e-6
    iterator_call: float = 2.0e-6
    page_register: float = 100e-6
    io_submit: float = 8e-6

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every constant multiplied by ``factor``.

        Useful for sensitivity analysis (e.g. modeling a faster CPU).
        """
        return CostModel(
            swizzle=self.swizzle * factor,
            unswizzle=self.unswizzle * factor,
            intra_hop=self.intra_hop * factor,
            node_test=self.node_test * factor,
            instance_op=self.instance_op * factor,
            set_op=self.set_op * factor,
            queue_op=self.queue_op * factor,
            iterator_call=self.iterator_call * factor,
            page_register=self.page_register * factor,
            io_submit=self.io_submit * factor,
        )


#: Default cost model used by :class:`repro.engine.Database` when none is given.
DEFAULT_COST_MODEL = CostModel()


# --------------------------------------------- chooser-side planning model


@dataclass(frozen=True, slots=True)
class ChooserCostModel:
    """Planning-time CPU constants for the AUTO chooser.

    The chooser's historical comparison is pure I/O (transfer vs. seek +
    rotation), but the simulator also charges CPU per primitive — a scan
    node-tests every record in the store while XSchedule only processes
    the path's candidates, so at high buffer hit rates the CPU term
    decides.  These four constants let the chooser price that in:

    * ``scan_cpu_per_node`` × document nodes + ``scan_overhead`` is
      added to the sequential side;
    * ``sched_cpu_per_node`` × estimated visited nodes +
      ``sched_overhead`` is added to the random side.

    The defaults are zero (pure-I/O comparison, the historical
    behaviour).  Real values come from :func:`fit_chooser_model`, which
    regresses them from *observed* simulated runs — closing the loop the
    querytorque dossier shows open-loop cost models lose.
    """

    scan_cpu_per_node: float = 0.0
    scan_overhead: float = 0.0
    sched_cpu_per_node: float = 0.0
    sched_overhead: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """JSON-serialisable form (persisted in the validation artifact)."""
        return {
            "scan_cpu_per_node": self.scan_cpu_per_node,
            "scan_overhead": self.scan_overhead,
            "sched_cpu_per_node": self.sched_cpu_per_node,
            "sched_overhead": self.sched_overhead,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ChooserCostModel":
        return cls(
            scan_cpu_per_node=float(payload.get("scan_cpu_per_node", 0.0)),
            scan_overhead=float(payload.get("scan_overhead", 0.0)),
            sched_cpu_per_node=float(payload.get("sched_cpu_per_node", 0.0)),
            sched_overhead=float(payload.get("sched_overhead", 0.0)),
        )


@dataclass(frozen=True, slots=True)
class ChooserSample:
    """One observed run used to calibrate the chooser.

    ``io_cost`` is the chooser's *pure-I/O* prediction for the plan that
    ran; the fit explains the residual ``observed_total - io_cost`` as a
    linear function of ``work_nodes`` (document nodes for a scan,
    estimated visited nodes for a schedule).
    """

    plan: str  #: "xscan" or "xschedule"
    work_nodes: float
    io_cost: float
    observed_total: float


def _fit_line(points: list[tuple[float, float]]) -> tuple[float, float]:
    """Closed-form least squares ``y ~ a*x + b`` with ``a`` clamped >= 0.

    A negative per-node CPU slope is physically meaningless (it would
    mean processing more nodes is free); the intercept may go negative —
    it then corrects a systematic overestimate in the I/O term.
    """
    n = len(points)
    if n == 0:
        return 0.0, 0.0
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    var = sum((x - mean_x) ** 2 for x, _ in points)
    if var <= 0.0:
        return 0.0, mean_y
    slope = sum((x - mean_x) * (y - mean_y) for x, y in points) / var
    slope = max(0.0, slope)
    return slope, mean_y - slope * mean_x


def fit_chooser_model(samples: Iterable[ChooserSample]) -> ChooserCostModel:
    """Fit chooser CPU constants from observed runs by least squares.

    Each plan family is fitted independently: the residual of the
    observed simulated total over the predicted I/O cost is regressed
    against the family's work-node count.  Families without samples keep
    their zero defaults (the fit degrades gracefully to the pure-I/O
    comparison).
    """
    scan_points: list[tuple[float, float]] = []
    sched_points: list[tuple[float, float]] = []
    for sample in samples:
        point = (sample.work_nodes, sample.observed_total - sample.io_cost)
        if sample.plan == "xscan":
            scan_points.append(point)
        elif sample.plan == "xschedule":
            sched_points.append(point)
    scan_cpu, scan_overhead = _fit_line(scan_points)
    sched_cpu, sched_overhead = _fit_line(sched_points)
    return ChooserCostModel(
        scan_cpu_per_node=scan_cpu,
        scan_overhead=scan_overhead,
        sched_cpu_per_node=sched_cpu,
        sched_overhead=sched_overhead,
    )
