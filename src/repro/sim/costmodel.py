"""CPU cost constants for the primitives of the evaluation engine.

The paper reports measured CPU seconds of a C++ runtime (Natix).  Our
runtime is a simulator, so CPU time is *modeled*: each physical primitive
executed by the engine charges a constant to the simulated clock.  The
constants below were calibrated so that the CPU/total breakdown of Table 3
lands in the same regime as the paper (CPU fractions of roughly 10-30% for
navigation-bound plans and 60-80% for the scan plan).

All values are in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class CostModel:
    """Per-primitive CPU costs charged by the engine.

    Attributes
    ----------
    swizzle:
        Translating a NodeID into a buffer-frame pointer.  Requires a
        buffer-manager hash table lookup with latch acquisition (Sec. 3.6),
        which is why it is an order of magnitude more expensive than an
        intra-cluster hop.
    unswizzle:
        Converting a pointer back into a NodeID.  Cheap (Sec. 3.6).
    intra_hop:
        Following one intra-cluster edge (slot-to-slot within a page).
    node_test:
        Evaluating a node test (tag-set membership) on one node.
    instance_op:
        Creating or copying one partial path instance tuple.
    set_op:
        One insert/lookup in the main-memory structures R, S of XAssembly
        or a duplicate-elimination hash table.
    queue_op:
        One insert/remove on XSchedule's queue Q.
    iterator_call:
        Overhead of one ``next()`` crossing between operators.
    page_register:
        Registering a page with the buffer after I/O completes (frame
        bookkeeping + record directory decoding), charged once per miss.
    io_submit:
        CPU cost of issuing one I/O request to the kernel/controller.
    """

    swizzle: float = 15.0e-6
    unswizzle: float = 0.5e-6
    intra_hop: float = 3.5e-6
    node_test: float = 1.2e-6
    instance_op: float = 4.0e-6
    set_op: float = 5.0e-6
    queue_op: float = 2.5e-6
    iterator_call: float = 2.0e-6
    page_register: float = 100e-6
    io_submit: float = 8e-6

    def scaled(self, factor: float) -> "CostModel":
        """Return a copy with every constant multiplied by ``factor``.

        Useful for sensitivity analysis (e.g. modeling a faster CPU).
        """
        return CostModel(
            swizzle=self.swizzle * factor,
            unswizzle=self.unswizzle * factor,
            intra_hop=self.intra_hop * factor,
            node_test=self.node_test * factor,
            instance_op=self.instance_op * factor,
            set_op=self.set_op * factor,
            queue_op=self.queue_op * factor,
            iterator_call=self.iterator_call * factor,
            page_register=self.page_register * factor,
            io_submit=self.io_submit * factor,
        )


#: Default cost model used by :class:`repro.engine.Database` when none is given.
DEFAULT_COST_MODEL = CostModel()
