"""Asynchronous I/O subsystem (paper Sec. 3.7).

The interface the paper expects from the DBMS:

* issue requests for cluster (page) loads *without waiting* for them;
* a separate call retrieves completed requests, blocking if necessary.

This module adapts the :class:`repro.sim.disk.DiskDevice` to that
interface and wires the disk timeline into the CPU clock: issuing a
request charges a small CPU cost; retrieving a completion blocks the CPU
clock until the disk delivers (accounted as I/O wait).
"""

from __future__ import annotations

from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.disk import DiskDevice, Request
from repro.sim.stats import Stats


class AsyncIOSystem:
    """Issue/retrieve interface over the simulated disk."""

    def __init__(
        self,
        disk: DiskDevice,
        clock: SimClock,
        costs: CostModel,
        stats: Stats | None = None,
    ) -> None:
        self.disk = disk
        self.clock = clock
        self.costs = costs
        self.stats = stats if stats is not None else disk.stats
        self._requested_pages: set[int] = set()
        self._early: list[int] = []

    # ------------------------------------------------------------------ async

    def request(self, page: int) -> bool:
        """Asynchronously request ``page``.

        Returns True if a new request was issued, False if one for the same
        page is already outstanding (the subsystem coalesces duplicates,
        like an OS would for the same block).
        """
        if page in self._requested_pages:
            return False
        self.clock.work(self.costs.io_submit)
        self.disk.submit(page, self.clock.now)
        self._requested_pages.add(page)
        self.stats.async_requests += 1
        return True

    def try_get_completion(self) -> int | None:
        """Return the page number of a completed request, or None.

        Never blocks; only surfaces requests that physically completed by
        the current simulated time.
        """
        req = self.disk.pop_completed(self.clock.now)
        if req is None:
            return None
        self._finish(req)
        return req.page

    def get_completion(self) -> int | None:
        """Return a completed request's page, blocking the CPU if needed.

        Returns None only when there are no outstanding requests at all.
        """
        req = self.disk.pop_completed(self.clock.now)
        if req is None:
            done_at = self.disk.run_until_completion(self.clock.now)
            if done_at is None:
                return None
            self.clock.wait_until(done_at)
            req = self.disk.pop_completed(self.clock.now)
            assert req is not None
        self._finish(req)
        return req.page

    def outstanding(self) -> int:
        """Number of requests issued but not yet retrieved."""
        return len(self._requested_pages)

    # ------------------------------------------------------------------ sync

    def read_sync(self, page: int) -> None:
        """Synchronously read ``page``: submit and block until done.

        Used by the Simple plan (and buffer misses outside the scheduled
        path), where every inter-cluster navigation immediately stalls on
        the disk.  If the page was already requested asynchronously this
        blocks until that earlier request delivers it.
        """
        self.stats.sync_requests += 1
        if page not in self._requested_pages:
            self.clock.work(self.costs.io_submit)
            self.disk.submit(page, self.clock.now)
            self._requested_pages.add(page)
        # Drain completions until our page arrives; completions for other
        # pages are re-surfaced to the caller via the pending set, but with
        # a purely synchronous workload the first completion is ours.
        while True:
            req = self.disk.pop_completed(self.clock.now)
            if req is None:
                done_at = self.disk.run_until_completion(self.clock.now)
                if done_at is None:
                    raise AssertionError(f"lost request for page {page}")
                self.clock.wait_until(done_at)
                continue
            self._finish(req, surface=req.page != page)
            if req.page == page:
                return

    # -------------------------------------------------------------- internals

    def _finish(self, req: Request, surface: bool = False) -> None:
        self._requested_pages.discard(req.page)
        if surface:
            # A completion for a different page arrived while waiting
            # synchronously; remember it so callers can still consume it.
            self._early.append(req.page)

    def drain_early_completions(self) -> list[int]:
        """Pages that completed while a sync read was blocking."""
        early = list(self._early)
        self._early.clear()
        return early
