"""Asynchronous I/O subsystem (paper Sec. 3.7) with fault recovery.

The interface the paper expects from the DBMS:

* issue requests for cluster (page) loads *without waiting* for them;
* a separate call retrieves completed requests, blocking if necessary.

This module adapts the :class:`repro.sim.disk.DiskDevice` to that
interface and wires the disk timeline into the CPU clock: issuing a
request charges a small CPU cost; retrieving a completion blocks the CPU
clock until the disk delivers (accounted as I/O wait).

When a :class:`~repro.sim.faults.FaultPlan` is installed on the disk,
this layer is also the recovery machinery:

* a **failed** completion is retried with exponential backoff plus
  deterministic jitter; asynchronous retries are *scheduled* on the disk
  timeline (the CPU does not block during backoff), synchronous ones
  charge the wait to the clock — either way the time is honest and the
  scheduled delay is counted in ``Stats.backoff_wait``;
* a **lost** request (completion never arrives) is detected when its
  deadline (``RetryPolicy.request_timeout``) expires and resubmitted;
* both escalate to typed errors (:class:`~repro.errors.PageReadError`,
  :class:`~repro.errors.RequestLostError`) once the retry cap is hit.
"""

from __future__ import annotations

from repro.errors import PageReadError, RequestLostError
from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.disk import DiskDevice, Request
from repro.sim.faults import RetryPolicy
from repro.sim.stats import Stats


class AsyncIOSystem:
    """Issue/retrieve interface over the simulated disk."""

    __slots__ = (
        "disk",
        "clock",
        "costs",
        "stats",
        "retry",
        "tracer",
        "_requested",
        "_attempts",
        "_early",
        "last_latency",
    )

    def __init__(
        self,
        disk: DiskDevice,
        clock: SimClock,
        costs: CostModel,
        stats: Stats | None = None,
        retry: RetryPolicy | None = None,
        tracer=None,
    ) -> None:
        self.disk = disk
        self.clock = clock
        self.costs = costs
        self.stats = stats if stats is not None else disk.stats
        self.retry = retry or RetryPolicy()
        self.tracer = tracer
        #: page -> simulated time of the *first* submission of the
        #: current logical read (resubmissions keep the original time, so
        #: latency and timeouts measure the whole recovery chain)
        self._requested: dict[int, float] = {}
        #: page -> attempts consumed by the current logical read
        self._attempts: dict[int, int] = {}
        self._early: list[int] = []
        #: end-to-end latency (first submit -> retrieval) of the most
        #: recently finished page; the scheduler's latency-SLO input
        self.last_latency = 0.0

    # ------------------------------------------------------------------ async

    def request(self, page: int) -> bool:
        """Asynchronously request ``page``.

        Returns True if a new request was issued, False if one for the same
        page is already outstanding (the subsystem coalesces duplicates,
        like an OS would for the same block).
        """
        if page in self._requested:
            return False
        self.clock.work(self.costs.io_submit)
        self.disk.submit(page, self.clock.now)
        self._requested[page] = self.clock.now
        self._attempts[page] = 1
        self.stats.async_requests += 1
        self.stats.pages_requested += 1
        if self.tracer is not None:
            self.tracer.count("async_requests")
            self.tracer.count("pages_requested")
            self.tracer.event(self.clock.now, "io", "request", page=page)
        return True

    def try_get_completion(self) -> int | None:
        """Return the page number of a completed request, or None.

        Never blocks; only surfaces requests that physically completed by
        the current simulated time.  Failed completions are retried (the
        resubmission is scheduled, not waited on) and reported as None
        until a retry delivers.
        """
        while True:
            req = self.disk.pop_completed(self.clock.now)
            if req is None:
                return None
            if req.failed:
                self._retry_failed(req.page, blocking=False)
                continue
            self._finish(req)
            return req.page

    def get_completion(self) -> int | None:
        """Return a completed request's page, blocking the CPU if needed.

        Returns None only when there are no outstanding requests at all.
        Raises :class:`~repro.errors.PageReadError` /
        :class:`~repro.errors.RequestLostError` when a page exhausts its
        retry budget.
        """
        while True:
            req = self.disk.pop_completed(self.clock.now)
            if req is None:
                done_at = self.disk.run_until_completion(self.clock.now)
                if done_at is None:
                    if not self._requested:
                        return None
                    # the disk went idle with answers still owed: those
                    # requests were lost; resubmit at their deadlines
                    self._resubmit_lost()
                    continue
                self.clock.wait_until(done_at)
                continue
            if req.failed:
                self._retry_failed(req.page, blocking=False)
                continue
            self._finish(req)
            return req.page

    def outstanding(self) -> int:
        """Number of requests issued but not yet retrieved."""
        return len(self._requested)

    def submitted_at(self, page: int) -> float | None:
        """First-submit time of an outstanding request, or None."""
        return self._requested.get(page)

    # ------------------------------------------------------------------ sync

    def read_sync(self, page: int) -> None:
        """Synchronously read ``page``: submit and block until done.

        Used by the Simple plan (and buffer misses outside the scheduled
        path), where every inter-cluster navigation immediately stalls on
        the disk.  If the page was already requested asynchronously this
        blocks until that earlier request delivers it.
        """
        self.stats.sync_requests += 1
        if self.tracer is not None:
            self.tracer.count("sync_requests")
        if page not in self._requested:
            self.clock.work(self.costs.io_submit)
            self.disk.submit(page, self.clock.now)
            self._requested[page] = self.clock.now
            self._attempts[page] = 1
            self.stats.pages_requested += 1
            if self.tracer is not None:
                self.tracer.count("pages_requested")
                self.tracer.event(self.clock.now, "io", "sync-read", page=page)
        # Drain completions until our page arrives; completions for other
        # pages are re-surfaced to the caller via the pending set, but with
        # a purely synchronous workload the first completion is ours.
        while True:
            req = self.disk.pop_completed(self.clock.now)
            if req is None:
                done_at = self.disk.run_until_completion(self.clock.now)
                if done_at is None:
                    self._resubmit_lost()
                    continue
                self.clock.wait_until(done_at)
                continue
            if req.failed:
                # block through the backoff only when it is *our* page;
                # someone else's retry is merely scheduled
                self._retry_failed(req.page, blocking=req.page == page)
                continue
            self._finish(req, surface=req.page != page)
            if req.page == page:
                return

    # -------------------------------------------------------------- recovery

    def _retry_failed(self, page: int, blocking: bool) -> None:
        """Handle a failed completion: backoff + resubmit, or escalate."""
        self.stats.io_errors += 1
        if self.tracer is not None:
            self.tracer.count("io_errors")
        attempts = self._attempts.get(page, 1)
        if attempts > self.retry.max_retries:
            self._requested.pop(page, None)
            self._attempts.pop(page, None)
            raise PageReadError(page, attempts, self.clock.now)
        delay = self.retry.delay(page, attempts)
        self.stats.backoff_wait += delay
        self.stats.retries += 1
        self._attempts[page] = attempts + 1
        if self.tracer is not None:
            self.tracer.count("backoff_wait", delay)
            self.tracer.count("retries")
            self.tracer.io_retry(attempts)
            self.tracer.event(
                self.clock.now,
                "io",
                "retry",
                page=page,
                args={"attempt": attempts, "delay": delay, "blocking": blocking},
            )
        if blocking:
            # the caller needs this page now: the CPU sits out the backoff
            self.clock.wait_until(self.clock.now + delay)
            self.disk.submit(page, self.clock.now)
        else:
            # schedule the resubmission at the end of the backoff window;
            # the disk honours future submit times, so no CPU blocks here
            self.disk.submit(page, self.clock.now + delay)

    def _resubmit_lost(self) -> None:
        """The disk is idle but answers are owed: declare losses, resubmit.

        A loss is only *observable* at the request's deadline, so the
        resubmission is scheduled at ``first_submit + request_timeout``
        (already in the past if the disk was busy elsewhere meanwhile).
        """
        for page in list(self._requested):
            if self.disk.queued(page):
                continue
            first_submit = self._requested[page]
            attempts = self._attempts.get(page, 1)
            self.stats.timeouts += 1
            if self.tracer is not None:
                self.tracer.count("timeouts")
            if attempts > self.retry.max_retries:
                self._requested.pop(page, None)
                self._attempts.pop(page, None)
                raise RequestLostError(page, attempts, self.clock.now)
            deadline = first_submit + attempts * self.retry.request_timeout
            self.stats.retries += 1
            self._attempts[page] = attempts + 1
            if self.tracer is not None:
                self.tracer.count("retries")
                self.tracer.io_retry(attempts)
                self.tracer.event(
                    self.clock.now,
                    "io",
                    "timeout-resubmit",
                    page=page,
                    args={"attempt": attempts, "deadline": deadline},
                )
            self.disk.submit(page, max(self.clock.now, deadline))

    # -------------------------------------------------------------- internals

    def _finish(self, req: Request, surface: bool = False) -> None:
        first_submit = self._requested.pop(req.page, None)
        self._attempts.pop(req.page, None)
        if first_submit is not None:
            self.last_latency = max(0.0, self.clock.now - first_submit)
            if self.tracer is not None:
                self.tracer.event(
                    self.clock.now,
                    "io",
                    "complete",
                    page=req.page,
                    args={"latency": self.last_latency},
                )
        if surface:
            # A completion for a different page arrived while waiting
            # synchronously; remember it so callers can still consume it.
            self._early.append(req.page)

    def drain_early_completions(self) -> list[int]:
        """Pages that completed while a sync read was blocking."""
        early = list(self._early)
        self._early.clear()
        return early
