"""Discrete-event simulation substrate.

The paper measures wall-clock and CPU time on a real machine with a SCSI
disk accessed through ``O_DIRECT``.  This package replaces that physical
substrate with a deterministic discrete-event model:

* :mod:`repro.sim.clock` — the simulated CPU timeline.
* :mod:`repro.sim.costmodel` — per-primitive CPU cost constants.
* :mod:`repro.sim.disk` — a disk device with a seek-distance cost curve,
  rotational latency, sequential-transfer detection and an on-controller
  request queue that can reorder asynchronous requests (FIFO / SSTF /
  C-LOOK), standing in for SCSI tagged command queuing.
* :mod:`repro.sim.iosys` — the asynchronous I/O subsystem interface the
  paper assumes in Sec. 3.7 (issue requests without waiting; retrieve
  completions separately).
* :mod:`repro.sim.stats` — counters and timing breakdowns reported by the
  benchmarks.
"""

from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.disk import DiskDevice, DiskGeometry, SchedulingPolicy
from repro.sim.iosys import AsyncIOSystem
from repro.sim.stats import Stats

__all__ = [
    "SimClock",
    "CostModel",
    "DiskDevice",
    "DiskGeometry",
    "SchedulingPolicy",
    "AsyncIOSystem",
    "Stats",
]
