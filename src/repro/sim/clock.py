"""Simulated time.

All times in the simulation are expressed in (fractional) seconds.  The
clock tracks the CPU timeline; the disk keeps its own internal timeline and
the two are merged whenever the CPU blocks on an I/O completion, which is
how asynchronous I/O overlaps computation and disk service in this model.

Besides the current time, the clock accumulates two mutually exclusive
buckets that together always sum to ``now``:

* ``cpu_time`` — time spent executing (charged via :meth:`SimClock.work`),
* ``io_wait`` — time spent blocked waiting for the disk
  (charged via :meth:`SimClock.wait_until`).

These are exactly the "total" and "CPU" columns of Table 3 in the paper
(``total = cpu_time + io_wait``).
"""

from __future__ import annotations


class SimClock:
    """A monotonically advancing simulated CPU clock."""

    __slots__ = ("now", "cpu_time", "io_wait")

    def __init__(self) -> None:
        self.now = 0.0
        self.cpu_time = 0.0
        self.io_wait = 0.0

    def work(self, seconds: float) -> None:
        """Advance the clock by ``seconds`` of CPU work."""
        if seconds < 0.0:
            raise ValueError(f"negative work duration: {seconds}")
        self.now += seconds
        self.cpu_time += seconds

    def wait_until(self, t: float) -> None:
        """Block (idle) until simulated time ``t``.

        If ``t`` is in the past, this is a no-op: the event we waited for
        already happened while the CPU was doing other work.
        """
        if t > self.now:
            self.io_wait += t - self.now
            self.now = t

    def checkpoint(self) -> tuple[float, float, float]:
        """Return ``(now, cpu_time, io_wait)`` for differential measurement."""
        return (self.now, self.cpu_time, self.io_wait)

    def since(self, mark: tuple[float, float, float]) -> tuple[float, float, float]:
        """Return elapsed ``(total, cpu, io_wait)`` since ``mark``."""
        return (self.now - mark[0], self.cpu_time - mark[1], self.io_wait - mark[2])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimClock(now={self.now:.6f}, cpu={self.cpu_time:.6f}, "
            f"io_wait={self.io_wait:.6f})"
        )
