"""Deterministic fault injection for the simulated I/O stack.

The paper's robustness argument (Sec. 5.4.6, Sec. 6) is that a
navigation engine must stay *correct* and predictably cheap when the
physical layer misbehaves.  This module supplies the misbehaviour: a
:class:`FaultPlan` decides, per physical service attempt of a page, if
the read fails transiently, completes but loses its completion
notification, or suffers a latency spike.  The disk consults the plan in
``_start_service``; everything above (retry, backoff, resubmission,
degradation) lives in :mod:`repro.sim.iosys` and the algebra.

Two properties make fault runs benchmarkable:

* **Determinism** — every decision is a pure function of
  ``(profile.seed, page, service_number)`` through a cryptographic hash,
  so the same seed reproduces byte-identical executions (and
  :class:`~repro.sim.stats.Stats` snapshots) regardless of platform.
* **Bounded bursts** — consecutive injected errors/losses per page are
  capped (``error_burst``/``lost_burst``), so any page is readable
  within a known number of attempts and a retry cap above the burst cap
  guarantees recovery.  Pages listed in ``dead_pages`` ignore the cap
  and fail their first ``dead_services`` attempts (or forever when
  ``None``) — the hook for hard-failure testing.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, replace
from typing import BinaryIO

from repro.errors import ReproError, SimulatedCrashError


def _unit(seed: int, page: int, n: int, salt: str) -> float:
    """Deterministic uniform draw in [0, 1) from (seed, page, n, salt).

    Hash-based rather than a stateful RNG so a decision never depends on
    the order in which *other* pages were serviced — two runs that touch
    a page the same number of times see identical faults for it.
    """
    digest = hashlib.blake2b(
        f"{seed}:{page}:{n}:{salt}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / 2**64


class Outcome(enum.Enum):
    """Physical outcome of one service attempt."""

    OK = "ok"  #: the read completed and was delivered
    ERROR = "error"  #: the read failed (media error); delivered as failed
    LOST = "lost"  #: serviced, but the completion notification vanished


@dataclass(frozen=True, slots=True)
class ServiceVerdict:
    """What the fault plan decided for one service attempt."""

    outcome: Outcome = Outcome.OK
    slow_factor: float = 1.0  #: service-duration multiplier (latency spike)


@dataclass(frozen=True, slots=True)
class FaultProfile:
    """Declarative description of a fault workload (hashable, reusable).

    Rates are per *service attempt*; bursts bound how many consecutive
    attempts on one page may be hit by the same fault class.
    """

    name: str = "custom"
    seed: int = 0
    error_rate: float = 0.0  #: probability of a transient read error
    error_burst: int = 2  #: max consecutive injected errors per page
    slow_rate: float = 0.0  #: probability of a latency spike
    slow_factor: float = 20.0  #: duration multiplier under a spike
    lost_rate: float = 0.0  #: probability the completion is lost
    lost_burst: int = 2  #: max consecutive losses per page
    dead_pages: frozenset[int] = frozenset()  #: pages that fail hard
    #: how many leading service attempts of a dead page fail;
    #: ``None`` = the page never recovers
    dead_services: int | None = None

    def __post_init__(self) -> None:
        for field_name in ("error_rate", "slow_rate", "lost_rate"):
            rate = getattr(self, field_name)
            if not 0.0 <= rate <= 1.0:
                raise ReproError(f"{field_name} must be in [0, 1], got {rate}")
        if self.slow_factor < 1.0:
            raise ReproError(f"slow_factor must be >= 1, got {self.slow_factor}")

    @property
    def active(self) -> bool:
        """True if this profile can inject anything at all."""
        return bool(
            self.error_rate or self.slow_rate or self.lost_rate or self.dead_pages
        )


class FaultPlan:
    """Per-execution fault state over one :class:`FaultProfile`.

    A fresh plan is instantiated per execution context (see
    :meth:`repro.exec.environment.ExecutionEnvironment.fresh_context`),
    so every cold run replays the same fault sequence for the same seed.
    """

    __slots__ = (
        "profile",
        "_services",
        "_error_run",
        "_lost_run",
        "injected_errors",
        "injected_losses",
        "injected_spikes",
    )

    def __init__(self, profile: FaultProfile) -> None:
        self.profile = profile
        self._services: dict[int, int] = {}  #: page -> physical attempts so far
        self._error_run: dict[int, int] = {}  #: page -> consecutive errors
        self._lost_run: dict[int, int] = {}
        self.injected_errors = 0
        self.injected_losses = 0
        self.injected_spikes = 0

    def service(self, page: int) -> ServiceVerdict:
        """Decide the fate of the next service attempt for ``page``."""
        p = self.profile
        n = self._services.get(page, 0) + 1
        self._services[page] = n
        if page in p.dead_pages and (p.dead_services is None or n <= p.dead_services):
            self.injected_errors += 1
            return ServiceVerdict(outcome=Outcome.ERROR)
        if (
            p.lost_rate
            and self._lost_run.get(page, 0) < p.lost_burst
            and _unit(p.seed, page, n, "lost") < p.lost_rate
        ):
            self._lost_run[page] = self._lost_run.get(page, 0) + 1
            self.injected_losses += 1
            return ServiceVerdict(outcome=Outcome.LOST)
        self._lost_run[page] = 0
        if (
            p.error_rate
            and self._error_run.get(page, 0) < p.error_burst
            and _unit(p.seed, page, n, "err") < p.error_rate
        ):
            self._error_run[page] = self._error_run.get(page, 0) + 1
            self.injected_errors += 1
            return ServiceVerdict(outcome=Outcome.ERROR)
        self._error_run[page] = 0
        if p.slow_rate and _unit(p.seed, page, n, "slow") < p.slow_rate:
            self.injected_spikes += 1
            return ServiceVerdict(slow_factor=p.slow_factor)
        return ServiceVerdict()

    def services_of(self, page: int) -> int:
        """Physical service attempts seen for ``page`` so far."""
        return self._services.get(page, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan({self.profile.name!r}, errors={self.injected_errors}, "
            f"losses={self.injected_losses}, spikes={self.injected_spikes})"
        )


# --------------------------------------------------------------- crashes
#
# Where the fault profiles above model a *misbehaving but running*
# physical layer, a crash point models the process dying outright in the
# middle of a durability step.  The same determinism rules apply: a
# crash point is a pure function of (step, occurrence count), so a
# kill-and-recover sweep replays byte-identical crashes on every run.

#: Durability steps a :class:`CrashPoint` may target.  Write-shaped
#: steps (``wal-append``, ``page-write``) honour ``torn_fraction``:
#: that fraction of the payload reaches the file before the crash,
#: leaving a torn write for recovery to detect.
CRASH_WAL_APPEND = "wal-append"  #: appending one WAL entry
CRASH_PAGE_WRITE = "page-write"  #: writing one page-sized checkpoint chunk
CRASH_CHECKPOINT_TEMP = "checkpoint-temp"  #: temp image written + fsynced
CRASH_CHECKPOINT_RENAME = "checkpoint-rename"  #: temp image installed (post-rename)
CRASH_WAL_TRUNCATE = "wal-truncate"  #: resetting the log after a checkpoint
CRASH_UPDATE_APPLY = "update-apply"  #: mid-flight inside a structural update

CRASH_STEPS = (
    CRASH_WAL_APPEND,
    CRASH_PAGE_WRITE,
    CRASH_CHECKPOINT_TEMP,
    CRASH_CHECKPOINT_RENAME,
    CRASH_WAL_TRUNCATE,
    CRASH_UPDATE_APPLY,
)


@dataclass(frozen=True, slots=True)
class CrashPoint:
    """Declarative crash: die at the ``at``-th occurrence of ``step``.

    ``torn_fraction`` only matters for write-shaped steps: it is the
    fraction of the payload that reaches the file before the process
    dies (0.0 = crash before any byte, 0.5 = a half-written torn entry).
    Values must stay below 1.0 — a fully written payload is not a crash
    *during* the write.
    """

    step: str
    at: int = 1
    torn_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.step not in CRASH_STEPS:
            known = ", ".join(CRASH_STEPS)
            raise ReproError(f"unknown crash step {self.step!r} (known: {known})")
        if self.at < 1:
            raise ReproError(f"crash occurrence must be >= 1, got {self.at}")
        if not 0.0 <= self.torn_fraction < 1.0:
            raise ReproError(
                f"torn_fraction must be in [0, 1), got {self.torn_fraction}"
            )


class CrashInjector:
    """Per-run occurrence counters over one :class:`CrashPoint`.

    The durability layer calls :meth:`check` at non-write steps and
    routes payload writes through :meth:`write`; when the configured
    occurrence is reached, :class:`~repro.errors.SimulatedCrashError`
    is raised (after tearing the in-flight write, if any).  ``tripped``
    records that the crash fired, so harnesses can assert the sweep
    actually covered the point it configured.
    """

    __slots__ = ("point", "tripped", "_counts")

    def __init__(self, point: CrashPoint) -> None:
        self.point = point
        self.tripped = False
        self._counts: dict[str, int] = {}

    def _hit(self, step: str) -> bool:
        n = self._counts.get(step, 0) + 1
        self._counts[step] = n
        return step == self.point.step and n == self.point.at

    def check(self, step: str) -> None:
        """Count one occurrence of ``step``; die if this is the one."""
        if self._hit(step):
            self.tripped = True
            raise SimulatedCrashError(step, self.point.at)

    def write(self, step: str, out: BinaryIO, data: bytes) -> None:
        """Write ``data`` to ``out``, tearing it at the crash occurrence.

        On the fatal occurrence only ``torn_fraction`` of the payload is
        written (and flushed, so it is really on disk) before the raise;
        on every other occurrence the payload is written whole.
        """
        if not self._hit(step):
            out.write(data)
            return
        self.tripped = True
        torn = int(len(data) * self.point.torn_fraction)
        if torn:
            out.write(data[:torn])
            out.flush()
        raise SimulatedCrashError(step, self.point.at)

    def occurrences(self, step: str) -> int:
        """How many times ``step`` has been counted so far."""
        return self._counts.get(step, 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CrashInjector({self.point!r}, tripped={self.tripped})"


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How :class:`~repro.sim.iosys.AsyncIOSystem` recovers from faults.

    Attributes
    ----------
    max_retries:
        Retries per logical read operation beyond the first attempt.
        Must exceed the fault profile's burst caps for guaranteed
        recovery under transient profiles.
    backoff_base / backoff_factor / backoff_cap:
        Exponential backoff: retry ``i`` waits
        ``min(cap, base * factor**(i-1))`` (plus jitter) simulated
        seconds before resubmitting.
    jitter:
        Fractional deterministic jitter on each backoff delay, drawn
        from the same hash family as the fault decisions.
    request_timeout:
        Deadline after which an unanswered request is declared lost and
        resubmitted (Sec. "lost/stuck requests").
    """

    max_retries: int = 4
    backoff_base: float = 0.002
    backoff_factor: float = 2.0
    backoff_cap: float = 0.05
    jitter: float = 0.25
    request_timeout: float = 0.5

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ReproError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ReproError("backoff delays must be non-negative")
        if self.request_timeout <= 0:
            raise ReproError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )

    def delay(self, page: int, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based) of ``page``."""
        base = min(
            self.backoff_cap, self.backoff_base * self.backoff_factor ** (attempt - 1)
        )
        return base * (1.0 + self.jitter * _unit(0, page, attempt, "jitter"))


#: Shipped fault workloads.  All of them are *recoverable*: burst caps
#: stay below the default retry cap, so every plan returns correct
#: results under every profile (degraded, never wrong).
PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "transient-errors": FaultProfile(name="transient-errors", seed=1, error_rate=0.08),
    "latency-spikes": FaultProfile(
        name="latency-spikes", seed=1, slow_rate=0.08, slow_factor=20.0
    ),
    "lost-requests": FaultProfile(name="lost-requests", seed=1, lost_rate=0.05),
    "mixed": FaultProfile(
        name="mixed", seed=1, error_rate=0.05, slow_rate=0.05, lost_rate=0.03
    ),
}


def fault_profile(spec: str) -> FaultProfile:
    """Resolve a profile spec ``name`` or ``name:seed`` from the registry."""
    name, _, seed_text = spec.partition(":")
    profile = PROFILES.get(name)
    if profile is None:
        known = ", ".join(sorted(PROFILES))
        raise ReproError(f"unknown fault profile {name!r} (known: {known})")
    if seed_text:
        try:
            profile = replace(profile, seed=int(seed_text))
        except ValueError:
            raise ReproError(f"bad fault profile seed {seed_text!r}") from None
    return profile
