"""Abstract syntax of the supported XPath subset."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.axes import Axis


@dataclass(frozen=True)
class NodeTestAst:
    """A node test: named element/attribute, wildcard, or kind test.

    ``kind`` is one of ``"name"``, ``"wildcard"``, ``"text"``, ``"node"``,
    ``"comment"``.  ``name`` is set only for ``"name"`` tests.
    """

    kind: str
    name: str | None = None

    def __str__(self) -> str:
        if self.kind == "name":
            return self.name or "?"
        if self.kind == "wildcard":
            return "*"
        return f"{self.kind}()"


@dataclass
class Step:
    """One location step: axis, node test, optional predicates."""

    axis: Axis
    test: NodeTestAst
    predicates: list["Expr"] = field(default_factory=list)

    def __str__(self) -> str:
        preds = "".join(f"[{p}]" for p in self.predicates)
        return f"{self.axis.value}::{self.test}{preds}"


@dataclass
class LocationPath:
    """A location path; ``absolute`` paths start at the document root."""

    absolute: bool
    steps: list[Step]

    def __str__(self) -> str:
        sep = "/" if self.absolute else ""
        return sep + "/".join(str(s) for s in self.steps)

    def __len__(self) -> int:
        """Number of location steps — the paper's ``|pi|``."""
        return len(self.steps)


@dataclass
class PathExpr:
    """A bare location path used as an expression (returns a node set)."""

    path: LocationPath

    def __str__(self) -> str:
        return str(self.path)


@dataclass
class UnionExpr:
    """A union of location paths: ``a | b | c`` (a node set)."""

    paths: list[LocationPath]

    def __str__(self) -> str:
        return " | ".join(str(p) for p in self.paths)


@dataclass
class StringLiteral:
    value: str

    def __str__(self) -> str:
        return f"'{self.value}'"


@dataclass
class Comparison:
    """Equality comparison, as used in predicates: ``@id = "x"``."""

    op: str  #: "=" or "!="
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass
class CountCall:
    """``count(node-set)`` over a path or a union of paths."""

    path: "LocationPath | UnionExpr"

    def __str__(self) -> str:
        return f"count({self.path})"


@dataclass
class NumberLiteral:
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass
class BinaryOp:
    """Arithmetic over numbers: ``+`` or ``-``."""

    op: str
    left: "Expr"
    right: "Expr"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


Expr = Union[
    PathExpr, UnionExpr, CountCall, NumberLiteral, StringLiteral, BinaryOp, Comparison
]
