"""Compilation of parsed queries into physical plans.

Three plan families, exactly the paper's evaluation matrix (Sec. 6.2):

* ``SIMPLE`` — Unnest-Map chain with final duplicate elimination
  (Sec. 5.1);
* ``XSCHEDULE`` — XSchedule -> XStep chain -> XAssembly, asynchronous I/O
  (Sec. 5.3);
* ``XSCAN`` — XScan -> XStep chain -> XAssembly, one sequential scan with
  speculation (Sec. 5.4);
* ``AUTO`` — picks XSCHEDULE or XSCAN with the cost model from
  :mod:`repro.xpath.estimate` (the paper's "future work" chooser).

An orthogonal logical rewrite (Sec. 2 "interoperable with logical
optimization") merges ``descendant-or-self::node()/child::X`` into
``descendant::X``; it can be disabled to exercise the ``//``-prefix
R-optimisation of Sec. 5.4.5.4 instead.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.axes import Axis
from repro.algebra.context import EvalContext, EvalOptions
from repro.algebra.base import Operator
from repro.algebra.misc import (
    ContextScan,
    DuplicateElimination,
    count_results,
    order_results,
    result_nodeids,
)
from repro.algebra.steps import CompiledNodeTest, CompiledStep
from repro.algebra.unnestmap import UnnestMap
from repro.algebra.xassembly import XAssembly
from repro.algebra.xschedule import XSchedule
from repro.algebra.xscan import XScan
from repro.algebra.xstep import XStep
from repro.errors import UnsupportedQueryError
from repro.model.tags import TagDictionary
from repro.sim.disk import DiskGeometry
from repro.storage.nodeid import NodeID
from repro.storage.store import StoredDocument
from repro.algebra.steps import CompiledPredicate
from repro.xpath.ast import (
    BinaryOp,
    Comparison,
    CountCall,
    Expr,
    LocationPath,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
)
from repro.storage.pathsummary import PathPostings
from repro.xpath.estimate import IOCostPrediction, predict_io_costs
from repro.xpath.parser import parse_query
from repro.xpath.rewrite import rewrite_path


def _is_node_set(node: object) -> bool:
    return isinstance(node, CompiledPathPlan) or (
        isinstance(node, tuple) and node and node[0] == "union"
    )


class PlanKind(enum.Enum):
    SIMPLE = "simple"
    XSCHEDULE = "xschedule"
    XSCAN = "xscan"
    #: all of the query's paths share a single sequential scan (the
    #: multi-path extension from the paper's outlook)
    XSCAN_SHARED = "xscan-shared"
    AUTO = "auto"


# -------------------------------------------------------------- step binding


def _compile_steps(
    path: LocationPath, tags: TagDictionary, allow_predicates: bool
) -> list[CompiledStep]:
    steps = []
    for step in path.steps:
        tag_id = None
        if step.test.kind == "name":
            assert step.test.name is not None
            tag_id = tags.lookup(step.test.name)
        test = CompiledNodeTest.compile(step.test.kind, step.axis, tag_id)
        predicates = []
        for predicate in step.predicates:
            if not allow_predicates:
                raise UnsupportedQueryError(
                    "nested predicates produce path instances with more than "
                    "two incomplete ends; only the SIMPLE plan evaluates them"
                )
            predicates.append(_compile_predicate(predicate, tags))
        steps.append(CompiledStep(step.axis, test, predicates))
    return steps


def _compile_predicate(expr: Expr, tags: TagDictionary) -> CompiledPredicate:
    if isinstance(expr, PathExpr):
        if expr.path.absolute:
            raise UnsupportedQueryError("absolute paths in predicates are not supported")
        return CompiledPredicate(_compile_steps(expr.path, tags, allow_predicates=True))
    if isinstance(expr, Comparison):
        left, right = expr.left, expr.right
        if isinstance(right, PathExpr) and isinstance(left, (StringLiteral, NumberLiteral)):
            left, right = right, left
        if not isinstance(left, PathExpr) or not isinstance(
            right, (StringLiteral, NumberLiteral)
        ):
            raise UnsupportedQueryError(
                "predicates support comparisons between a relative path and a literal"
            )
        if left.path.absolute:
            raise UnsupportedQueryError("absolute paths in predicates are not supported")
        literal = (
            right.value
            if isinstance(right, StringLiteral)
            else format(right.value, "g")
        )
        return CompiledPredicate(
            _compile_steps(left.path, tags, allow_predicates=True),
            op=expr.op,
            literal=literal,
        )
    raise UnsupportedQueryError(f"unsupported predicate {expr}")


def _rewrite_descendant(steps: list[CompiledStep]) -> list[CompiledStep]:
    """Merge ``descendant-or-self::node()`` into the following step."""
    out: list[CompiledStep] = []
    i = 0
    merged_axis = {
        Axis.CHILD: Axis.DESCENDANT,
        Axis.DESCENDANT: Axis.DESCENDANT,
        Axis.DESCENDANT_OR_SELF: Axis.DESCENDANT_OR_SELF,
        Axis.SELF: Axis.DESCENDANT_OR_SELF,
    }
    while i < len(steps):
        step = steps[i]
        is_dos_node = (
            step.axis is Axis.DESCENDANT_OR_SELF
            and step.test.is_node_test
            and not step.predicates
        )
        if is_dos_node and i + 1 < len(steps) and steps[i + 1].axis in merged_axis:
            nxt = steps[i + 1]
            out.append(CompiledStep(merged_axis[nxt.axis], nxt.test, nxt.predicates))
            i += 2
        else:
            out.append(step)
            i += 1
    return out


# ------------------------------------------------------------ AUTO resolution


@dataclass(frozen=True)
class AutoChoice:
    """One AUTO resolution, recorded on the compiled query.

    The session's plan cache uses these to revalidate a cached AUTO plan
    against the live feedback store: if resolving ``steps`` today would
    pick a different family than ``choice``, the cached plan is stale
    and the query recompiles (compilation is off the simulated clock, so
    replanning is free in simulated time).
    """

    steps: tuple[CompiledStep, ...]
    choice: str  #: resolved family ("xscan" / "xschedule")
    source: str  #: "estimator", "measured" or "explore"


def resolve_auto(
    document: StoredDocument,
    steps: list[CompiledStep],
    geometry: DiskGeometry,
    options: EvalOptions,
    advisor: object | None = None,
) -> tuple[str, str, IOCostPrediction | None]:
    """Resolve one AUTO path: ``(choice, source, prediction)``.

    The estimator predicts both families' costs (priced with the
    advisor's fitted :class:`~repro.sim.costmodel.ChooserCostModel` when
    one exists); the advisor — a
    :class:`~repro.exec.calibration.CalibrationStore`, or ``None`` when
    calibration is off — may then override the pick with a measured
    outcome or an exploration run.
    """
    model = advisor.model if advisor is not None else None
    prediction = predict_io_costs(
        document,
        steps,
        geometry,
        use_synopsis=options.synopsis,
        queue_depth=options.k_min_queue,
        model=model,
        use_pathsummary=options.pathsummary,
    )
    choice = "xschedule" if prediction is None else prediction.choice
    source = "estimator"
    if advisor is not None:
        advice = advisor.advise(document.name, steps, prediction)
        if advice is not None:
            choice, source = advice
    return choice, source, prediction


# ---------------------------------------------------------------- path plans


@dataclass
class CompiledPathPlan:
    """A location path bound to a document, ready to instantiate."""

    steps: list[CompiledStep]
    kind: PlanKind  #: resolved (never AUTO)
    document: StoredDocument
    descendant_root_opt: bool
    #: the path summary proved the result empty at compile time: the
    #: plan executes as a constant-empty result (zero pages requested)
    refuted: bool = False
    #: per-step cluster postings from the rewrite pass (None when the
    #: summary is absent or ``EvalOptions.pathsummary`` is off)
    postings: PathPostings | None = None

    def build(self, ctx: EvalContext) -> Operator:
        """Instantiate the operator tree for one execution."""
        contexts: list[NodeID] = [self.document.root]
        source: Operator = ContextScan(ctx, contexts)
        if self.kind is PlanKind.SIMPLE:
            top = source
            for index, step in enumerate(self.steps, start=1):
                top = UnnestMap(ctx, top, index, step)
            return DuplicateElimination(ctx, top)
        if self.kind is PlanKind.XSCHEDULE:
            schedule = XSchedule(
                ctx,
                source,
                self.steps,
                document=self.document,
                postings=self.postings,
            )
            top = schedule
            for index, step in enumerate(self.steps, start=1):
                top = XStep(ctx, top, index, step)
            return XAssembly(ctx, top, len(self.steps), schedule=schedule)
        if self.kind is PlanKind.XSCAN:
            scan = XScan(
                ctx, source, self.steps, self.document, postings=self.postings
            )
            top = scan
            for index, step in enumerate(self.steps, start=1):
                top = XStep(ctx, top, index, step)
            return XAssembly(
                ctx,
                top,
                len(self.steps),
                schedule=None,
                descendant_root_opt=self.descendant_root_opt,
            )
        raise UnsupportedQueryError(f"unresolved plan kind {self.kind}")

    def _note_refuted(self, ctx: EvalContext) -> None:
        ctx.stats.paths_refuted += 1
        if ctx.tracer is not None:
            ctx.tracer.count("paths_refuted")

    def run_count(self, ctx: EvalContext) -> int:
        if self.refuted:
            self._note_refuted(ctx)
            return 0
        # idempotent: a no-op when CompiledQuery.execute armed it already
        armed = ctx.arm_budget(ctx.options.budget)
        top = self.build(ctx)
        try:
            return count_results(top, ctx)
        finally:
            if armed:
                ctx.disarm_budget()
            ctx.release()
            ctx.fallback = False

    def run_nodes(self, ctx: EvalContext, ordered: bool = True) -> list[NodeID]:
        if self.refuted:
            self._note_refuted(ctx)
            return []
        armed = ctx.arm_budget(ctx.options.budget)
        try:
            top = self.build(ctx)
            try:
                nids = result_nodeids(top)
            finally:
                ctx.release()
                ctx.fallback = False
            if ordered:
                nids = order_results(ctx, nids)
            return nids
        finally:
            if armed:
                ctx.disarm_budget()


# ------------------------------------------------------------- query plans


@dataclass
class CompiledQuery:
    """An expression with path plans at the leaves."""

    expr: object  #: mirrored AST with CompiledPathPlan leaves
    query: str
    plan_kinds: list[PlanKind]
    shared_scan: bool = False  #: evaluate all paths in one physical scan
    #: AUTO resolutions made during compilation (empty for forced plans);
    #: the session plan cache revalidates these against the feedback store
    auto_choices: list[AutoChoice] = field(default_factory=list)

    def execute(self, ctx: EvalContext) -> tuple[float | None, list[NodeID] | None]:
        """Run the query; returns ``(value, nodes)`` (one of them None).

        Arms the execution budget from ``ctx.options`` for the whole
        query, so multi-path expressions (unions, arithmetic) share one
        allowance instead of getting a fresh one per path.
        """
        armed = ctx.arm_budget(ctx.options.budget)
        try:
            if self.shared_scan:
                return self._execute_shared(ctx)
            if isinstance(self.expr, CompiledPathPlan):
                return None, self.expr.run_nodes(ctx, ordered=True)
            if isinstance(self.expr, tuple) and self.expr[0] == "union":
                from repro.algebra.misc import order_results

                return None, order_results(ctx, self._union_nodes(self.expr, ctx))
            return self._number(self.expr, ctx), None
        finally:
            if armed:
                ctx.disarm_budget()

    def _union_nodes(self, node: tuple, ctx: EvalContext) -> list[NodeID]:
        """Node-set union with duplicate elimination (unordered)."""
        merged: set[NodeID] = set()
        for plan in node[1]:
            merged.update(plan.run_nodes(ctx, ordered=False))
            ctx.charge_set_op()
        return list(merged)

    # ----------------------------------------------------------- explain

    def explain(self) -> str:
        """Human-readable rendering of the physical plan."""
        lines: list[str] = [f"query: {self.query}"]
        if self.shared_scan:
            lines.append("shared sequential scan over all paths")

        def walk(node: object, indent: int) -> None:
            pad = "  " * indent
            if isinstance(node, float):
                lines.append(f"{pad}const {node}")
                return
            if isinstance(node, CompiledPathPlan):
                lines.append(f"{pad}path [{node.kind.value}]")
                self._explain_path(node, lines, indent + 1)
                return
            op, left, right = node  # type: ignore[misc]
            if op == "count":
                lines.append(f"{pad}count")
                walk(left, indent + 1)
            elif op == "union":
                lines.append(f"{pad}union")
                for plan in left:
                    walk(plan, indent + 1)
            else:
                lines.append(f"{pad}{op}")
                walk(left, indent + 1)
                walk(right, indent + 1)

        walk(self.expr, 1)
        return "\n".join(lines)

    @staticmethod
    def _explain_path(plan: "CompiledPathPlan", lines: list[str], indent: int) -> None:
        pad = "  " * indent
        if plan.refuted:
            lines.append(f"{pad}ConstEmpty (path refuted by the path summary)")
            return
        if plan.kind is PlanKind.SIMPLE:
            lines.append(f"{pad}DuplicateElimination")
            for index in range(len(plan.steps), 0, -1):
                step = plan.steps[index - 1]
                predicates = f" [{len(step.predicates)} predicates]" if step.predicates else ""
                lines.append(f"{pad}  UnnestMap({index}: {step.axis.value}){predicates}")
            lines.append(f"{pad}  ContextScan(root)")
            return
        opt = " +//-opt" if plan.descendant_root_opt else ""
        lines.append(f"{pad}XAssembly(|pi|={len(plan.steps)}{opt})")
        for index in range(len(plan.steps), 0, -1):
            step = plan.steps[index - 1]
            lines.append(f"{pad}  XStep({index}: {step.axis.value})")
        io_op = "XSchedule" if plan.kind is PlanKind.XSCHEDULE else "XScan"
        lines.append(f"{pad}  {io_op}")
        lines.append(f"{pad}    ContextScan(root)")

    # ------------------------------------------------------- shared scan

    def _collect_plans(self, node: object, out: list["CompiledPathPlan"]) -> None:
        if isinstance(node, CompiledPathPlan):
            out.append(node)
        elif isinstance(node, list):
            for item in node:
                self._collect_plans(item, out)
        elif isinstance(node, tuple):
            _, left, right = node
            self._collect_plans(left, out)
            if right is not None:
                self._collect_plans(right, out)

    def path_plans(self) -> list["CompiledPathPlan"]:
        """All location-path plans at the leaves of this query."""
        plans: list[CompiledPathPlan] = []
        self._collect_plans(self.expr, plans)
        return plans

    def resolve_with_results(
        self, ctx: EvalContext, by_plan: dict[int, list[NodeID]]
    ) -> tuple[float | None, list[NodeID] | None]:
        """Finish evaluation given each leaf path's (unordered) node set.

        ``by_plan`` maps ``id(plan) -> NodeIDs`` for every plan in
        :meth:`path_plans`; the expression tree above the leaves (counts,
        unions, arithmetic, ordering) is evaluated here.  Used by the
        shared-scan execution path and by batched multi-query execution,
        where one physical scan feeds many queries.
        """
        from repro.algebra.misc import order_results

        def nodes_of(node: object) -> list:
            if isinstance(node, CompiledPathPlan):
                return by_plan[id(node)]
            assert isinstance(node, tuple) and node[0] == "union"
            merged = set()
            for plan in node[1]:
                merged.update(by_plan[id(plan)])
            return list(merged)

        def value_of(node: object) -> float:
            if isinstance(node, float):
                return node
            op, left, right = node  # type: ignore[misc]
            if op == "count":
                ctx.charge_set_op()
                return float(len(nodes_of(left)))
            if op in ("=", "!="):
                equal = value_of(left) == value_of(right)
                return float(equal if op == "=" else not equal)
            lv = value_of(left)
            rv = value_of(right)
            return lv + rv if op == "+" else lv - rv

        if isinstance(self.expr, CompiledPathPlan):
            return None, order_results(ctx, by_plan[id(self.expr)])
        if isinstance(self.expr, tuple) and self.expr[0] == "union":
            return None, order_results(ctx, nodes_of(self.expr))
        return value_of(self.expr), None

    def _execute_shared(self, ctx: EvalContext) -> tuple[float | None, list[NodeID] | None]:
        from repro.algebra.multiscan import shared_scan

        plans = self.path_plans()
        document = plans[0].document
        if any(plan.document is not document for plan in plans):
            raise UnsupportedQueryError("shared scan requires a single document")
        # refuted paths contribute constant-empty result sets and stay
        # out of the physical scan; a query of only refuted paths never
        # touches the store at all
        live = [plan for plan in plans if not plan.refuted]
        by_plan: dict[int, list[NodeID]] = {}
        for plan in plans:
            if plan.refuted:
                plan._note_refuted(ctx)
                by_plan[id(plan)] = []
        if live:
            result_sets = shared_scan(ctx, document, live)
            for plan, nids in zip(live, result_sets):
                by_plan[id(plan)] = nids
        return self.resolve_with_results(ctx, by_plan)

    def _number(self, node: object, ctx: EvalContext) -> float:
        if isinstance(node, float):
            return node
        op, left, right = node  # type: ignore[misc]
        if op == "count":
            if isinstance(left, CompiledPathPlan):
                return float(left.run_count(ctx))
            assert isinstance(left, tuple) and left[0] == "union"
            return float(len(self._union_nodes(left, ctx)))
        if op in ("=", "!="):
            lv = self._number(left, ctx)
            rv = self._number(right, ctx)
            equal = lv == rv
            return float(equal if op == "=" else not equal)
        lv = self._number(left, ctx)
        rv = self._number(right, ctx)
        return lv + rv if op == "+" else lv - rv


def compile_query(
    query: str | Expr,
    document: StoredDocument,
    tags: TagDictionary,
    plan: PlanKind | str = PlanKind.AUTO,
    options: EvalOptions | None = None,
    geometry: DiskGeometry | None = None,
    advisor: object | None = None,
    tracer: object | None = None,
) -> CompiledQuery:
    """Compile ``query`` against ``document`` into an executable plan.

    ``advisor`` (a :class:`~repro.exec.calibration.CalibrationStore`)
    lets AUTO consult measured outcomes; ``tracer`` records one
    ``plan-choice`` event per AUTO resolution.  Both are planning-time
    only — the compiled plan is the same object either way.
    """
    expr = parse_query(query) if isinstance(query, str) else query
    kind = PlanKind(plan) if not isinstance(plan, PlanKind) else plan
    opts = options or EvalOptions()
    geo = geometry or DiskGeometry()
    kinds: list[PlanKind] = []
    auto_choices: list[AutoChoice] = []

    def compile_path(path: LocationPath) -> CompiledPathPlan:
        if not path.absolute:
            # relative queries evaluate from the document root context
            pass
        steps = _compile_steps(path, tags, allow_predicates=kind is PlanKind.SIMPLE)
        starts_with_dos_root = bool(
            path.absolute
            and steps
            and steps[0].axis is Axis.DESCENDANT_OR_SELF
            and steps[0].test.is_node_test
        )
        if opts.rewrite_descendant:
            steps = _rewrite_descendant(steps)
        postings = None
        summary = document.pathsummary if opts.pathsummary else None
        if summary is not None:
            # whole-query rewrite against the path summary: refute the
            # path outright, expand provable // steps into child chains,
            # and derive the operators' cluster postings.  Planning-time
            # only — no simulated time is charged
            outcome = rewrite_path(summary, steps)
            if tracer is not None and (outcome.refuted or outcome.expanded):
                tracer.rewrite_event(
                    str(path),
                    outcome.refuted,
                    outcome.expanded,
                    cardinality=outcome.evaluation.cardinality,
                )
            if outcome.refuted:
                # no plan choice to make: the result is a compile-time
                # constant.  AUTO paths skip resolution entirely (no
                # AutoChoice recorded — there is nothing to revalidate)
                resolved = (
                    PlanKind.XSCHEDULE if kind is PlanKind.AUTO else kind
                )
                kinds.append(resolved)
                path_kind = (
                    PlanKind.XSCAN
                    if resolved is PlanKind.XSCAN_SHARED
                    else resolved
                )
                return CompiledPathPlan(
                    outcome.steps, path_kind, document, False, refuted=True
                )
            steps = outcome.steps
            postings = outcome.postings
        resolved = kind
        if resolved is PlanKind.AUTO:
            choice, source, prediction = resolve_auto(document, steps, geo, opts, advisor)
            resolved = PlanKind(choice)
            auto_choices.append(AutoChoice(tuple(steps), choice, source))
            if tracer is not None:
                tracer.plan_choice_event(
                    choice,
                    source,
                    sequential_cost=(
                        prediction.sequential_cost if prediction is not None else None
                    ),
                    random_cost=(
                        prediction.random_cost if prediction is not None else None
                    ),
                    margin=prediction.margin if prediction is not None else None,
                )
        desc_root_opt = (
            opts.descendant_root_opt
            and resolved in (PlanKind.XSCAN, PlanKind.XSCAN_SHARED)
            and starts_with_dos_root
            and steps
            and steps[0].axis is Axis.DESCENDANT_OR_SELF
            and steps[0].test.is_node_test
            # the opt declares every step-1 junction proven, and those
            # junctions are consumed by the second step.  For downward and
            # upward axes every entry border is provably crossed (contexts
            # exist everywhere under //node()), but a sibling axis enters a
            # plain up-border as a *candidate* crossing — valid only if the
            # exiled subtree root actually has a preceding (resp. following)
            # sibling, which a first/last child does not.  Those junctions
            # need explicit proof, so the opt must stay off.
            and not (len(steps) > 1 and steps[1].axis.is_sibling)
        )
        kinds.append(resolved)
        path_kind = PlanKind.XSCAN if resolved is PlanKind.XSCAN_SHARED else resolved
        return CompiledPathPlan(
            steps, path_kind, document, bool(desc_root_opt), postings=postings
        )

    def walk(node: Expr) -> object:
        if isinstance(node, NumberLiteral):
            return node.value
        if isinstance(node, StringLiteral):
            raise UnsupportedQueryError(
                "string literals are only supported inside predicates"
            )
        if isinstance(node, PathExpr):
            return compile_path(node.path)
        if isinstance(node, UnionExpr):
            return ("union", [compile_path(p) for p in node.paths], None)
        if isinstance(node, CountCall):
            if isinstance(node.path, UnionExpr):
                return ("count", ("union", [compile_path(p) for p in node.path.paths], None), None)
            return ("count", compile_path(node.path), None)
        if isinstance(node, (BinaryOp, Comparison)):
            left = walk(node.left)
            right = walk(node.right)
            if _is_node_set(left) or _is_node_set(right):
                raise UnsupportedQueryError(
                    "node-set operands are only supported inside count() and predicates"
                )
            return (node.op, left, right)
        raise UnsupportedQueryError(f"unsupported expression {node!r}")

    compiled = walk(expr)
    return CompiledQuery(
        expr=compiled,
        query=str(expr),
        plan_kinds=kinds,
        shared_scan=kind is PlanKind.XSCAN_SHARED,
        auto_choices=auto_choices,
    )
