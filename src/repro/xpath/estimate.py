"""Cardinality and I/O estimation for the AUTO plan chooser.

The paper's outlook calls for "a cost model to support the choice of the
I/O-performing operator".  This module provides one: a per-step
cardinality estimator over the schema statistics collected at import
(tag counts, parent-child and ancestor-descendant tag-pair counts), and
an I/O cost comparison between an XSchedule plan (random reads of the
pages the path actually visits) and an XScan plan (a sequential pass over
the whole document).

The estimator tracks the result multiset as a distribution over tags,
which is exact for paths over acyclic schemata like XMark's and a decent
approximation elsewhere.  Upward and sibling steps are estimated crudely
(whole-tag counts), which only makes AUTO conservative for such paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.axes import Axis
from repro.algebra.steps import CompiledStep, UNKNOWN_TAG
from repro.model.tags import DOCUMENT_TAG
from repro.sim.disk import DiskGeometry
from repro.storage.store import DocumentStatistics, StoredDocument


@dataclass(frozen=True)
class PathEstimate:
    """Estimated work of one location path."""

    result_cardinality: float  #: nodes in the final result
    visited_nodes: float  #: node candidates the step operators enumerate
    visited_fraction: float  #: visited_nodes / document nodes


def estimate_path(stats: DocumentStatistics, steps: list[CompiledStep]) -> PathEstimate:
    """Estimate result cardinality and nodes visited for ``steps``."""
    dist: dict[int, float] = {DOCUMENT_TAG: 1.0}
    visited = 1.0
    for step in steps:
        new: dict[int, float] = {}
        pairs = None
        if step.axis in (Axis.CHILD, Axis.ATTRIBUTE):
            pairs = stats.child_pairs
        elif step.axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            pairs = stats.desc_pairs
        if pairs is not None:
            # enumeration of child candidates is intra-cluster (cheap);
            # only the *matching* children may sit in other clusters and
            # cost I/O.  Descendant steps sweep whole subtrees regardless.
            sweeping = step.axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF)
            for (source_tag, target_tag), pair_count in pairs.items():
                weight = dist.get(source_tag)
                if not weight:
                    continue
                # `or 1` (not a .get default): a stored count of 0 must
                # not divide — stale/degenerate statistics should give a
                # crude estimate, never a ZeroDivisionError
                total = stats.tag_counts.get(source_tag) or 1
                reached = pair_count * (weight / total)
                if sweeping:
                    visited += reached
                if _test_allows(step, target_tag):
                    if not sweeping:
                        visited += reached
                    new[target_tag] = new.get(target_tag, 0.0) + reached
            if step.axis is Axis.DESCENDANT_OR_SELF:
                for tag, weight in dist.items():
                    if _test_allows(step, tag):
                        new[tag] = new.get(tag, 0.0) + weight
        elif step.axis is Axis.SELF:
            for tag, weight in dist.items():
                if _test_allows(step, tag):
                    new[tag] = weight
        else:
            # upward / sibling steps: assume every node of an allowed tag
            # may qualify, capped by the current frontier size
            frontier = sum(dist.values())
            for tag, count in stats.tag_counts.items():
                if _test_allows(step, tag):
                    new[tag] = min(float(count), frontier * count / max(1, stats.n_nodes) + 1.0)
            visited += frontier
        dist = new
        if not dist:
            break
    cardinality = sum(dist.values())
    return PathEstimate(
        result_cardinality=cardinality,
        visited_nodes=visited,
        visited_fraction=min(1.0, visited / max(1, stats.n_nodes)),
    )


def _test_allows(step: CompiledStep, tag: int) -> bool:
    if step.test.tag == UNKNOWN_TAG:
        return False
    return step.test.tag is None or step.test.tag == tag


def choose_io_operator(
    document: StoredDocument,
    steps: list[CompiledStep],
    geometry: DiskGeometry,
    use_synopsis: bool = True,
) -> str:
    """Return ``"xscan"`` or ``"xschedule"`` by estimated I/O cost.

    XScan reads every document page at streaming cost; XSchedule reads
    roughly one page per cluster the path's candidate nodes occupy, at
    random-access cost.  The cheaper side wins; ties favour XSchedule
    (no speculative CPU overhead).

    When the document carries a cluster synopsis (and ``use_synopsis``
    is on), the visited-page estimate uses the measured mean cluster
    occupancy instead of a uniform nodes-per-page guess, and is capped
    by the number of clusters that can actually hold a candidate for
    some step — the fix for skewed layouts where a tag concentrates in
    a few clusters but the uniform estimate spreads it evenly.
    """
    stats = document.statistics
    if stats is None:
        return "xschedule"
    estimate = estimate_path(stats, steps)
    n_pages = document.n_pages
    synopsis = document.synopsis if use_synopsis else None
    if synopsis is not None and synopsis.n_clusters:
        nodes_per_page = synopsis.mean_occupancy()
        visited_pages = min(
            float(n_pages),
            float(synopsis.relevant_clusters(steps)),
            estimate.visited_nodes / nodes_per_page,
        )
    else:
        nodes_per_page = max(1.0, stats.n_nodes / max(1, n_pages))
        visited_pages = min(float(n_pages), estimate.visited_nodes / nodes_per_page)
    sequential_cost = n_pages * geometry.transfer_time
    random_unit = (
        geometry.seek_time(max(1, n_pages // 3))
        + geometry.rotational_latency
        + geometry.transfer_time
    )
    random_cost = visited_pages * random_unit
    return "xscan" if sequential_cost < random_cost else "xschedule"
