"""Cardinality and I/O estimation for the AUTO plan chooser.

The paper's outlook calls for "a cost model to support the choice of the
I/O-performing operator".  This module provides one: a per-step
cardinality estimator over the schema statistics collected at import
(tag counts, parent-child and ancestor-descendant tag-pair counts), and
an I/O cost comparison between an XSchedule plan (random reads of the
pages the path actually visits) and an XScan plan (a sequential pass over
the whole document).

The estimator tracks the result multiset as a distribution over tags,
which is exact for paths over acyclic schemata like XMark's and a decent
approximation elsewhere.  Upward and sibling steps are estimated crudely
(whole-tag counts), which only makes AUTO conservative for such paths.

:func:`predict_io_costs` exposes the full prediction (both sides of the
comparison, the visited-page estimate and the decision margin) so the
validation harness (:mod:`repro.xpath.validate`) can score every decision
against the simulator, and so the session-level feedback store
(:mod:`repro.exec.calibration`) can tell a confident choice from a coin
flip.  :func:`choose_io_operator` stays as the thin historical wrapper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.axes import Axis
from repro.algebra.steps import CompiledStep, UNKNOWN_TAG
from repro.model.tags import DOCUMENT_TAG
from repro.sim.disk import DiskGeometry
from repro.storage.pathsummary import PathSummary
from repro.storage.store import DocumentStatistics, StoredDocument


@dataclass(frozen=True)
class PathEstimate:
    """Estimated work of one location path."""

    result_cardinality: float  #: nodes in the final result
    visited_nodes: float  #: node candidates the step operators enumerate
    visited_fraction: float  #: visited_nodes / document nodes


def estimate_path(
    stats: DocumentStatistics,
    steps: list[CompiledStep],
    summary: PathSummary | None = None,
) -> PathEstimate:
    """Estimate result cardinality and nodes visited for ``steps``.

    With a path summary, the whole-path evaluation replaces the per-tag
    random walk outright when it is exact (downward axes, no
    predicates): the summary's per-path counts *are* the true result
    cardinality, and its swept-path counts the true candidates visited.
    Even when the walk still runs (upward/sibling axes, predicates), the
    summary changes absent-tag handling: a tag the document provably
    does not contain contributes cardinality 0 instead of the smoothing
    floors the statistics-only fallback needs to avoid rounding real but
    rare tags down to nothing.
    """
    if summary is not None:
        evaluation = summary.evaluate(steps)
        if evaluation.refuted:
            return PathEstimate(
                result_cardinality=0.0,
                visited_nodes=evaluation.visited,
                visited_fraction=min(
                    1.0, evaluation.visited / max(1, stats.n_nodes)
                ),
            )
        if evaluation.exact:
            assert evaluation.cardinality is not None
            return PathEstimate(
                result_cardinality=evaluation.cardinality,
                visited_nodes=max(1.0, evaluation.visited),
                visited_fraction=min(
                    1.0, max(1.0, evaluation.visited) / max(1, stats.n_nodes)
                ),
            )
    dist: dict[int, float] = {DOCUMENT_TAG: 1.0}
    visited = 1.0
    for step in steps:
        new: dict[int, float] = {}
        pairs = None
        if step.axis in (Axis.CHILD, Axis.ATTRIBUTE):
            pairs = stats.child_pairs
        elif step.axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF):
            pairs = stats.desc_pairs
        if pairs is not None:
            # enumeration of child candidates is intra-cluster (cheap);
            # only the *matching* children may sit in other clusters and
            # cost I/O.  Descendant steps sweep whole subtrees regardless.
            sweeping = step.axis in (Axis.DESCENDANT, Axis.DESCENDANT_OR_SELF)
            for (source_tag, target_tag), pair_count in pairs.items():
                weight = dist.get(source_tag)
                if not weight:
                    continue
                total = stats.tag_counts.get(source_tag, 0)
                if total <= 0:
                    # a zero/absent source count with a live pair count
                    # means degenerate statistics.  With a path summary
                    # the document's structure is known exactly, so the
                    # absent tag contributes nothing; the statistics-only
                    # fallback instead clamps the divisor to 1 — a crude
                    # estimate, never a ZeroDivisionError
                    if summary is not None:
                        continue
                    total = 1
                reached = pair_count * (weight / total)
                if sweeping:
                    visited += reached
                if _test_allows(step, target_tag):
                    if not sweeping:
                        visited += reached
                    new[target_tag] = new.get(target_tag, 0.0) + reached
            if step.axis is Axis.DESCENDANT_OR_SELF:
                for tag, weight in dist.items():
                    # the step enumerates (and tests) every context node
                    # itself, not just its proper descendants
                    visited += weight
                    if _test_allows(step, tag):
                        new[tag] = new.get(tag, 0.0) + weight
        elif step.axis is Axis.SELF:
            for tag, weight in dist.items():
                if _test_allows(step, tag):
                    new[tag] = weight
        else:
            # upward / sibling steps: assume every node of an allowed tag
            # may qualify, capped by the current frontier size.  With a
            # path summary, a zero-count tag is *known* absent and gets
            # exactly 0 (no smoothing floor); the statistics-only
            # fallback keeps the `+ 1.0` floor so single-tag estimates
            # do not round real but rare tags down to nothing
            frontier = sum(dist.values())
            floor = 0.0 if summary is not None else 1.0
            for tag, count in stats.tag_counts.items():
                if count <= 0 and summary is not None:
                    continue
                if _test_allows(step, tag):
                    new[tag] = min(
                        float(count),
                        frontier * count / max(1, stats.n_nodes) + floor,
                    )
            # the per-tag floor keeps single-tag estimates from
            # rounding to zero, but on a wide tag dictionary the sum of
            # those floors can dwarf the incoming frontier; rescale so
            # the fallback never *amplifies* cardinality
            summed = sum(new.values())
            if summed > frontier > 0.0:
                scale = frontier / summed
                for tag in new:
                    new[tag] *= scale
            visited += frontier
        dist = new
        if not dist:
            break
    cardinality = sum(dist.values())
    return PathEstimate(
        result_cardinality=cardinality,
        visited_nodes=visited,
        visited_fraction=min(1.0, visited / max(1, stats.n_nodes)),
    )


def _test_allows(step: CompiledStep, tag: int) -> bool:
    if step.test.tag == UNKNOWN_TAG:
        return False
    return step.test.tag is None or step.test.tag == tag


# --------------------------------------------------------- I/O prediction


@dataclass(frozen=True, slots=True)
class IOCostPrediction:
    """Both sides of the XScan-vs-XSchedule cost comparison.

    ``sequential_io`` / ``random_io`` are the pure I/O terms; the
    ``*_cost`` fields add the CPU terms of a
    :class:`~repro.sim.costmodel.ChooserCostModel` when one was supplied
    (they equal the I/O terms otherwise) and are what the decision
    compares.
    """

    sequential_io: float  #: modeled cost of one sequential pass
    random_io: float  #: modeled cost of random reads of the visited pages
    sequential_cost: float  #: sequential_io + modeled scan CPU
    random_cost: float  #: random_io + modeled navigation CPU
    visited_pages: float  #: pages the XSchedule plan is expected to touch
    document_nodes: float  #: nodes the XScan plan processes (whole store)
    estimate: PathEstimate  #: the cardinality estimate behind the pages

    @property
    def choice(self) -> str:
        """The cheaper side; ties favour XSchedule (no speculative CPU)."""
        return "xscan" if self.sequential_cost < self.random_cost else "xschedule"

    @property
    def margin(self) -> float:
        """Absolute predicted gap between the two sides, in seconds."""
        return abs(self.sequential_cost - self.random_cost)

    @property
    def relative_margin(self) -> float:
        """Margin relative to the cheaper side (0 = dead heat).

        The feedback store treats a decision below its threshold as a
        coin flip worth exploring; anything above is trusted.
        """
        cheaper = min(self.sequential_cost, self.random_cost)
        if cheaper <= 0.0:
            return float("inf")
        return self.margin / cheaper

    def predicted(self, plan: str) -> float:
        """The compared (CPU-adjusted) cost of one plan family."""
        return self.sequential_cost if plan == "xscan" else self.random_cost

    def predicted_io(self, plan: str) -> float:
        """The pure-I/O term of one plan family (the fit's offset base)."""
        return self.sequential_io if plan == "xscan" else self.random_io

    def work_nodes(self, plan: str) -> float:
        """The node count the plan family's CPU term scales with."""
        return self.document_nodes if plan == "xscan" else self.estimate.visited_nodes


def predicted_random_unit(
    geometry: DiskGeometry, n_pages: int, visited_pages: float, queue_depth: int
) -> float:
    """Modeled service time of one random page read under queued I/O.

    XSchedule keeps up to ``queue_depth`` requests outstanding and the
    controller serves them shortest-seek-first, which turns a batch of
    ``b`` random targets spread over ``n_pages`` into an elevator sweep
    with an expected hop of ``n_pages / b`` — *not* the old fixed
    ``n_pages // 3`` average-random-seek guess, which overcharged every
    deep-queue plan (the validation harness audits this against the
    simulator's measured per-layout seek distances).  The rotational
    term mirrors the device's rotational-position optimisation exactly
    (:meth:`repro.sim.disk.DiskDevice._start_service`).
    """
    batch = max(1.0, min(float(queue_depth), visited_pages))
    hop = max(1.0, n_pages / batch)
    rotational = geometry.rotational_latency
    if batch > 1.0:
        rotational *= max(0.7, 2.0 / (min(batch, 16.0) + 1.0))
    return geometry.seek_time(hop) + rotational + geometry.transfer_time


def predict_io_costs(
    document: StoredDocument,
    steps: list[CompiledStep],
    geometry: DiskGeometry,
    use_synopsis: bool = True,
    queue_depth: int = 100,
    model: object | None = None,
    use_pathsummary: bool = True,
) -> IOCostPrediction | None:
    """Predict both plan families' costs for one location path.

    Returns ``None`` when the document carries no statistics (the
    chooser then defaults to XSchedule, matching the historical
    behaviour).  ``queue_depth`` is the plan's ``k_min_queue`` — the
    random-I/O unit cost depends on how deep the scheduler's queue runs.

    When the document carries a cluster synopsis (and ``use_synopsis``
    is on), the visited-page estimate uses the measured mean cluster
    occupancy instead of a uniform nodes-per-page guess, and is capped
    by the number of clusters that can actually hold a candidate for
    some step — the fix for skewed layouts where a tag concentrates in
    a few clusters but the uniform estimate spreads it evenly.  A path
    summary (``use_pathsummary``) tightens both terms further: the
    cardinality estimate becomes exact for downward predicate-free
    paths, and the visited-page cap shrinks to the clusters actually
    posted for some step's candidate paths.
    """
    stats = document.statistics
    if stats is None:
        return None
    summary = document.pathsummary if use_pathsummary else None
    estimate = estimate_path(stats, steps, summary=summary)
    n_pages = document.n_pages
    synopsis = document.synopsis if use_synopsis else None
    posted_pages: float | None = None
    if summary is not None and synopsis is not None:
        # the operators' postings filter only engages alongside the
        # synopsis (transit residues live in its rows), so the pricing
        # cap mirrors that: no posted-pages cap when the synopsis is off
        from repro.storage.pathsummary import PathPostings

        evaluation = summary.evaluate(steps)
        postings = PathPostings.for_steps(summary, steps, evaluation)
        posted_pages = float(postings.relevant_pages())
    if synopsis is not None and synopsis.n_clusters:
        nodes_per_page = synopsis.mean_occupancy()
        visited_pages = min(
            float(n_pages),
            float(synopsis.relevant_clusters(steps)),
            estimate.visited_nodes / nodes_per_page,
        )
    else:
        nodes_per_page = max(1.0, stats.n_nodes / max(1, n_pages))
        visited_pages = min(float(n_pages), estimate.visited_nodes / nodes_per_page)
    if posted_pages is not None:
        visited_pages = min(visited_pages, posted_pages)
    sequential_io = n_pages * geometry.transfer_time
    random_io = visited_pages * predicted_random_unit(
        geometry, n_pages, visited_pages, queue_depth
    )
    sequential_cost = sequential_io
    random_cost = random_io
    document_nodes = float(stats.n_nodes)
    if model is not None:
        sequential_cost += model.scan_cpu_per_node * document_nodes + model.scan_overhead
        random_cost += (
            model.sched_cpu_per_node * estimate.visited_nodes + model.sched_overhead
        )
    return IOCostPrediction(
        sequential_io=sequential_io,
        random_io=random_io,
        sequential_cost=sequential_cost,
        random_cost=random_cost,
        visited_pages=visited_pages,
        document_nodes=document_nodes,
        estimate=estimate,
    )


def choose_io_operator(
    document: StoredDocument,
    steps: list[CompiledStep],
    geometry: DiskGeometry,
    use_synopsis: bool = True,
    queue_depth: int = 100,
    model: object | None = None,
    use_pathsummary: bool = True,
) -> str:
    """Return ``"xscan"`` or ``"xschedule"`` by estimated I/O cost.

    Thin wrapper over :func:`predict_io_costs`; a document without
    statistics picks XSchedule (only pay for what the path touches).
    """
    prediction = predict_io_costs(
        document,
        steps,
        geometry,
        use_synopsis=use_synopsis,
        queue_depth=queue_depth,
        model=model,
        use_pathsummary=use_pathsummary,
    )
    if prediction is None:
        return "xschedule"
    return prediction.choice
