"""Measured-vs-predicted validation of the AUTO plan chooser.

The chooser (:mod:`repro.xpath.estimate`) is a cost-steered decision,
and cost models are notoriously miscalibrated — the querytorque dossier
measures PostgreSQL's at r = -0.028 against actual speedups.  This
module scores *our* chooser against the simulator it is supposed to
predict:

* :func:`validate_query` runs every plan family cold for one query and
  compares what the estimator predicted with what the simulator
  measured — per-decision **regret** (AUTO's total minus the best
  family's total) and per-family **Q-Error**
  (``max(predicted/measured, measured/predicted)``, the standard
  cardinality-estimation accuracy score);
* :func:`validate_many` replays a grid of (database, query) points and
  folds the decisions into a :class:`ValidationReport` (win rate, total
  regret, Q-Error summary);
* :func:`build_store` turns a baseline report's cleanly-attributable
  forced-run timings into a seeded, *fitted*
  :class:`~repro.exec.calibration.CalibrationStore`, so a second
  validation pass measures the chooser **with** calibration;
* :func:`audit_seek_model` compares the random-I/O seek model against
  the simulator's measured per-request seek distance — the audit that
  retired the old fixed ``n_pages // 3`` hop guess.

Everything here drives the public engine API (cold ``Database.execute``
runs), so a validation pass is exactly as reproducible as the benches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.context import EvalOptions
from repro.algebra.steps import CompiledStep
from repro.engine import Database
from repro.errors import UnsupportedQueryError
from repro.exec.calibration import CalibrationStore
from repro.xpath.compile import PlanKind
from repro.xpath.estimate import IOCostPrediction, predict_io_costs

#: the families the chooser decides between (SIMPLE is measured as a
#: reference series but is never an AUTO outcome)
CHOOSER_FAMILIES = ("xscan", "xschedule")

#: every family a validation point measures
ALL_PLANS = ("simple", "xscan", "xschedule")


def q_error(predicted: float, measured: float) -> float:
    """The symmetric under/over-estimation factor (1.0 = perfect)."""
    if predicted <= 0.0 or measured <= 0.0:
        return float("inf")
    return max(predicted / measured, measured / predicted)


# ------------------------------------------------------------ observations


@dataclass(frozen=True)
class Observation:
    """One cleanly-attributable (shape, plan) timing from a forced run.

    Only single-path queries produce these — a multi-path query's leaves
    share one runtime (and its buffer), so their forced total cannot be
    attributed to any one shape.
    """

    doc: str
    steps: tuple[CompiledStep, ...]
    plan: str
    total_time: float
    prediction: IOCostPrediction | None


# -------------------------------------------------------------- decisions


@dataclass
class ChooserDecision:
    """One grid point: every family measured, the AUTO pick scored."""

    query: str  #: the query text
    doc: str
    meta: dict[str, object]  #: grid coordinates (scale, buffers, layout)
    measured: dict[str, float]  #: plan family -> simulated total [s]
    predicted: dict[str, float]  #: family -> summed per-leaf prediction [s]
    q_errors: dict[str, float]  #: family -> Q-Error of the prediction
    choices: list[tuple[str, str]]  #: per-leaf AUTO (choice, source)
    auto_total: float  #: simulated total of the AUTO execution
    best_plan: str  #: cheapest measured chooser family
    best_total: float
    observations: list[Observation] = field(default_factory=list)

    @property
    def win(self) -> bool:
        """True when AUTO matched the best family (float-tolerant)."""
        return self.auto_total <= self.best_total * (1.0 + 1e-9)

    @property
    def regret(self) -> float:
        """Seconds lost to the wrong pick (0 for a win)."""
        return max(0.0, self.auto_total - self.best_total)

    def as_dict(self) -> dict[str, object]:
        return {
            "query": self.query,
            "doc": self.doc,
            **self.meta,
            "measured": dict(self.measured),
            "predicted": dict(self.predicted),
            "q_errors": dict(self.q_errors),
            "choices": [list(pair) for pair in self.choices],
            "auto_total": self.auto_total,
            "best_plan": self.best_plan,
            "best_total": self.best_total,
            "regret": self.regret,
            "win": self.win,
        }


@dataclass
class ValidationReport:
    """A set of scored decisions with the headline aggregates."""

    decisions: list[ChooserDecision]

    @property
    def wins(self) -> int:
        return sum(1 for d in self.decisions if d.win)

    @property
    def win_rate(self) -> float:
        return self.wins / len(self.decisions) if self.decisions else 1.0

    @property
    def total_regret(self) -> float:
        return sum(d.regret for d in self.decisions)

    def q_error_summary(self) -> dict[str, dict[str, float]]:
        """Per family: mean and max Q-Error over the finite scores."""
        summary: dict[str, dict[str, float]] = {}
        for family in CHOOSER_FAMILIES:
            scores = [
                d.q_errors[family]
                for d in self.decisions
                if family in d.q_errors and d.q_errors[family] != float("inf")
            ]
            if scores:
                summary[family] = {
                    "mean": sum(scores) / len(scores),
                    "max": max(scores),
                }
        return summary

    def as_dict(self) -> dict[str, object]:
        return {
            "decisions": [d.as_dict() for d in self.decisions],
            "points": len(self.decisions),
            "wins": self.wins,
            "win_rate": self.win_rate,
            "total_regret": self.total_regret,
            "q_error": self.q_error_summary(),
        }


# --------------------------------------------------------------- the replay


def _leaf_predictions(
    db: Database,
    query: str,
    doc: str,
    opts: EvalOptions,
    advisor: CalibrationStore | None,
) -> tuple[list[tuple[CompiledStep, ...]], list[IOCostPrediction | None]]:
    """Per-leaf path shapes and cost predictions for one query."""
    document = db.store.document(doc)
    compiled = db.prepare(query, doc, PlanKind.XSCHEDULE, opts)
    model = advisor.model if advisor is not None else None
    shapes: list[tuple[CompiledStep, ...]] = []
    predictions: list[IOCostPrediction | None] = []
    for leaf in compiled.path_plans():
        shapes.append(tuple(leaf.steps))
        predictions.append(
            predict_io_costs(
                document,
                leaf.steps,
                db.geometry,
                use_synopsis=opts.synopsis,
                use_pathsummary=opts.pathsummary,
                queue_depth=opts.k_min_queue,
                model=model,
            )
        )
    return shapes, predictions


def validate_query(
    db: Database,
    query: str,
    doc: str = "xmark",
    options: EvalOptions | None = None,
    advisor: CalibrationStore | None = None,
    meta: dict[str, object] | None = None,
) -> ChooserDecision:
    """Measure every plan family cold and score the AUTO pick.

    ``advisor`` is the calibration store consulted by the AUTO
    resolution (and whose fitted model prices the predictions); pass
    ``None`` to score the raw estimator.
    """
    opts = options or db.eval_options
    measured: dict[str, float] = {}
    for plan in ALL_PLANS:
        try:
            result = db.execute(query, doc, plan=plan, options=opts)
        except UnsupportedQueryError:
            continue
        measured[plan] = result.total_time

    shapes, predictions = _leaf_predictions(db, query, doc, opts, advisor)
    predicted: dict[str, float] = {}
    q_errors: dict[str, float] = {}
    if predictions and all(p is not None for p in predictions):
        for family in CHOOSER_FAMILIES:
            total = sum(p.predicted(family) for p in predictions if p is not None)
            predicted[family] = total
            if family in measured:
                q_errors[family] = q_error(total, measured[family])

    # the AUTO execution proper (through the advisor when one is given)
    compiled = db.prepare(query, doc, PlanKind.AUTO, opts, advisor=advisor)
    ctx = db.make_context(opts)
    mark = ctx.clock.checkpoint()
    compiled.execute(ctx)
    auto_total = ctx.clock.since(mark)[0]
    choices = [(record.choice, record.source) for record in compiled.auto_choices]

    candidates = {f: measured[f] for f in CHOOSER_FAMILIES if f in measured}
    best_plan = min(candidates, key=lambda f: candidates[f])
    best_total = candidates[best_plan]

    observations: list[Observation] = []
    if len(shapes) == 1:
        for family in CHOOSER_FAMILIES:
            if family in measured:
                observations.append(
                    Observation(
                        doc=doc,
                        steps=shapes[0],
                        plan=family,
                        total_time=measured[family],
                        prediction=predictions[0],
                    )
                )

    return ChooserDecision(
        query=query,
        doc=doc,
        meta=dict(meta or {}),
        measured=measured,
        predicted=predicted,
        q_errors=q_errors,
        choices=choices,
        auto_total=auto_total,
        best_plan=best_plan,
        best_total=best_total,
        observations=observations,
    )


def validate_many(
    points: list[tuple[Database, str, dict[str, object]]],
    doc: str = "xmark",
    options: EvalOptions | None = None,
    advisor: CalibrationStore | None = None,
) -> ValidationReport:
    """Replay ``(database, query, meta)`` grid points into one report."""
    decisions = [
        validate_query(db, query, doc=doc, options=options, advisor=advisor, meta=meta)
        for db, query, meta in points
    ]
    return ValidationReport(decisions)


# ----------------------------------------------------- calibration bootstrap


def build_store(
    decisions: list[ChooserDecision], margin_threshold: float = 0.25
) -> CalibrationStore:
    """A fitted, seeded store from a baseline report's forced runs.

    Deposits every cleanly-attributable observation, then fits the
    chooser CPU constants from the accumulated samples — the second
    validation pass runs with both the measured-argmin overrides and the
    calibrated cost model active.
    """
    store = CalibrationStore(margin_threshold=margin_threshold)
    for decision in decisions:
        for ob in decision.observations:
            store.observe(ob.doc, list(ob.steps), ob.plan, ob.total_time, ob.prediction)
    store.refit()
    return store


# --------------------------------------------------------------- seek audit


@dataclass
class SeekAuditRow:
    """Predicted vs measured per-request seek behaviour for one query.

    Scored twice: in **distance** (pages hopped per request) and in
    **service time** (``DiskGeometry.seek_time`` of that hop) — the
    latter is what the chooser actually prices, and the concave seek
    curve compresses large distance errors, so the two rankings can
    disagree.
    """

    query: str
    meta: dict[str, object]
    n_pages: int
    visited_pages: float
    measured_seeks: int
    measured_mean_seek: float  #: simulator: seek_distance / seeks
    predicted_hop: float  #: elevator-sweep model: n_pages / batch
    legacy_hop: float  #: the retired fixed guess: n_pages // 3
    measured_seek_time: float  #: geometry.seek_time at each hop
    predicted_seek_time: float
    legacy_seek_time: float

    def as_dict(self) -> dict[str, object]:
        return {
            "query": self.query,
            **self.meta,
            "n_pages": self.n_pages,
            "visited_pages": self.visited_pages,
            "measured_seeks": self.measured_seeks,
            "measured_mean_seek": self.measured_mean_seek,
            "predicted_hop": self.predicted_hop,
            "legacy_hop": self.legacy_hop,
            "predicted_error": q_error(self.predicted_hop, self.measured_mean_seek),
            "legacy_error": q_error(self.legacy_hop, self.measured_mean_seek),
            "predicted_time_error": q_error(
                self.predicted_seek_time, self.measured_seek_time
            ),
            "legacy_time_error": q_error(
                self.legacy_seek_time, self.measured_seek_time
            ),
        }


def audit_seek_model(
    db: Database,
    query: str,
    doc: str = "xmark",
    options: EvalOptions | None = None,
    meta: dict[str, object] | None = None,
) -> SeekAuditRow:
    """Run the XSchedule plan and compare seek models to the simulator.

    The measured mean comes straight from the run's
    :class:`~repro.sim.stats.Stats` (``seek_distance / seeks``); the
    predicted hop is the elevator-sweep expectation the chooser now
    prices (:func:`repro.xpath.estimate.predicted_random_unit`), shown
    next to the retired ``n_pages // 3`` constant.
    """
    opts = options or db.eval_options
    document = db.store.document(doc)
    result = db.execute(query, doc, plan=PlanKind.XSCHEDULE, options=opts)
    shapes, predictions = _leaf_predictions(db, query, doc, opts, advisor=None)
    visited = sum(p.visited_pages for p in predictions if p is not None)
    n_pages = document.n_pages
    batch = max(1.0, min(float(opts.k_min_queue), visited))
    predicted_hop = max(1.0, n_pages / batch)
    seeks = result.stats.seeks
    mean_seek = result.stats.seek_distance / seeks if seeks else 0.0
    legacy_hop = float(n_pages // 3)
    return SeekAuditRow(
        query=query,
        meta=dict(meta or {}),
        n_pages=n_pages,
        visited_pages=visited,
        measured_seeks=seeks,
        measured_mean_seek=mean_seek,
        predicted_hop=predicted_hop,
        legacy_hop=legacy_hop,
        measured_seek_time=db.geometry.seek_time(mean_seek) if seeks else 0.0,
        predicted_seek_time=db.geometry.seek_time(predicted_hop),
        legacy_seek_time=db.geometry.seek_time(legacy_hop),
    )
