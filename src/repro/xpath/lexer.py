"""Tokenizer for the XPath subset.

Names may contain ``-`` and ``.`` after the first character (XPath
NCNames); consequently a binary minus must be separated from a preceding
name by whitespace, as in XPath proper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XPathSyntaxError

#: Token types with fixed spellings, longest first.
_PUNCTUATION = [
    ("//", "DOUBLE_SLASH"),
    ("/", "SLASH"),
    ("::", "AXIS_SEP"),
    ("..", "DOTDOT"),
    (".", "DOT"),
    ("[", "LBRACKET"),
    ("]", "RBRACKET"),
    ("(", "LPAREN"),
    (")", "RPAREN"),
    ("@", "AT"),
    ("+", "PLUS"),
    ("-", "MINUS"),
    ("*", "STAR"),
    (",", "COMMA"),
    ("|", "PIPE"),
    ("!=", "NEQ"),
    ("=", "EQ"),
]

_NAME_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CHARS = _NAME_START | set("0123456789-.")
_DIGITS = set("0123456789")


@dataclass(frozen=True)
class Token:
    type: str
    value: str
    position: int

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}@{self.position})"


def tokenize(query: str) -> list[Token]:
    """Split ``query`` into tokens; raises :class:`XPathSyntaxError`."""
    tokens: list[Token] = []
    pos = 0
    length = len(query)
    while pos < length:
        ch = query[pos]
        if ch in " \t\r\n":
            pos += 1
            continue
        if ch in _DIGITS:
            start = pos
            while pos < length and query[pos] in _DIGITS:
                pos += 1
            if pos < length and query[pos] == "." and pos + 1 < length and query[pos + 1] in _DIGITS:
                pos += 1
                while pos < length and query[pos] in _DIGITS:
                    pos += 1
            tokens.append(Token("NUMBER", query[start:pos], start))
            continue
        if ch in ("'", '"'):
            end = query.find(ch, pos + 1)
            if end < 0:
                raise XPathSyntaxError("unterminated string literal", pos)
            tokens.append(Token("STRING", query[pos + 1 : end], pos))
            pos = end + 1
            continue
        if ch in _NAME_START:
            start = pos
            while pos < length and query[pos] in _NAME_CHARS:
                pos += 1
            # a trailing '.' or '-' belongs to punctuation, not the name
            while query[pos - 1] in ".-":
                pos -= 1
            tokens.append(Token("NAME", query[start:pos], start))
            continue
        for literal, token_type in _PUNCTUATION:
            if query.startswith(literal, pos):
                tokens.append(Token(token_type, literal, pos))
                pos += len(literal)
                break
        else:
            raise XPathSyntaxError(f"unexpected character {ch!r}", pos)
    tokens.append(Token("EOF", "", length))
    return tokens
