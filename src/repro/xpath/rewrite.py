"""Whole-query logical rewrite against the document's path summary.

Runs between step compilation and physical plan choice (Maneth/Nguyen,
"XPath Whole Query Optimization": rewrite the *whole* location path
against structural knowledge, not step by step).  Three outcomes, all
derived from one :meth:`~repro.storage.pathsummary.PathSummary.evaluate`
pass:

* **refutation** — the summary proves the path can match nothing; the
  compiled plan becomes a constant-empty result with zero I/O and no
  operator tree;
* **expansion** — a ``descendant::X`` step whose possible matches all
  sit on one concrete tag suffix below its contexts is replaced by the
  equivalent chain of ``child::`` steps (the generalisation of the
  ``//``-prefix optimisation; predicates ride along on the final step,
  and the PR 5 sibling-axis hazard does not arise because the replaced
  node *sets* are provably equal, not merely duplicate-free);
* **postings** — per-step cluster postings
  (:class:`~repro.storage.pathsummary.PathPostings`) for the operators'
  pre-scan filter and the chooser's visited-page cap.

Everything here is planning metadata: no simulated time is charged, and
with the summary absent (or ``EvalOptions.pathsummary`` off) the pass
does not run at all — compiled plans are byte-identical to before.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.axes import Axis
from repro.algebra.steps import CompiledNodeTest, CompiledStep, UNKNOWN_TAG
from repro.storage.pathsummary import (
    PathEvaluation,
    PathPostings,
    PathSummary,
    _PARENT_KINDS,
)

#: Expansion cost gate: the expanded chain must sweep at most this
#: fraction of the descendant step's candidates.  Child steps enumerate
#: *all* children of each context (the summary's sweep counts only the
#: matching ones), so a factor of 2 keeps the rewrite from trading one
#: subtree sweep for a wider fan-out of cluster-hopping child probes.
_EXPANSION_GAIN = 2.0


@dataclass(frozen=True)
class RewriteOutcome:
    """What the rewrite pass decided for one location path."""

    steps: list[CompiledStep]  #: possibly-expanded step list
    refuted: bool  #: the summary proves the result empty
    expanded: int  #: number of ``descendant`` steps expanded
    evaluation: PathEvaluation  #: evaluation of the final ``steps``
    postings: PathPostings | None  #: per-step cluster filter (None if refuted)


def rewrite_path(summary: PathSummary, steps: list[CompiledStep]) -> RewriteOutcome:
    """Refute, expand, and price one compiled location path."""
    evaluation = summary.evaluate(steps)
    if evaluation.refuted:
        return RewriteOutcome(
            steps=list(steps),
            refuted=True,
            expanded=0,
            evaluation=evaluation,
            postings=None,
        )
    steps = list(steps)
    expanded = 0
    changed = True
    while changed:
        changed = False
        for index, step in enumerate(steps):
            replacement = _expand_descendant(summary, steps, evaluation, index, step)
            if replacement is None:
                continue
            candidate = steps[:index] + replacement + steps[index + 1 :]
            candidate_eval = summary.evaluate(candidate)
            # result node sets are provably equal, so the candidate can
            # never be refuted; the gate only compares enumeration work
            if (
                not candidate_eval.refuted
                and candidate_eval.visited * _EXPANSION_GAIN <= evaluation.visited
            ):
                steps = candidate
                evaluation = candidate_eval
                expanded += 1
                changed = True
                break
    return RewriteOutcome(
        steps=steps,
        refuted=False,
        expanded=expanded,
        evaluation=evaluation,
        postings=PathPostings.for_steps(summary, steps, evaluation),
    )


def _expand_descendant(
    summary: PathSummary,
    steps: list[CompiledStep],
    evaluation: PathEvaluation,
    index: int,
    step: CompiledStep,
) -> list[CompiledStep] | None:
    """The ``child::`` chain replacing ``steps[index]``, or None.

    Sound when every (context chain, result chain) pair of the step
    shares one relative tag suffix: the descendant step's result set
    below each context node is then exactly the node set the child
    chain navigates to, so replacing the step preserves the query's
    semantics node-for-node — including order, duplicates, and any
    following step (the sibling-axis hazard of the ``//``-prefix
    R-optimisation cannot arise from an equal node set).
    """
    if step.axis is not Axis.DESCENDANT:
        return None
    if step.test.tag is None or step.test.tag == UNKNOWN_TAG:
        return None
    if index == 0:
        context_keys = (summary.root_key(),)
    else:
        context_keys = tuple(sorted(evaluation.step_sets[index - 1]))
    result_keys = tuple(sorted(evaluation.step_sets[index]))
    if not result_keys:
        return None
    context_chains = [
        chain for chain, kind in context_keys if kind in _PARENT_KINDS
    ]
    suffixes = set()
    for rchain, _rkind in result_keys:
        for cchain in context_chains:
            if len(rchain) > len(cchain) and rchain[: len(cchain)] == cchain:
                suffixes.add(rchain[len(cchain) :])
                if len(suffixes) > 1:
                    return None
    if len(suffixes) != 1:
        return None
    (suffix,) = suffixes
    if len(suffix) < 2:
        # a one-tag suffix: descendant::X where X only occurs as a
        # direct child — a plain child step with the original test
        return [CompiledStep(Axis.CHILD, step.test, step.predicates)]
    intermediate = [
        CompiledStep(
            Axis.CHILD, CompiledNodeTest.compile("name", Axis.CHILD, tag), []
        )
        for tag in suffix[:-1]
    ]
    return intermediate + [CompiledStep(Axis.CHILD, step.test, step.predicates)]
