"""Reference XPath evaluation over the logical tree.

A direct, storage-oblivious implementation of the supported XPath subset
on :class:`~repro.model.tree.LogicalTree`.  It is the ground truth the
test suite compares every physical plan against (Simple, XSchedule,
XScan, with and without speculation and fallback must all agree with it),
and a convenient way for library users to sanity-check results on small
documents.
"""

from __future__ import annotations

from repro.axes import Axis
from repro.errors import UnsupportedQueryError
from repro.model.tree import NIL, Kind, LogicalTree
from repro.xpath.ast import (
    BinaryOp,
    Comparison,
    CountCall,
    Expr,
    LocationPath,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
)
from repro.xpath.parser import parse_query


def string_value(tree: LogicalTree, node: int) -> str:
    """XPath string value: own value for text/attributes, concatenated
    text descendants for elements and the root."""
    if tree.kind_of(node) in (Kind.TEXT, Kind.ATTRIBUTE):
        return tree.value_of(node) or ""
    return "".join(
        tree.value_of(n) or ""
        for n in tree.descendants(node)
        if tree.kind_of(n) == Kind.TEXT
    )


def _axis_nodes(tree: LogicalTree, node: int, axis: Axis) -> list[int]:
    if axis is Axis.SELF:
        return [node]
    if axis is Axis.CHILD:
        return [c for c in tree.element_children(node)]
    if axis is Axis.ATTRIBUTE:
        return [a for a in tree.attributes(node)]
    if axis is Axis.DESCENDANT:
        return list(tree.descendants(node))
    if axis is Axis.DESCENDANT_OR_SELF:
        return list(tree.descendants(node, include_self=True))
    if axis is Axis.PARENT:
        p = tree.parent_of(node)
        return [p] if p != NIL else []
    if axis in (Axis.ANCESTOR, Axis.ANCESTOR_OR_SELF):
        out = [node] if axis is Axis.ANCESTOR_OR_SELF else []
        p = tree.parent_of(node)
        while p != NIL:
            out.append(p)
            p = tree.parent_of(p)
        return out
    if axis in (Axis.FOLLOWING_SIBLING, Axis.PRECEDING_SIBLING):
        p = tree.parent_of(node)
        if p == NIL:
            return []
        siblings = [c for c in tree.element_children(p)]
        if node not in siblings:  # attribute nodes have no siblings here
            return []
        index = siblings.index(node)
        if axis is Axis.FOLLOWING_SIBLING:
            return siblings[index + 1 :]
        return list(reversed(siblings[:index]))
    raise UnsupportedQueryError(f"axis {axis} not supported by the reference evaluator")


def _test_matches(tree: LogicalTree, node: int, step: Step, axis: Axis) -> bool:
    kind = tree.kind_of(node)
    test = step.test
    if axis is Axis.ATTRIBUTE:
        if kind != Kind.ATTRIBUTE:
            return False
        if test.kind in ("name",):
            return tree.tag_name(node) == test.name
        return test.kind in ("wildcard", "node")
    if test.kind == "name":
        return kind == Kind.ELEMENT and tree.tag_name(node) == test.name
    if test.kind == "wildcard":
        return kind == Kind.ELEMENT
    if test.kind == "text":
        return kind == Kind.TEXT
    if test.kind == "node":
        return kind in (Kind.ELEMENT, Kind.TEXT, Kind.DOCUMENT)
    if test.kind == "comment":
        return False
    raise UnsupportedQueryError(f"node test {test.kind!r}")


def evaluate_steps(tree: LogicalTree, contexts: list[int], steps: list[Step]) -> list[int]:
    """Evaluate location steps over contexts; result in document order."""
    current = set(contexts)
    for step in steps:
        produced: set[int] = set()
        for node in current:
            for candidate in _axis_nodes(tree, node, step.axis):
                if not _test_matches(tree, candidate, step, step.axis):
                    continue
                if all(
                    _predicate_holds(tree, candidate, p) for p in step.predicates
                ):
                    produced.add(candidate)
        current = produced
    return sorted(current)  # node ids are preorder ranks == document order


def _predicate_holds(tree: LogicalTree, node: int, expr: Expr) -> bool:
    if isinstance(expr, PathExpr):
        return bool(evaluate_steps(tree, [node], _as_relative(expr)))
    if isinstance(expr, Comparison):
        left, right = expr.left, expr.right
        if isinstance(right, PathExpr) and isinstance(left, (StringLiteral, NumberLiteral)):
            left, right = right, left
        if isinstance(left, PathExpr) and isinstance(right, (StringLiteral, NumberLiteral)):
            literal = (
                right.value if isinstance(right, StringLiteral) else format(right.value, "g")
            )
            candidates = evaluate_steps(tree, [node], _as_relative(left))
            values = (string_value(tree, c) for c in candidates)
            if expr.op == "=":
                return any(v == literal for v in values)
            return any(v != literal for v in values)
    raise UnsupportedQueryError(f"unsupported predicate {expr}")


def _as_relative(expr: Expr) -> list[Step]:
    if not isinstance(expr, PathExpr) or expr.path.absolute:
        raise UnsupportedQueryError("only relative-path predicates are supported")
    return expr.path.steps


def evaluate_path(tree: LogicalTree, path: LocationPath) -> list[int]:
    """Evaluate a location path from the document root."""
    return evaluate_steps(tree, [tree.root], path.steps)


def _evaluate_node_set(tree: LogicalTree, node_set: "LocationPath | UnionExpr") -> list[int]:
    if isinstance(node_set, UnionExpr):
        merged: set[int] = set()
        for path in node_set.paths:
            merged.update(evaluate_path(tree, path))
        return sorted(merged)
    return evaluate_path(tree, node_set)


def evaluate_query(tree: LogicalTree, query: str | Expr) -> float | list[int]:
    """Evaluate a full query; numbers for arithmetic, node lists for paths."""
    expr = parse_query(query) if isinstance(query, str) else query
    if isinstance(expr, PathExpr):
        return evaluate_path(tree, expr.path)
    if isinstance(expr, UnionExpr):
        return _evaluate_node_set(tree, expr)
    if isinstance(expr, CountCall):
        return float(len(_evaluate_node_set(tree, expr.path)))
    if isinstance(expr, NumberLiteral):
        return expr.value
    if isinstance(expr, Comparison):
        left = evaluate_query(tree, expr.left)
        right = evaluate_query(tree, expr.right)
        if isinstance(left, list) or isinstance(right, list):
            raise UnsupportedQueryError(
                "node-set comparisons are only supported inside predicates"
            )
        equal = left == right
        return float(equal if expr.op == "=" else not equal)
    if isinstance(expr, BinaryOp):
        left = evaluate_query(tree, expr.left)
        right = evaluate_query(tree, expr.right)
        if isinstance(left, list) or isinstance(right, list):
            raise UnsupportedQueryError("node-set arithmetic is not supported")
        return left + right if expr.op == "+" else left - right
    raise UnsupportedQueryError(f"unsupported expression {expr!r}")
