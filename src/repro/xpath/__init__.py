"""XPath frontend: lexer, parser, AST, and the plan compiler.

The supported language is the subset the paper's physical algebra covers
(Sec. 4.1) plus the aggregation shell its benchmark queries need:

* absolute and relative location paths with the axes in
  :class:`repro.axes.Axis` (including the ``//``, ``.``, ``..`` and ``@``
  abbreviations);
* node tests: names, ``*``, ``text()``, ``node()``;
* ``count(path)`` and ``+``/``-`` arithmetic over counts and number
  literals (enough for XMark Q6', Q7, Q15);
* existence predicates ``[path]`` are parsed; the Simple plan evaluates
  them, while cost-sensitive plans reject them (the paper defers nested
  predicates — "more than two incomplete ends" — to future work).
"""

from repro.xpath.ast import (
    BinaryOp,
    CountCall,
    LocationPath,
    NodeTestAst,
    NumberLiteral,
    PathExpr,
    Step,
)
from repro.xpath.parser import parse_query
from repro.xpath.compile import compile_query, PlanKind

__all__ = [
    "parse_query",
    "compile_query",
    "PlanKind",
    "LocationPath",
    "Step",
    "NodeTestAst",
    "PathExpr",
    "CountCall",
    "BinaryOp",
    "NumberLiteral",
]
