"""Recursive-descent parser for the XPath subset.

Grammar (see package docstring for the supported feature set)::

    Query        := AdditiveExpr EOF
    AdditiveExpr := UnionExpr (('+' | '-') UnionExpr)*
    UnionExpr    := Primary                 # '|' reserved, rejected for now
    Primary      := Number
                  | 'count' '(' LocationPath ')'
                  | '(' AdditiveExpr ')'
                  | LocationPath
    LocationPath := '/' RelativePath?
                  | '//' RelativePath
                  | RelativePath
    RelativePath := Step (('/' | '//') Step)*
    Step         := '.' | '..'
                  | '@' NodeTest Predicate*
                  | (AxisName '::')? NodeTest Predicate*
    NodeTest     := Name | '*' | 'text' '()' | 'node' '()' | 'comment' '()'
    Predicate    := '[' AdditiveExpr ']'

The abbreviation ``//`` expands to ``/descendant-or-self::node()/`` as in
the XPath recommendation.
"""

from __future__ import annotations

from repro.axes import Axis
from repro.errors import XPathSyntaxError
from repro.xpath.ast import (
    BinaryOp,
    Comparison,
    CountCall,
    Expr,
    LocationPath,
    NodeTestAst,
    NumberLiteral,
    PathExpr,
    Step,
    StringLiteral,
    UnionExpr,
)
from repro.xpath.lexer import Token, tokenize

_AXIS_NAMES = {axis.value: axis for axis in Axis}

_DESC_OR_SELF_NODE = Step(Axis.DESCENDANT_OR_SELF, NodeTestAst("node"))


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # ---------------------------------------------------------- primitives

    def peek(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def accept(self, token_type: str) -> Token | None:
        if self.peek().type == token_type:
            return self.advance()
        return None

    def expect(self, token_type: str, context: str) -> Token:
        token = self.peek()
        if token.type != token_type:
            raise XPathSyntaxError(
                f"expected {token_type} in {context}, found {token.type} {token.value!r}",
                token.position,
            )
        return self.advance()

    # -------------------------------------------------------------- grammar

    def parse_query(self) -> Expr:
        expr = self.parse_comparison()
        self.expect("EOF", "query")
        return expr

    def parse_comparison(self) -> Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.type in ("EQ", "NEQ"):
            self.advance()
            right = self.parse_additive()
            return Comparison("=" if token.type == "EQ" else "!=", left, right)
        return left

    def parse_additive(self) -> Expr:
        left = self.parse_union()
        while self.peek().type in ("PLUS", "MINUS"):
            op = self.advance()
            right = self.parse_union()
            left = BinaryOp("+" if op.type == "PLUS" else "-", left, right)
        return left

    def parse_union(self) -> Expr:
        left = self.parse_primary()
        if self.peek().type != "PIPE":
            return left
        paths = [self._as_path(left)]
        while self.accept("PIPE"):
            paths.append(self._as_path(self.parse_primary()))
        return UnionExpr(paths)

    def _as_path(self, expr: Expr) -> LocationPath:
        if not isinstance(expr, PathExpr):
            raise XPathSyntaxError("union operands must be location paths", self.peek().position)
        return expr.path

    def parse_primary(self) -> Expr:
        token = self.peek()
        if token.type == "NUMBER":
            self.advance()
            return NumberLiteral(float(token.value))
        if token.type == "STRING":
            self.advance()
            return StringLiteral(token.value)
        if token.type == "LPAREN":
            self.advance()
            expr = self.parse_comparison()
            self.expect("RPAREN", "parenthesised expression")
            return expr
        if token.type == "NAME" and token.value == "count" and self._lookahead_is("LPAREN"):
            self.advance()
            self.advance()
            node_set = self.parse_union()
            if isinstance(node_set, PathExpr):
                node_set = node_set.path
            elif not isinstance(node_set, UnionExpr):
                raise XPathSyntaxError("count() expects a node set", token.position)
            self.expect("RPAREN", "count()")
            return CountCall(node_set)
        if token.type == "NAME" and self._lookahead_is("LPAREN") and token.value not in (
            "text",
            "node",
            "comment",
        ):
            raise XPathSyntaxError(f"unsupported function {token.value!r}()", token.position)
        return PathExpr(self.parse_location_path())

    def _lookahead_is(self, token_type: str) -> bool:
        return self.tokens[self.index + 1].type == token_type

    def parse_location_path(self) -> LocationPath:
        token = self.peek()
        if token.type == "SLASH":
            self.advance()
            if self._starts_step():
                return LocationPath(True, self.parse_relative_steps())
            return LocationPath(True, [])
        if token.type == "DOUBLE_SLASH":
            self.advance()
            steps = [_copy_step(_DESC_OR_SELF_NODE)]
            steps.extend(self.parse_relative_steps())
            return LocationPath(True, steps)
        return LocationPath(False, self.parse_relative_steps())

    def _starts_step(self) -> bool:
        return self.peek().type in ("NAME", "STAR", "AT", "DOT", "DOTDOT")

    def parse_relative_steps(self) -> list[Step]:
        steps = [self.parse_step()]
        while True:
            if self.accept("SLASH"):
                steps.append(self.parse_step())
            elif self.accept("DOUBLE_SLASH"):
                steps.append(_copy_step(_DESC_OR_SELF_NODE))
                steps.append(self.parse_step())
            else:
                return steps

    def parse_step(self) -> Step:
        token = self.peek()
        if token.type == "DOT":
            self.advance()
            return Step(Axis.SELF, NodeTestAst("node"))
        if token.type == "DOTDOT":
            self.advance()
            return Step(Axis.PARENT, NodeTestAst("node"))
        if token.type == "AT":
            self.advance()
            test = self.parse_node_test(default_axis=Axis.ATTRIBUTE)
            return self._with_predicates(Step(Axis.ATTRIBUTE, test))
        axis = Axis.CHILD
        if token.type == "NAME" and token.value in _AXIS_NAMES and self._lookahead_is("AXIS_SEP"):
            self.advance()
            self.advance()
            axis = _AXIS_NAMES[token.value]
        elif token.type == "NAME" and self._lookahead_is("AXIS_SEP"):
            raise XPathSyntaxError(f"unknown axis {token.value!r}", token.position)
        test = self.parse_node_test(default_axis=axis)
        return self._with_predicates(Step(axis, test))

    def parse_node_test(self, default_axis: Axis) -> NodeTestAst:
        token = self.peek()
        if token.type == "STAR":
            self.advance()
            return NodeTestAst("wildcard")
        if token.type == "NAME":
            if token.value in ("text", "node", "comment") and self._lookahead_is("LPAREN"):
                self.advance()
                self.advance()
                self.expect("RPAREN", f"{token.value}() test")
                return NodeTestAst(token.value)
            self.advance()
            return NodeTestAst("name", token.value)
        raise XPathSyntaxError(
            f"expected a node test, found {token.type} {token.value!r}", token.position
        )

    def _with_predicates(self, step: Step) -> Step:
        while self.accept("LBRACKET"):
            step.predicates.append(self.parse_comparison())
            self.expect("RBRACKET", "predicate")
        return step


def _copy_step(step: Step) -> Step:
    return Step(step.axis, step.test, list(step.predicates))


def parse_query(query: str) -> Expr:
    """Parse a query string into an expression AST."""
    return _Parser(tokenize(query)).parse_query()


def parse_path(query: str) -> LocationPath:
    """Parse a query that must be a bare location path."""
    expr = parse_query(query)
    if not isinstance(expr, PathExpr):
        raise XPathSyntaxError("expected a bare location path", 0)
    return expr.path
