"""XMark workload analysis: where each I/O operator wins.

Reproduces, at a single scale factor, the paper's central comparison:
the Simple nested-loop method against XSchedule (asynchronous I/O) and
XScan (sequential scan with speculation) on queries of very different
selectivity.

Run with::

    python examples/xmark_analysis.py [scale]
"""

import sys

from repro import Database, ImportOptions
from repro.xmark import PAPER_QUERIES, generate_xmark


def main(scale: float = 0.25) -> None:
    print(f"building XMark store at scale factor {scale} ...")
    db = Database(page_size=8192, buffer_pages=256)
    tree = generate_xmark(scale=scale, tags=db.tags, seed=1)
    doc = db.add_tree(tree, "xmark", ImportOptions(fragmentation=1.0, seed=1))
    print(f"  {doc.n_nodes} nodes on {doc.n_pages} pages, "
          f"{doc.n_border_pairs} border pairs\n")

    for exp_id, label, query in PAPER_QUERIES:
        print(f"{label}: {query}")
        rows = {}
        for plan in ("simple", "xschedule", "xscan"):
            r = db.execute(query, doc="xmark", plan=plan)
            rows[plan] = r
            answer = r.value if r.value is not None else len(r.nodes)
            print(f"  {plan:<10s} total={r.total_time:8.3f}s  cpu={r.cpu_time:7.3f}s "
                  f"({r.cpu_fraction * 100:4.1f}%)  pages={r.stats.pages_read:5d}  "
                  f"seeks={r.stats.seeks:5d}  answer={answer}")
        auto = db.execute(query, doc="xmark", plan="auto")
        chosen = auto.plan_kinds[0].value
        best = min(("xschedule", "xscan"), key=lambda p: rows[p].total_time)
        verdict = "optimal" if chosen == best else f"suboptimal (best: {best})"
        print(f"  -> cost model picks {chosen} ({verdict})\n")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
