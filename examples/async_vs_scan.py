"""The XSchedule/XScan crossover: selectivity decides the I/O operator.

The paper observes that the sequential scan wins on low-selectivity
queries (Q7) and loses badly on selective ones (Q15), and calls for a
cost model to choose between them.  This example sweeps a family of
queries from "touch one subtree" to "touch everything" and shows where
the crossover falls — and that the AUTO cost model tracks it.

Run with::

    python examples/async_vs_scan.py [scale]
"""

import sys

from repro import Database, ImportOptions
from repro.xmark import generate_xmark

#: From highly selective to whole-document.
QUERY_LADDER = [
    ("one region", "count(/site/regions/africa/item)"),
    ("one section", "count(/site/closed_auctions/closed_auction)"),
    ("items", "count(/site/regions//item)"),
    ("names everywhere", "count(/site//name)"),
    ("keywords everywhere", "count(/site//keyword)"),
    ("every element", "count(//*)"),
]


def main(scale: float = 0.25) -> None:
    db = Database(page_size=8192, buffer_pages=256)
    tree = generate_xmark(scale=scale, tags=db.tags, seed=1)
    doc = db.add_tree(tree, "xmark", ImportOptions(fragmentation=1.0, seed=1))
    print(f"XMark sf={scale}: {doc.n_pages} pages\n")
    print(f"{'query':<20s} {'answer':>8s} {'xsched[s]':>10s} {'xscan[s]':>9s} "
          f"{'winner':>9s} {'auto':>10s}")
    for name, query in QUERY_LADDER:
        xschedule = db.execute(query, doc="xmark", plan="xschedule")
        xscan = db.execute(query, doc="xmark", plan="xscan")
        auto = db.execute(query, doc="xmark", plan="auto")
        winner = "xschedule" if xschedule.total_time < xscan.total_time else "xscan"
        chosen = auto.plan_kinds[0].value
        mark = "" if chosen == winner else "  (!)"
        print(f"{name:<20s} {xschedule.value:>8.0f} {xschedule.total_time:>10.3f} "
              f"{xscan.total_time:>9.3f} {winner:>9s} {chosen:>10s}{mark}")
    print("\n(!) marks queries where the estimator picked the slower operator.")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
