"""Storage tuning: how physical layout decisions change query cost.

Explores the knobs of the clustered tree store on a fixed workload:
page size, clustering policy (best-fit regrouping vs strict sequential
fill), and layout fragmentation — the paper's motivation for not trusting
the physical page order.

Run with::

    python examples/storage_tuning.py
"""

from repro import ClusterPolicy, Database, ImportOptions
from repro.xmark import Q6_PRIME, generate_xmark

SCALE = 0.1
SEED = 1


def build(page_size: int, policy: ClusterPolicy, fragmentation: float) -> Database:
    db = Database(page_size=page_size, buffer_pages=256)
    tree = generate_xmark(scale=SCALE, tags=db.tags, seed=SEED)
    db.add_tree(
        tree,
        "xmark",
        ImportOptions(
            page_size=page_size,
            policy=policy,
            fragmentation=fragmentation,
            seed=SEED,
        ),
    )
    return db


def run(db: Database, plan: str):
    return db.execute(Q6_PRIME, doc="xmark", plan=plan)


def main() -> None:
    print(f"{'layout':<32s} {'pages':>6s} {'borders':>8s} "
          f"{'simple[s]':>10s} {'xsched[s]':>10s} {'xscan[s]':>9s}")
    configs = [
        ("8K best-fit, clean", 8192, ClusterPolicy.BEST_FIT, 0.0),
        ("8K best-fit, fragmented", 8192, ClusterPolicy.BEST_FIT, 1.0),
        ("8K sequential, clean", 8192, ClusterPolicy.SEQUENTIAL, 0.0),
        ("2K best-fit, fragmented", 2048, ClusterPolicy.BEST_FIT, 1.0),
        ("32K best-fit, fragmented", 32768, ClusterPolicy.BEST_FIT, 1.0),
    ]
    for name, page_size, policy, frag in configs:
        db = build(page_size, policy, frag)
        doc = db.document("xmark")
        times = {plan: run(db, plan).total_time for plan in ("simple", "xschedule", "xscan")}
        print(f"{name:<32s} {doc.n_pages:>6d} {doc.n_border_pairs:>8d} "
              f"{times['simple']:>10.3f} {times['xschedule']:>10.3f} {times['xscan']:>9.3f}")

    print("""
observations
  * fragmentation barely moves XScan (it reads physical order anyway)
    but multiplies the Simple plan's cost: that gap is the paper's thesis;
  * a document-ordered sequential layout makes Simple nearly sequential --
    the regime where reordering buys little;
  * smaller pages mean more clusters and more border crossings, shifting
    cost from intra-cluster navigation to scheduling.""")


if __name__ == "__main__":
    main()
