"""Concurrent queries on one disk: deeper queues schedule better.

The paper's outlook expects "concurrent queries to strongly benefit from
asynchronous I/O, as scheduling decisions can be made based on more
pending requests".  This example runs a pair of XMark queries serially
and concurrently, under a reordering controller (SSTF) and under FIFO,
and also shows Q7 on the shared-scan plan (one physical pass for three
paths).

Run with::

    python examples/concurrent_queries.py [scale]
"""

import sys

from repro import Database, ImportOptions, SchedulingPolicy
from repro.algebra.concurrent import run_concurrent
from repro.xmark import Q7, generate_xmark

PAIR = [
    ("count(/site/regions//item)", "xmark", "xschedule"),
    ("count(/site//annotation)", "xmark", "xschedule"),
]


def build(policy: SchedulingPolicy, scale: float) -> Database:
    db = Database(page_size=8192, buffer_pages=256, disk_policy=policy)
    tree = generate_xmark(scale=scale, tags=db.tags, seed=1)
    db.add_tree(tree, "xmark", ImportOptions(fragmentation=1.0, seed=1))
    return db


def main(scale: float = 0.25) -> None:
    for policy in (SchedulingPolicy.SSTF, SchedulingPolicy.FIFO):
        db = build(policy, scale)
        serial = sum(db.execute(q, doc=d, plan=p).total_time for q, d, p in PAIR)
        outcome = run_concurrent(db, PAIR)
        gain = (serial - outcome.total_time) / serial * 100
        print(f"{policy.value:>5s}: serial {serial:7.3f}s  "
              f"concurrent {outcome.total_time:7.3f}s  ({gain:+.1f}%)")
        for result in outcome.results:
            print(f"       {result.query}: {result.value:.0f} "
                  f"(finished at {result.finished_at:.3f}s)")

    db = build(SchedulingPolicy.SSTF, scale)
    three_scans = db.execute(Q7, doc="xmark", plan="xscan")
    one_scan = db.execute(Q7, doc="xmark", plan="xscan-shared")
    print(f"\nQ7, three separate scans: {three_scans.total_time:.3f}s "
          f"({three_scans.stats.pages_read} pages)")
    print(f"Q7, one shared scan:      {one_scan.total_time:.3f}s "
          f"({one_scan.stats.pages_read} pages)")

    # run_batch generalizes both: a whole batch of queries flows onto one
    # runtime — scan-shareable paths ride a single sequential pass, the
    # rest interleave over the shared disk queue.
    paths = ["/site/regions//item", "/site//description",
             "/site//annotation", "/site//emailaddress"]
    cold = [db.execute(p, doc="xmark") for p in paths]
    batch = db.run_batch(paths, doc="xmark")
    print(f"\nbatch of {len(paths)} paths: {batch.total_time:.3f}s, "
          f"{batch.stats.io_requests} I/O requests "
          f"({batch.scan_shared} on the shared scan) vs "
          f"{sum(r.stats.io_requests for r in cold)} requests / "
          f"{sum(r.total_time for r in cold):.3f}s for one-at-a-time cold runs")


if __name__ == "__main__":
    main(float(sys.argv[1]) if len(sys.argv) > 1 else 0.25)
