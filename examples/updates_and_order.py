"""Updates without relabeling: ORDPATH careting and border-pair growth.

The paper's argument against scan-optimised storage formats is that they
"are not easily updated".  This example demonstrates the clustered tree
store absorbing a hostile update pattern — repeated insertion at the same
position, which would force preorder-numbering schemes to relabel — and
shows document order surviving throughout.

Run with::

    python examples/updates_and_order.py
"""

from repro import Database
from repro.storage.store import check_document
from repro.storage.update import delete_subtree, insert_node


def children_of(db, query="/log/*"):
    result = db.execute(query, doc="log", plan="simple")
    return [db.node_info(n)[1] for n in result.nodes]


def main() -> None:
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml("<log><first/><last/></log>", "log")
    doc = db.document("log")
    root = db.execute("/log", doc="log", plan="simple").nodes[0]

    print("initial children:", children_of(db))

    # insert 25 entries, always at position 1: each needs an order label
    # strictly between its neighbours' — ORDPATH carets, no relabeling
    for i in range(25):
        insert_node(db.store, doc, root, 1, f"entry{i}")
    names = children_of(db)
    print(f"after 25 same-position inserts: {names[0]} .. {names[-1]} "
          f"({len(names)} children, newest first: {names[1]})")
    assert names[0] == "first" and names[-1] == "last"
    assert names[1] == "entry24"

    # the page filled up long ago: inserts spilled to new pages through
    # fresh border pairs — physical growth, not reorganisation
    print(f"document now spans {doc.n_pages} pages "
          f"(started on 1); storage invariants:", end=" ")
    check_document(db.store, doc)
    print("OK")

    # deletes reclaim space in place
    victim = db.execute("/log/entry7", doc="log", plan="simple").nodes[0]
    removed = delete_subtree(db.store, doc, victim)
    print(f"deleted entry7 subtree ({removed} node); "
          f"count now {db.execute('count(/log/*)', doc='log').value:.0f}")

    # all three physical plans agree on the updated document
    counts = {
        plan: db.execute("count(/log/*)", doc="log", plan=plan).value
        for plan in ("simple", "xschedule", "xscan")
    }
    print("plan agreement after updates:", counts)


if __name__ == "__main__":
    main()
