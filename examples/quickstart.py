"""Quickstart: load a document, run queries through an execution session.

Run with::

    python examples/quickstart.py
"""

from repro import Database

CATALOG = """
<catalog>
  <shelf region="north">
    <book id="b1"><title>The Assembly Operator</title><year>1991</year></book>
    <book id="b2"><title>Query Evaluation Techniques</title><year>1993</year></book>
  </shelf>
  <shelf region="south">
    <book id="b3"><title>ORDPATH Labels</title><year>2004</year></book>
    <journal id="j1"><title>Natix Anatomy</title></journal>
  </shelf>
</catalog>
"""


def main() -> None:
    # A database is a simulated disk + buffer + query engine.  Small pages
    # make even this tiny document span multiple clusters.
    db = Database(page_size=512, buffer_pages=16)
    doc = db.load_xml(CATALOG, name="catalog")
    print(f"imported {doc.n_nodes} nodes onto {doc.n_pages} pages "
          f"({doc.n_border_pairs} inter-cluster edges)\n")

    # A session caches compiled plans and aggregates cost across runs;
    # each execute still runs cold (fresh buffer, parked disk head).
    session = db.session()

    # Numeric query: count() with arithmetic.
    result = session.execute("count(//book) + count(//journal)", doc="catalog")
    print(f"publications: {result.value:.0f}")

    # Node query: results arrive in document order; inspect them.
    result = session.execute("//book/title/text()", doc="catalog", plan="simple")
    for nid in result.nodes:
        kind, tag, value = db.node_info(nid)
        print(f"  title: {value}")

    # The same query on each physical plan: identical answers, different
    # physical behaviour (pages read, seeks, simulated time).
    print(f"\n{'plan':<10s} {'total[s]':>10s} {'cpu[s]':>8s} {'pages':>6s} {'seeks':>6s}")
    for plan in ("simple", "xschedule", "xscan"):
        r = session.execute("//title", doc="catalog", plan=plan)
        print(f"{plan:<10s} {r.total_time:>10.6f} {r.cpu_time:>8.6f} "
              f"{r.stats.pages_read:>6d} {r.stats.seeks:>6d}")

    # Re-executing hits the plan cache: no recompile.
    session.execute("//title", doc="catalog", plan="simple")
    print(f"\nsession: {session.runs} runs, {session.compiles} compiles, "
          f"{session.cache_hits} plan-cache hits, "
          f"{session.total_time:.6f}s simulated in total")

    # "auto" lets the cost model pick the I/O operator.
    r = session.execute("//title", doc="catalog", plan="auto")
    print(f"auto chose: {[k.value for k in r.plan_kinds]}")

    # A batch routes several queries onto ONE runtime: scan-shareable
    # paths ride a single sequential pass, so the document is read once.
    batch = db.run_batch(["//title", "//book", "count(//year)"], doc="catalog")
    answers = [r.value if r.nodes is None else len(r.nodes) for r in batch.results]
    print(f"\nbatch of 3: answers={answers}, {batch.scan_shared} on the shared "
          f"scan, {batch.stats.pages_read} pages read for the whole batch")


if __name__ == "__main__":
    main()
