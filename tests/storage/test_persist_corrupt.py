"""Corruption regression tests for the binary store format.

The load path must never leak a bare ``struct.error`` (or worse, a
``UnicodeDecodeError``) for a truncated or damaged file: every byte
shortfall surfaces as a typed :class:`~repro.errors.StoreCorruptError`
with offset context, and non-store files raise
:class:`~repro.errors.StorageError`.
"""

import struct

import pytest

from repro.errors import StorageError, StoreCorruptError
from repro.storage import persist
from repro.storage.persist import load_store, save_store
from repro.storage.store import check_document

from tests.conftest import small_database


@pytest.fixture
def saved(tmp_path):
    db, _ = small_database(seed=91, n_top=25)
    path = str(tmp_path / "store.rpro")
    save_store(db.store, path)
    return db, path, open(path, "rb").read()


def test_truncation_at_every_boundary(saved, tmp_path):
    """Sweep truncation points across the whole file: header, checksum
    block, and (via the v2 variant below) every body section."""
    _, path, data = saved
    target = str(tmp_path / "cut.rpro")
    # every header byte, then a stride through the body
    cuts = list(range(len(data) - 1, 0, -max(1, len(data) // 200)))
    cuts.extend(range(min(64, len(data))))
    for cut in cuts:
        open(target, "wb").write(data[:cut])
        with pytest.raises((StoreCorruptError, StorageError)) as err:
            load_store(target)
        # offset context or a typed message, never a raw struct error
        assert "store" in str(err.value)


def test_truncation_inside_v2_body_sections(saved, tmp_path, monkeypatch):
    """v1/v2 files have no body-length guard, so truncation lands inside
    individual read helpers — each must raise the typed error."""
    db, _, _ = saved
    monkeypatch.setattr(persist, "_VERSION", 2)
    path = str(tmp_path / "v2.rpro")
    save_store(db.store, path)
    data = open(path, "rb").read()
    target = str(tmp_path / "cut2.rpro")
    for cut in range(len(data) - 1, 0, -max(1, len(data) // 300)):
        open(target, "wb").write(data[:cut])
        with pytest.raises((StoreCorruptError, StorageError)):
            load_store(target)


def test_truncation_error_reports_offset(saved, tmp_path):
    _, path, data = saved
    target = str(tmp_path / "cut.rpro")
    open(target, "wb").write(data[: len(data) // 2])
    with pytest.raises(StoreCorruptError, match=r"offset"):
        load_store(target)


def test_body_checksum_detects_bit_rot(saved, tmp_path):
    _, path, data = saved
    corrupt = bytearray(data)
    corrupt[len(data) // 2] ^= 0x01
    target = str(tmp_path / "rot.rpro")
    open(target, "wb").write(bytes(corrupt))
    with pytest.raises(StoreCorruptError, match="checksum mismatch"):
        load_store(target)


def test_header_corruption_detected(saved, tmp_path):
    _, path, data = saved
    # damage the recorded body length: the read shortfall must be typed
    corrupt = bytearray(data)
    length_at = 4 + 6 + 8 + 4  # magic | version+page_size | lsn | crc
    corrupt[length_at : length_at + 8] = struct.pack("<Q", len(data) * 2)
    target = str(tmp_path / "len.rpro")
    open(target, "wb").write(bytes(corrupt))
    with pytest.raises(StoreCorruptError):
        load_store(target)


def test_not_a_store_file(tmp_path):
    target = str(tmp_path / "nope.rpro")
    open(target, "wb").write(b"<?xml version='1.0'?><root/>")
    with pytest.raises(StorageError):
        load_store(target)


def test_unsupported_version(saved, tmp_path):
    _, path, data = saved
    corrupt = bytearray(data)
    corrupt[4:6] = struct.pack("<H", 99)
    target = str(tmp_path / "future.rpro")
    open(target, "wb").write(bytes(corrupt))
    with pytest.raises(StorageError, match="version"):
        load_store(target)


def test_empty_file(tmp_path):
    target = str(tmp_path / "empty.rpro")
    open(target, "wb").close()
    with pytest.raises(StorageError):
        load_store(target)


def test_v2_and_v3_round_trips_agree(saved, tmp_path, monkeypatch):
    """The v3 header adds integrity metadata only — the body bytes and
    the loaded store are the same as a v2 file's."""
    db, _, _ = saved
    v2 = str(tmp_path / "v2.rpro")
    v3 = str(tmp_path / "v3.rpro")
    monkeypatch.setattr(persist, "_VERSION", 2)
    save_store(db.store, v2)
    monkeypatch.setattr(persist, "_VERSION", 3)
    save_store(db.store, v3)
    monkeypatch.undo()
    old = load_store(v2)
    new = load_store(v3)
    assert old.segment.n_pages == new.segment.n_pages
    assert sorted(old.documents) == sorted(new.documents)
    for name in old.documents:
        check_document(old, old.document(name))
        check_document(new, new.document(name))
    # and the v3 file is the v2 body behind a 20-byte-longer header
    assert open(v3, "rb").read()[30:] == open(v2, "rb").read()[10:]


def test_v4_body_is_v3_body_plus_path_summaries(saved, tmp_path, monkeypatch):
    """v4 appends exactly the per-document path-summary blocks: with the
    summaries nulled, the v4 body byte-for-byte matches v3 plus one
    absent-marker byte per document."""
    db, path, data = saved
    v3 = str(tmp_path / "v3.rpro")
    monkeypatch.setattr(persist, "_VERSION", 3)
    save_store(db.store, v3)
    monkeypatch.undo()
    summaries = {
        name: doc.pathsummary for name, doc in db.store.documents.items()
    }
    try:
        for doc in db.store.documents.values():
            doc.pathsummary = None
        bare = str(tmp_path / "bare.rpro")
        save_store(db.store, bare)
    finally:
        for name, doc in db.store.documents.items():
            doc.pathsummary = summaries[name]
    bare_data = open(bare, "rb").read()
    v3_data = open(v3, "rb").read()
    assert len(bare_data) == len(v3_data) + len(db.store.documents)
    # a populated v4 file strictly extends the bare one
    assert len(data) > len(bare_data)


def test_cross_version_loads_recollect_identical_summary(
    saved, tmp_path, monkeypatch
):
    """Older files load with no summary, and recollecting it from the
    pages reproduces the fresh import's summary exactly."""
    from repro.storage.store import recollect_pathsummary

    db, path, _ = saved
    fresh = {
        name: doc.pathsummary for name, doc in db.store.documents.items()
    }
    assert all(summary is not None for summary in fresh.values())
    for version in (2, 3):
        old_path = str(tmp_path / f"v{version}.rpro")
        monkeypatch.setattr(persist, "_VERSION", version)
        save_store(db.store, old_path)
        monkeypatch.undo()
        old = load_store(old_path)
        for name, doc in old.documents.items():
            assert doc.pathsummary is None
            assert recollect_pathsummary(old, doc) == fresh[name]
    # and the v4 file round-trips the summary without recollection
    loaded = load_store(path)
    for name, doc in loaded.documents.items():
        assert doc.pathsummary == fresh[name]


def test_v4_path_summary_block_truncation_and_bit_rot(saved, tmp_path, monkeypatch):
    """Sweep damage specifically through the trailing path-summary
    blocks: with the v3 checksum monkeypatched away (header version 2
    keeps the body parser but drops the CRC guard) every cut must still
    surface as a typed error, and with the guard in place bit-rot in the
    summary bytes must be caught by the checksum."""
    db, path, data = saved
    # locate the summary region: it is everything the bare (summary-less)
    # image does not contain
    summaries = {
        name: doc.pathsummary for name, doc in db.store.documents.items()
    }
    try:
        for doc in db.store.documents.values():
            doc.pathsummary = None
        bare = str(tmp_path / "bare.rpro")
        save_store(db.store, bare)
    finally:
        for name, doc in db.store.documents.items():
            doc.pathsummary = summaries[name]
    summary_bytes = len(data) - len(open(bare, "rb").read())
    assert summary_bytes > 0
    target = str(tmp_path / "cut4.rpro")
    for cut in range(len(data) - 1, len(data) - summary_bytes, -1):
        open(target, "wb").write(data[:cut])
        with pytest.raises((StoreCorruptError, StorageError)):
            load_store(target)
    # bit-rot anywhere in the summary region trips the body checksum
    for offset in range(len(data) - summary_bytes // 2, len(data), 7):
        corrupt = bytearray(data)
        corrupt[offset] ^= 0x40
        open(target, "wb").write(bytes(corrupt))
        with pytest.raises(StoreCorruptError):
            load_store(target)


def test_checkpoint_lsn_round_trips(saved, tmp_path):
    db, _, _ = saved
    db.store.checkpoint_lsn = 41
    path = str(tmp_path / "lsn.rpro")
    save_store(db.store, path)
    assert load_store(path).checkpoint_lsn == 41


def test_v2_file_loads_with_zero_lsn(saved, tmp_path, monkeypatch):
    db, _, _ = saved
    db.store.checkpoint_lsn = 41
    monkeypatch.setattr(persist, "_VERSION", 2)
    path = str(tmp_path / "v2lsn.rpro")
    save_store(db.store, path)
    assert load_store(path).checkpoint_lsn == 0


def test_save_leaves_no_temp_file(saved, tmp_path):
    import os

    db, _, _ = saved
    path = str(tmp_path / "clean.rpro")
    save_store(db.store, path)
    assert not os.path.exists(path + ".tmp")
