"""Corruption regression tests for the binary store format.

The load path must never leak a bare ``struct.error`` (or worse, a
``UnicodeDecodeError``) for a truncated or damaged file: every byte
shortfall surfaces as a typed :class:`~repro.errors.StoreCorruptError`
with offset context, and non-store files raise
:class:`~repro.errors.StorageError`.
"""

import struct

import pytest

from repro.errors import StorageError, StoreCorruptError
from repro.storage import persist
from repro.storage.persist import load_store, save_store
from repro.storage.store import check_document

from tests.conftest import small_database


@pytest.fixture
def saved(tmp_path):
    db, _ = small_database(seed=91, n_top=25)
    path = str(tmp_path / "store.rpro")
    save_store(db.store, path)
    return db, path, open(path, "rb").read()


def test_truncation_at_every_boundary(saved, tmp_path):
    """Sweep truncation points across the whole file: header, checksum
    block, and (via the v2 variant below) every body section."""
    _, path, data = saved
    target = str(tmp_path / "cut.rpro")
    # every header byte, then a stride through the body
    cuts = list(range(len(data) - 1, 0, -max(1, len(data) // 200)))
    cuts.extend(range(min(64, len(data))))
    for cut in cuts:
        open(target, "wb").write(data[:cut])
        with pytest.raises((StoreCorruptError, StorageError)) as err:
            load_store(target)
        # offset context or a typed message, never a raw struct error
        assert "store" in str(err.value)


def test_truncation_inside_v2_body_sections(saved, tmp_path, monkeypatch):
    """v1/v2 files have no body-length guard, so truncation lands inside
    individual read helpers — each must raise the typed error."""
    db, _, _ = saved
    monkeypatch.setattr(persist, "_VERSION", 2)
    path = str(tmp_path / "v2.rpro")
    save_store(db.store, path)
    data = open(path, "rb").read()
    target = str(tmp_path / "cut2.rpro")
    for cut in range(len(data) - 1, 0, -max(1, len(data) // 300)):
        open(target, "wb").write(data[:cut])
        with pytest.raises((StoreCorruptError, StorageError)):
            load_store(target)


def test_truncation_error_reports_offset(saved, tmp_path):
    _, path, data = saved
    target = str(tmp_path / "cut.rpro")
    open(target, "wb").write(data[: len(data) // 2])
    with pytest.raises(StoreCorruptError, match=r"offset"):
        load_store(target)


def test_body_checksum_detects_bit_rot(saved, tmp_path):
    _, path, data = saved
    corrupt = bytearray(data)
    corrupt[len(data) // 2] ^= 0x01
    target = str(tmp_path / "rot.rpro")
    open(target, "wb").write(bytes(corrupt))
    with pytest.raises(StoreCorruptError, match="checksum mismatch"):
        load_store(target)


def test_header_corruption_detected(saved, tmp_path):
    _, path, data = saved
    # damage the recorded body length: the read shortfall must be typed
    corrupt = bytearray(data)
    length_at = 4 + 6 + 8 + 4  # magic | version+page_size | lsn | crc
    corrupt[length_at : length_at + 8] = struct.pack("<Q", len(data) * 2)
    target = str(tmp_path / "len.rpro")
    open(target, "wb").write(bytes(corrupt))
    with pytest.raises(StoreCorruptError):
        load_store(target)


def test_not_a_store_file(tmp_path):
    target = str(tmp_path / "nope.rpro")
    open(target, "wb").write(b"<?xml version='1.0'?><root/>")
    with pytest.raises(StorageError):
        load_store(target)


def test_unsupported_version(saved, tmp_path):
    _, path, data = saved
    corrupt = bytearray(data)
    corrupt[4:6] = struct.pack("<H", 99)
    target = str(tmp_path / "future.rpro")
    open(target, "wb").write(bytes(corrupt))
    with pytest.raises(StorageError, match="version"):
        load_store(target)


def test_empty_file(tmp_path):
    target = str(tmp_path / "empty.rpro")
    open(target, "wb").close()
    with pytest.raises(StorageError):
        load_store(target)


def test_v2_and_v3_round_trips_agree(saved, tmp_path, monkeypatch):
    """The v3 header adds integrity metadata only — the body bytes and
    the loaded store are the same as a v2 file's."""
    db, path, _ = saved
    v2 = str(tmp_path / "v2.rpro")
    monkeypatch.setattr(persist, "_VERSION", 2)
    save_store(db.store, v2)
    monkeypatch.undo()
    old = load_store(v2)
    new = load_store(path)
    assert old.segment.n_pages == new.segment.n_pages
    assert sorted(old.documents) == sorted(new.documents)
    for name in old.documents:
        check_document(old, old.document(name))
        check_document(new, new.document(name))
    # and the v3 file is the v2 body behind a 20-byte-longer header
    assert open(path, "rb").read()[30:] == open(v2, "rb").read()[10:]


def test_checkpoint_lsn_round_trips(saved, tmp_path):
    db, _, _ = saved
    db.store.checkpoint_lsn = 41
    path = str(tmp_path / "lsn.rpro")
    save_store(db.store, path)
    assert load_store(path).checkpoint_lsn == 41


def test_v2_file_loads_with_zero_lsn(saved, tmp_path, monkeypatch):
    db, _, _ = saved
    db.store.checkpoint_lsn = 41
    monkeypatch.setattr(persist, "_VERSION", 2)
    path = str(tmp_path / "v2lsn.rpro")
    save_store(db.store, path)
    assert load_store(path).checkpoint_lsn == 0


def test_save_leaves_no_temp_file(saved, tmp_path):
    import os

    db, _, _ = saved
    path = str(tmp_path / "clean.rpro")
    save_store(db.store, path)
    assert not os.path.exists(path + ".tmp")
