"""Tests for ORDPATH order labels."""

import pytest

from repro.storage.ordpath import OrdPath, label_between


def test_root_label():
    assert OrdPath.root().components == (1,)


def test_initial_children_are_odd_and_ordered():
    root = OrdPath.root()
    labels = [root.child(i) for i in range(5)]
    assert [l.components[-1] for l in labels] == [1, 3, 5, 7, 9]
    assert labels == sorted(labels)


def test_comparison_is_document_order():
    root = OrdPath.root()
    a = root.child(0)  # 1.1
    b = root.child(1)  # 1.3
    a1 = a.child(0)  # 1.1.1
    # document order: a, a1, b
    assert a < a1 < b


def test_labels_must_end_odd():
    with pytest.raises(ValueError):
        OrdPath((1, 2))
    with pytest.raises(ValueError):
        OrdPath(())


def test_level_ignores_carets():
    assert OrdPath((1,)).level() == 1
    assert OrdPath((1, 3)).level() == 2
    assert OrdPath((1, 2, 1)).level() == 2  # 2 is a caret
    assert OrdPath((1, 4, 0, 1)).level() == 2


def test_ancestor_relation():
    root = OrdPath.root()
    child = root.child(2)
    grand = child.child(0)
    assert root.is_ancestor_of(child)
    assert root.is_ancestor_of(grand)
    assert child.is_ancestor_of(grand)
    assert not child.is_ancestor_of(root)
    assert not child.is_ancestor_of(child)


def test_caret_insertion_does_not_create_false_ancestry():
    left = OrdPath((1, 3))
    right = OrdPath((1, 5))
    mid = label_between(left, right)
    assert left < mid < right
    assert not left.is_ancestor_of(mid)
    assert mid.level() == 2


def test_parent_prefixes():
    label = OrdPath((1, 2, 3, 5))
    prefixes = list(label.parent_prefixes())
    assert prefixes[-1] == OrdPath.root()
    # the immediate parent of 1.2.3.5 is 1.2.3 (2 is a caret)
    assert prefixes[0] == OrdPath((1, 2, 3))


def test_between_edges():
    first = OrdPath((1, 1))
    before = label_between(None, first)
    assert before < first
    assert before.level() == first.level()
    after = label_between(first, None)
    assert first < after
    assert after.level() == first.level()


def test_between_requires_neighbour():
    with pytest.raises(ValueError):
        label_between(None, None)


def test_between_rejects_non_siblings():
    with pytest.raises(ValueError):
        label_between(OrdPath((1, 1)), OrdPath((1, 3, 1)))


def test_between_rejects_wrong_order():
    with pytest.raises(ValueError):
        label_between(OrdPath((1, 5)), OrdPath((1, 3)))


def test_repeated_careting_stays_consistent():
    """Insert 100 labels always at the same gap; order must hold."""
    left = OrdPath((1, 1))
    right = OrdPath((1, 3))
    labels = [left, right]
    for _ in range(100):
        mid = label_between(labels[0], labels[1])
        assert labels[0] < mid < labels[1]
        assert mid.level() == 2
        labels.insert(1, mid)
    assert labels == sorted(labels)


def test_next_sibling_label():
    assert OrdPath((1, 5)).next_sibling_label() == OrdPath((1, 7))
