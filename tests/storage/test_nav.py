"""White-box tests for intra-cluster navigation on the paper's example tree."""

import pytest

from repro.axes import Axis
from repro.storage.nav import iter_axis, iter_resume, speculative_entries
from repro.storage.nodeid import page_of, slot_of

from tests.paper_tree import PAGE_A, PAGE_B, PAGE_C, PAGE_D, build_paper_tree


@pytest.fixture(scope="module")
def paper():
    return build_paper_tree()


def nav(paper, name, axis, resume=False):
    """Run a navigation and render results as paper node names."""
    nid = paper.nodes[name]
    page = paper.db.store.segment.page(page_of(nid))
    hops = []
    fn = iter_resume if resume else iter_axis
    results = list(fn(page, slot_of(nid), axis, lambda: hops.append(1)))
    reverse = {v: k for k, v in paper.nodes.items()}
    named = []
    for is_border, slot in results:
        from repro.storage.nodeid import make_nodeid

        named.append((is_border, reverse[make_nodeid(page.page_no, slot)]))
    return named, len(hops)


def test_child_axis_yields_borders_unexpanded(paper):
    results, hops = nav(paper, "d1", Axis.CHILD)
    assert results == [(True, "d2"), (True, "d3"), (False, "d4")]
    assert hops == 3


def test_child_axis_within_cluster(paper):
    results, _ = nav(paper, "c2", Axis.CHILD)
    assert results == [(False, "c3"), (False, "c4")]


def test_descendant_stops_at_borders(paper):
    results, _ = nav(paper, "d1", Axis.DESCENDANT)
    assert results == [(True, "d2"), (True, "d3"), (False, "d4"), (True, "d5")]


def test_descendant_or_self_includes_self(paper):
    results, _ = nav(paper, "c2", Axis.DESCENDANT_OR_SELF)
    assert results[0] == (False, "c2")
    assert (False, "c4") in results


def test_self_axis(paper):
    results, _ = nav(paper, "a2", Axis.SELF)
    assert results == [(False, "a2")]


def test_parent_within_cluster(paper):
    results, _ = nav(paper, "a3", Axis.PARENT)
    assert results == [(False, "a2")]


def test_parent_across_border(paper):
    results, _ = nav(paper, "a2", Axis.PARENT)
    assert results == [(True, "a1")]


def test_parent_of_root_is_empty(paper):
    results, _ = nav(paper, "d1", Axis.PARENT)
    assert results == []


def test_ancestor_stops_at_border(paper):
    results, _ = nav(paper, "a3", Axis.ANCESTOR)
    assert results == [(False, "a2"), (True, "a1")]


def test_ancestor_or_self(paper):
    results, _ = nav(paper, "c4", Axis.ANCESTOR_OR_SELF)
    assert results == [(False, "c4"), (False, "c2"), (True, "c1")]


def test_following_sibling_intra(paper):
    results, _ = nav(paper, "c3", Axis.FOLLOWING_SIBLING)
    assert results == [(False, "c4")]


def test_following_sibling_of_cluster_root_crosses(paper):
    results, _ = nav(paper, "a2", Axis.FOLLOWING_SIBLING)
    assert results == [(True, "a1")]


def test_preceding_sibling_intra(paper):
    results, _ = nav(paper, "c4", Axis.PRECEDING_SIBLING)
    assert results == [(False, "c3")]


# ------------------------------------------------------------------ resume


def test_resume_child_at_up_border(paper):
    """A paused child step entering cluster a tests only the local root."""
    results, _ = nav(paper, "a1", Axis.CHILD, resume=True)
    assert results == [(False, "a2")]


def test_resume_descendant_is_descendant_or_self(paper):
    results, _ = nav(paper, "c1", Axis.DESCENDANT, resume=True)
    assert results == [(False, "c2"), (False, "c3"), (False, "c4")]


def test_resume_parent_at_down_border(paper):
    results, _ = nav(paper, "d2", Axis.PARENT, resume=True)
    assert results == [(False, "d1")]


def test_resume_ancestor_at_down_border(paper):
    results, _ = nav(paper, "d5", Axis.ANCESTOR, resume=True)
    assert results == [(False, "d4"), (False, "d1")]


def test_resume_following_sibling_at_down_border(paper):
    """a2's siblings resume in cluster d after border d2."""
    results, _ = nav(paper, "d2", Axis.FOLLOWING_SIBLING, resume=True)
    assert results == [(True, "d3"), (False, "d4")]


def test_resume_preceding_sibling_at_down_border(paper):
    results, _ = nav(paper, "d3", Axis.PRECEDING_SIBLING, resume=True)
    assert results == [(True, "d2")]


def test_resume_sibling_candidate_at_up_border(paper):
    """Crossing into an exiled sibling yields the sibling itself."""
    results, _ = nav(paper, "c1", Axis.FOLLOWING_SIBLING, resume=True)
    assert results == [(False, "c2")]


# -------------------------------------------------------------- speculation


def test_speculative_entries_downward(paper):
    segment = paper.db.store.segment
    assert list(speculative_entries(segment.page(PAGE_A), Axis.DESCENDANT)) == [0]
    assert list(speculative_entries(segment.page(PAGE_D), Axis.CHILD)) == []


def test_speculative_entries_upward(paper):
    segment = paper.db.store.segment
    # cluster d holds three downward borders: entries for upward axes
    assert list(speculative_entries(segment.page(PAGE_D), Axis.ANCESTOR)) == [1, 2, 4]
    assert list(speculative_entries(segment.page(PAGE_A), Axis.PARENT)) == []


def test_speculative_entries_sibling(paper):
    segment = paper.db.store.segment
    # every border is a potential sibling entry
    assert list(speculative_entries(segment.page(PAGE_D), Axis.FOLLOWING_SIBLING)) == [1, 2, 4]
    assert list(speculative_entries(segment.page(PAGE_C), Axis.FOLLOWING_SIBLING)) == [0]
