"""Tests for records, slotted pages and segments."""

import pytest

from repro.errors import StorageError
from repro.model.tree import Kind
from repro.storage.nodeid import make_nodeid
from repro.storage.ordpath import OrdPath
from repro.storage.page import PAGE_HEADER, SLOT_ENTRY, Page, Segment
from repro.storage.record import BORDER_RECORD_SIZE, BorderRecord, CoreRecord


def core(value=None) -> CoreRecord:
    return CoreRecord(Kind.ELEMENT, 5, OrdPath((1, 3)), parent_slot=0, value=value)


def test_core_record_size_grows_with_children_and_value():
    record = core()
    base = record.size()
    record.child_slots.append(1)
    assert record.size() == base + 4
    with_value = core(value="x" * 10)
    assert with_value.size() == base + 10


def test_border_record_size():
    plain = BorderRecord(None, 0, down=True)
    assert plain.size() == BORDER_RECORD_SIZE
    proxy = BorderRecord(None, -1, down=False, continuation=True, child_slots=[1, 2])
    assert proxy.size() == BORDER_RECORD_SIZE + 8


def test_border_target_requires_backpatch():
    border = BorderRecord(None, 0, down=True)
    with pytest.raises(ValueError):
        border.target()
    border.companion = make_nodeid(3, 4)
    assert border.target() == make_nodeid(3, 4)


def test_page_add_and_fetch():
    page = Page(0, 512)
    slot = page.add(core())
    assert slot == 0
    assert page.record(0).tag == 5
    assert page.used_bytes > PAGE_HEADER


def test_page_overflow_rejected():
    page = Page(0, 96)
    page.add(core())
    with pytest.raises(StorageError):
        for _ in range(10):
            page.add(core())


def test_page_grow_accounting():
    page = Page(0, 512)
    page.add(core())
    free = page.free_bytes()
    page.grow(8)
    assert page.free_bytes() == free - 8
    with pytest.raises(StorageError):
        page.grow(10_000)


def test_page_bad_slot():
    page = Page(0, 512)
    with pytest.raises(StorageError):
        page.record(3)


def test_segment_allocate_and_adopt():
    segment = Segment(512)
    p0 = segment.allocate()
    assert p0.page_no == 0
    external = Page(1, 512)
    segment.adopt(external)
    assert segment.page(1) is external
    assert segment.n_pages == 2
    assert segment.total_bytes() == 1024


def test_segment_adopt_out_of_order_rejected():
    segment = Segment(512)
    with pytest.raises(StorageError):
        segment.adopt(Page(5, 512))


def test_segment_rejects_tiny_pages():
    with pytest.raises(StorageError):
        Segment(PAGE_HEADER)


def test_segment_missing_page():
    segment = Segment(512)
    with pytest.raises(StorageError):
        segment.page(0)
