"""Tests for cost-accounted document export (scan and navigate)."""

import pytest

from repro import Database, ImportOptions
from repro.storage.update import insert_node
from repro.xml.escape import serialize

from tests.conftest import make_random_tree, small_database


def canonical(db, tree):
    return serialize(tree)


def test_tiny_document_round_trip():
    db = Database(page_size=512, buffer_pages=16)
    source = '<a x="1"><b>text &amp; more</b><c/><d>mixed<e/>tail</d></a>'
    db.load_xml(source, "d")
    for method in ("scan", "navigate"):
        text, result = db.export_xml(doc="d", method=method)
        assert text == source
        assert result.total_time > 0


@pytest.mark.parametrize("fragmentation", [0.0, 1.0])
@pytest.mark.parametrize("method", ["scan", "navigate"])
def test_multi_page_round_trip(fragmentation, method):
    db = Database(page_size=512, buffer_pages=64)
    tree = make_random_tree(db.tags, seed=17, n_top=50)
    db.add_tree(
        tree, "d", ImportOptions(page_size=512, fragmentation=fragmentation, seed=5)
    )
    text, _ = db.export_xml(doc="d", method=method)
    assert text == serialize(tree)


def test_both_methods_agree(db_and_tree):
    db, tree = db_and_tree
    scan_text, _ = db.export_xml(doc="d", method="scan")
    navigate_text, _ = db.export_xml(doc="d", method="navigate")
    assert scan_text == navigate_text == serialize(tree)


def test_scan_reads_every_page_once():
    db, tree = small_database(seed=23, n_top=80)
    doc = db.document("d")
    _, result = db.export_xml(doc="d", method="scan")
    assert result.stats.pages_read == doc.n_pages
    assert result.stats.seeks <= 1


def test_scan_beats_navigation_on_fragmented_layout():
    db, _ = small_database(seed=23, n_top=80, fragmentation=1.0)
    _, scan = db.export_xml(doc="d", method="scan")
    _, navigate = db.export_xml(doc="d", method="navigate")
    assert scan.total_time < navigate.total_time
    assert scan.stats.seeks < navigate.stats.seeks


def test_export_after_updates():
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml("<root><a>one</a><b/></root>", "d")
    doc = db.document("d")
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    for i in range(30):
        insert_node(db.store, doc, root, 1, f"n{i}", value=None)
    scan_text, _ = db.export_xml(doc="d", method="scan")
    navigate_text, _ = db.export_xml(doc="d", method="navigate")
    assert scan_text == navigate_text
    assert scan_text.count("<n0/>") == 1
    assert scan_text.index("<a>") < scan_text.index("<n29/>") < scan_text.index("<b/>")


def test_unknown_method_rejected():
    db = Database(page_size=512, buffer_pages=16)
    db.load_xml("<a/>", "d")
    with pytest.raises(Exception):
        db.export_xml(doc="d", method="teleport")
