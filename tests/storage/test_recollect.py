"""Tests for statistics recollection after updates."""

from repro import Database
from repro.storage.store import DocumentStatistics, recollect_statistics
from repro.storage.update import delete_subtree, insert_node

from tests.conftest import make_random_tree, small_database


def test_recollection_matches_import_time_statistics():
    db, tree = small_database(seed=41, n_top=40)
    doc = db.document("d")
    original = doc.statistics
    recollected = recollect_statistics(db.store, doc)
    assert recollected.n_nodes == original.n_nodes
    assert recollected.n_elements == original.n_elements
    assert recollected.tag_counts == original.tag_counts
    assert recollected.child_pairs == original.child_pairs
    assert recollected.desc_pairs == original.desc_pairs


def test_recollection_after_updates():
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml("<root><a/><a/></root>", "d")
    doc = db.document("d")
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    insert_node(db.store, doc, root, 0, "a")
    insert_node(db.store, doc, root, 0, "b")
    assert doc.statistics is None  # invalidated by the updates
    stats = recollect_statistics(db.store, doc)
    a = db.tags.lookup("a")
    b = db.tags.lookup("b")
    assert stats.tag_counts[a] == 3
    assert stats.tag_counts[b] == 1
    # and the AUTO plan chooser has statistics again
    result = db.execute("count(//a)", doc="d", plan="auto")
    assert result.value == 3.0


def test_recollection_after_delete():
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml("<root><a><x/></a><a/></root>", "d")
    doc = db.document("d")
    victim = db.execute("/root/a", doc="d", plan="simple").nodes[0]
    delete_subtree(db.store, doc, victim)
    stats = recollect_statistics(db.store, doc)
    assert stats.tag_counts[db.tags.lookup("a")] == 1
    assert db.tags.lookup("x") not in stats.tag_counts or stats.tag_counts[
        db.tags.lookup("x")
    ] == 0
    assert doc.n_nodes == stats.n_nodes
