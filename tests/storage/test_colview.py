"""Tests for the columnar cluster view (storage/colview.py).

Two layers of guarantees:

* parity — for every core slot and axis of a stored document,
  :meth:`ColumnView.axis_candidates` / :meth:`resume_candidates` /
  :meth:`entry_slots` enumerate exactly what ``iter_axis`` /
  ``iter_resume`` / ``speculative_entries`` do, with the same number of
  hop charges encoded in the batch shape;
* coherence — every mutation door (``Page.add``, ``Page.tombstone``,
  the direct-write sites in ``storage/update.py``) drops the view, so a
  query after an update can never see stale columns.  The tombstone
  slot-reuse case is the regression this PR fixes: ``Page.add`` popping
  a ``free_slots`` entry rewrites the middle of the record array and
  must invalidate exactly as deletes do.
"""

import pytest

from repro import Database, EvalOptions, ImportOptions
from repro.axes import Axis
from repro.model.tree import Kind
from repro.storage.colview import KIND_BORDER, KIND_TOMBSTONE, ColumnView
from repro.storage.nav import iter_axis, iter_resume, speculative_entries
from repro.storage.record import CoreRecord
from repro.storage.update import delete_subtree, insert_node

from tests.conftest import make_random_tree

AXES = (
    Axis.SELF,
    Axis.CHILD,
    Axis.ATTRIBUTE,
    Axis.DESCENDANT,
    Axis.DESCENDANT_OR_SELF,
    Axis.PARENT,
    Axis.ANCESTOR,
    Axis.ANCESTOR_OR_SELF,
    Axis.FOLLOWING_SIBLING,
    Axis.PRECEDING_SIBLING,
)


def build_db(seed=7, fragmentation=1.0, page_size=512):
    db = Database(page_size=page_size, buffer_pages=48)
    tree = make_random_tree(db.tags, seed=seed, n_top=25)
    db.add_tree(
        tree,
        "d",
        ImportOptions(page_size=page_size, fragmentation=fragmentation, seed=seed),
    )
    return db


def scalar_enumeration(page, slot, axis, resumed):
    """Drain the nav generator, counting hop charges.

    Enumerations that raise (degenerate border/axis combos never reached
    by real plans) reduce to the exception's type and message, so parity
    extends to the error contract.
    """
    hops = 0

    def charge():
        nonlocal hops
        hops += 1

    try:
        nav = (
            iter_resume(page, slot, axis, charge)
            if resumed
            else iter_axis(page, slot, axis, charge)
        )
        return _normalize(list(nav)), hops
    except Exception as exc:
        return ("raised", type(exc).__name__, str(exc))


def batch_enumeration(view, slot, axis, resumed):
    """Replay a candidate batch into (is_border, slot) pairs + hop count."""
    try:
        if resumed:
            upfront, free_head, cands = view.resume_candidates(slot, axis)
        else:
            upfront, free_head, cands = view.axis_candidates(slot, axis)
    except Exception as exc:
        return ("raised", type(exc).__name__, str(exc))
    kinds = view.kinds
    pairs = _normalize([(s >= 0 and kinds[s] < 0, s) for s in cands])
    hops = upfront + max(0, len(cands) - free_head)
    return pairs, hops


def _normalize(pairs):
    """Collapse the borderness flag for sentinel slots.

    Slot -1 is a continuation proxy's "no local root" marker; degenerate
    resumes (axes real plans never resume at a proxy) surface it as a
    candidate, where any flag derived from it is a Python index
    wraparound artefact on both sides.  Slot identity still must agree.
    """
    return [(("degenerate", s) if s < 0 else (flag, s)) for flag, s in pairs]


@pytest.mark.parametrize("fragmentation", [0.0, 1.0])
def test_axis_and_resume_parity_everywhere(fragmentation):
    """Every (slot, axis) batch mirrors nav candidate-for-candidate."""
    db = build_db(fragmentation=fragmentation)
    doc = db.document("d")
    checked_core = checked_border = 0
    for page_no in doc.page_nos:
        page = db.store.segment.page(page_no)
        view = page.colview()
        for slot, record in enumerate(page.records):
            if record is None:
                assert view.kinds[slot] == KIND_TOMBSTONE
                continue
            resumed = record.is_border
            if resumed:
                assert view.kinds[slot] == KIND_BORDER
                # resume only at axes that can actually enter through this
                # border (mirrors speculative_entries): downward steps
                # pause at upward borders, upward steps at downward ones,
                # sibling scans at either; a self step never crosses
                axes = tuple(
                    axis
                    for axis in AXES
                    if axis is not Axis.SELF
                    and (
                        (axis.is_downward and not record.down)
                        or (axis.is_upward and record.down)
                        or (not axis.is_downward and not axis.is_upward)
                    )
                )
            else:
                axes = AXES
            for axis in axes:
                want = scalar_enumeration(page, slot, axis, resumed)
                got = batch_enumeration(view, slot, axis, resumed)
                assert got == want, (page_no, slot, axis, resumed)
            checked_core += not resumed
            checked_border += resumed
    assert checked_core > 50 and checked_border > 5


def test_entry_slots_match_speculative_entries():
    db = build_db()
    doc = db.document("d")
    for page_no in doc.page_nos:
        page = db.store.segment.page(page_no)
        view = page.colview()
        for axis in AXES:
            assert view.entry_slots(axis) == list(speculative_entries(page, axis)), (
                page_no,
                axis,
            )


def test_view_is_lazy_and_memoized():
    db = build_db()
    doc = db.document("d")
    page = db.store.segment.page(doc.page_nos[0])
    assert page._colview is None
    view = page.colview()
    assert isinstance(view, ColumnView)
    assert page.colview() is view
    core = next(
        s for s, r in enumerate(page.records) if r is not None and not r.is_border
    )
    batch = view.axis_candidates(core, Axis.DESCENDANT)
    assert view.axis_candidates(core, Axis.DESCENDANT) is batch


def test_tombstone_invalidates_view():
    db = build_db()
    doc = db.document("d")
    page = db.store.segment.page(doc.page_nos[0])
    view = page.colview()
    slot = next(
        s
        for s, r in enumerate(page.records)
        if r is not None and not r.is_border and not r.child_slots and r.parent_slot >= 0
    )
    parent = page.records[slot].parent_slot
    if not page.records[parent].is_border:
        page.records[parent].child_slots.remove(slot)
    page.tombstone(slot)
    assert page._colview is None
    rebuilt = page.colview()
    assert rebuilt is not view
    assert rebuilt.kinds[slot] == KIND_TOMBSTONE


def test_add_reusing_tombstoned_slot_invalidates_view():
    """The satellite regression: ``Page.add`` into a ``free_slots`` entry
    rewrites the middle of the record array and must drop the view."""
    db = build_db()
    doc = db.document("d")
    page = db.store.segment.page(doc.page_nos[0])
    slot = next(
        s
        for s, r in enumerate(page.records)
        if r is not None and not r.is_border and not r.child_slots and r.parent_slot >= 0
    )
    record = page.records[slot]
    parent = record.parent_slot
    if not page.records[parent].is_border:
        page.records[parent].child_slots.remove(slot)
    page.tombstone(slot)
    stale = page.colview()
    assert stale.kinds[slot] == KIND_TOMBSTONE
    reused = page.add(
        CoreRecord(Kind.ELEMENT, record.tag, record.ordpath, parent)
    )
    assert reused == slot, "expected the tombstoned slot to be reused"
    assert page._colview is None, "slot reuse must invalidate the columnar view"
    assert page.colview().kinds[slot] >= 0


def _names(db, query, batched):
    result = db.execute(
        query, doc="d", plan="simple", options=EvalOptions(batched=batched)
    )
    return [db.node_info(nid)[1] for nid in result.nodes]


def test_update_then_query_sees_fresh_columns():
    """End-to-end: delete + insert (reusing slots) between batched
    queries returns exactly the scalar (pre-refactor) results."""
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml("<root><a>one</a><b/><c>two</c></root>", "d")
    doc = db.document("d")
    assert _names(db, "/root/*", batched=True) == ["a", "b", "c"]
    b = db.execute("/root/b", doc="d", plan="simple").nodes[0]
    delete_subtree(db.store, doc, b)
    assert _names(db, "/root/*", batched=True) == ["a", "c"]
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    insert_node(db.store, doc, root, 2, "z")
    for query in ("/root/*", "/root/z", "//z"):
        batched = _names(db, query, batched=True)
        scalar = _names(db, query, batched=False)
        assert batched == scalar, query
    assert _names(db, "/root/*", batched=True) == ["a", "c", "z"]


def test_random_update_storm_keeps_batched_scalar_identical():
    """Many structural updates; after each, batched == scalar results."""
    db = build_db(page_size=512)
    doc = db.document("d")
    queries = ("//a", "/root/*", "//b//c", "//e")
    for round_no in range(6):
        victims = db.execute("//a", doc="d", plan="simple").nodes
        if victims:
            delete_subtree(db.store, doc, victims[round_no % len(victims)])
        roots = db.execute("/root", doc="d", plan="simple").nodes
        insert_node(db.store, doc, roots[0], 0, "a")
        for query in queries:
            on = db.execute(query, doc="d", options=EvalOptions(batched=True))
            off = db.execute(query, doc="d", options=EvalOptions(batched=False))
            assert sorted(on.nodes) == sorted(off.nodes), (round_no, query)
            assert on.total_time == off.total_time, (round_no, query)
