"""Tests for binary store persistence."""

import pytest

from repro import Database, ImportOptions
from repro.errors import StorageError
from repro.storage.persist import load_store, save_store
from repro.storage.store import check_document, export_tree
from repro.storage.update import insert_node
from repro.xml.escape import serialize

from tests.conftest import make_random_tree, small_database


def test_round_trip_preserves_queries(tmp_path):
    db, tree = small_database(seed=61, n_top=50, fragmentation=1.0)
    path = str(tmp_path / "store.rpro")
    db.save(path)
    loaded = Database.load(path, buffer_pages=64)
    for query in ("count(//a)", "count(//b//c)", "//a/b"):
        original = db.execute(query, doc="d", plan="xschedule")
        restored = loaded.execute(query, doc="d", plan="xschedule")
        if original.value is not None:
            assert restored.value == original.value
        else:
            assert restored.nodes == original.nodes


def test_round_trip_preserves_physical_image(tmp_path):
    db, tree = small_database(seed=62, n_top=40)
    path = str(tmp_path / "store.rpro")
    db.save(path)
    loaded = Database.load(path)
    assert loaded.store.segment.n_pages == db.store.segment.n_pages
    for page_no in range(db.store.segment.n_pages):
        original = db.store.segment.page(page_no)
        restored = loaded.store.segment.page(page_no)
        assert restored.used_bytes == original.used_bytes
        assert len(restored.records) == len(original.records)
    doc = loaded.document("d")
    check_document(loaded.store, doc)
    assert serialize(export_tree(loaded.store, doc)) == serialize(tree)


def test_round_trip_after_updates(tmp_path):
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml("<root><a>x</a></root>", "d")
    doc = db.document("d")
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    for i in range(20):
        insert_node(db.store, doc, root, 0, f"n{i}")
    path = str(tmp_path / "store.rpro")
    db.save(path)
    loaded = Database.load(path)
    assert loaded.execute("count(/root/*)", doc="d").value == 21.0
    check_document(loaded.store, loaded.document("d"))


def test_statistics_recollected_on_load(tmp_path):
    db, _ = small_database(seed=63, n_top=30)
    path = str(tmp_path / "store.rpro")
    db.save(path)
    loaded = Database.load(path)
    assert loaded.document("d").statistics is not None
    assert loaded.execute("count(//a)", doc="d", plan="auto").value == db.execute(
        "count(//a)", doc="d", plan="auto"
    ).value
    plain = Database.load(path, collect_statistics=False)
    assert plain.document("d").statistics is None


def test_multiple_documents_round_trip(tmp_path):
    db = Database(page_size=512, buffer_pages=32)
    t1 = make_random_tree(db.tags, seed=64, n_top=20)
    t2 = make_random_tree(db.tags, seed=65, n_top=20)
    db.add_tree(t1, "one", ImportOptions(page_size=512))
    db.add_tree(t2, "two", ImportOptions(page_size=512))
    path = str(tmp_path / "store.rpro")
    db.save(path)
    loaded = Database.load(path)
    assert set(loaded.store.documents) == {"one", "two"}
    for name in ("one", "two"):
        assert loaded.execute("count(//*)", doc=name).value == db.execute(
            "count(//*)", doc=name
        ).value


def test_bad_magic_rejected(tmp_path):
    path = tmp_path / "junk.bin"
    path.write_bytes(b"NOPE" + b"\x00" * 32)
    with pytest.raises(StorageError):
        load_store(str(path))


def test_negative_ordpath_components_survive(tmp_path):
    """Careted labels (with 0 / negative components) must persist."""
    db = Database(page_size=512, buffer_pages=32)
    db.load_xml("<root><a/><b/></root>", "d")
    doc = db.document("d")
    root = db.execute("/root", doc="d", plan="simple").nodes[0]
    for _ in range(5):
        insert_node(db.store, doc, root, 0, "front")  # labels caret below 1
    path = str(tmp_path / "store.rpro")
    db.save(path)
    loaded = Database.load(path)
    names = [
        loaded.node_info(n)[1]
        for n in loaded.execute("/root/*", doc="d", plan="simple").nodes
    ]
    assert names[:5] == ["front"] * 5
    assert names[5:] == ["a", "b"]
