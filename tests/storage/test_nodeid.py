"""Tests for packed NodeIDs."""

import pytest

from repro.storage.nodeid import format_nodeid, make_nodeid, page_of, slot_of


def test_pack_unpack_roundtrip():
    for page, slot in [(0, 0), (1, 2), (12345, 678), (1 << 30, (1 << 20) - 1)]:
        nid = make_nodeid(page, slot)
        assert page_of(nid) == page
        assert slot_of(nid) == slot


def test_cluster_is_derivable_from_nodeid():
    """Paper Sec. 3.3: the cluster must be computable from the NodeID."""
    nid = make_nodeid(42, 7)
    assert page_of(nid) == 42


def test_nodeids_are_hashable_ints():
    nid = make_nodeid(3, 4)
    assert isinstance(nid, int)
    assert {nid: "x"}[make_nodeid(3, 4)] == "x"


def test_distinct_nodes_distinct_ids():
    seen = set()
    for page in range(20):
        for slot in range(20):
            seen.add(make_nodeid(page, slot))
    assert len(seen) == 400


def test_negative_components_rejected():
    with pytest.raises(ValueError):
        make_nodeid(-1, 0)
    with pytest.raises(ValueError):
        make_nodeid(0, -1)


def test_slot_overflow_rejected():
    with pytest.raises(ValueError):
        make_nodeid(0, 1 << 20)


def test_format():
    assert format_nodeid(make_nodeid(5, 9)) == "5.9"
