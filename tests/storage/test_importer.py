"""Tests for subtree clustering (the importer)."""

import pytest

from repro.errors import StorageError
from repro.model.builder import TreeBuilder, tree_from_nested
from repro.model.tags import TagDictionary
from repro.storage.importer import ClusterPolicy, ImportOptions, import_tree
from repro.storage.nodeid import page_of, slot_of
from repro.storage.record import BorderRecord, CoreRecord
from repro.storage.store import DocumentStore, check_document, export_tree
from repro.xml.escape import serialize

from tests.conftest import make_random_tree


def test_tiny_tree_single_page():
    tree = tree_from_nested(("a", [("b",), ("c",)]))
    result = import_tree(tree, ImportOptions(page_size=512))
    assert len(result.pages) == 1
    assert result.n_border_pairs == 0
    assert result.n_continuations == 0


def test_root_nodeid_points_at_document_record():
    tree = tree_from_nested(("a",))
    result = import_tree(tree, ImportOptions(page_size=512))
    record = result.pages[0].records[slot_of(result.root)]
    assert isinstance(record, CoreRecord)
    assert record.parent_slot == -1


def test_large_tree_spans_pages_with_borders():
    tags = TagDictionary()
    tree = make_random_tree(tags, seed=11, n_top=50)
    result = import_tree(tree, ImportOptions(page_size=512))
    assert len(result.pages) > 3
    assert result.n_border_pairs > 0


def test_every_node_has_a_location():
    tags = TagDictionary()
    tree = make_random_tree(tags, seed=2, n_top=30)
    result = import_tree(tree, ImportOptions(page_size=512))
    page_nos = set(result.page_nos)
    for node in range(len(tree)):
        nid = result.nodeid_of(node)
        assert page_of(nid) in page_nos
        record = result.pages[result.page_nos.index(page_of(nid))].records[slot_of(nid)]
        assert isinstance(record, CoreRecord)
        assert record.tag == tree.tag_of(node)


def test_ordpath_labels_encode_document_order():
    tags = TagDictionary()
    tree = make_random_tree(tags, seed=5, n_top=25)
    result = import_tree(tree, ImportOptions(page_size=512))

    def ordpath_of(node):
        nid = result.nodeid_of(node)
        page = result.pages[result.page_nos.index(page_of(nid))]
        return page.records[slot_of(nid)].ordpath

    # logical node ids are preorder ranks; ORDPATHs must sort identically
    labels = [ordpath_of(n) for n in range(len(tree))]
    assert labels == sorted(labels)


def test_borders_always_cross_pages():
    tags = TagDictionary()
    tree = make_random_tree(tags, seed=9, n_top=60)
    result = import_tree(tree, ImportOptions(page_size=512))
    for page in result.pages:
        for record in page.records:
            if isinstance(record, BorderRecord):
                assert page_of(record.target()) != page.page_no


def test_high_fanout_forces_continuations():
    builder = TreeBuilder()
    builder.start_element("root")
    for i in range(400):
        builder.start_element("leaf")
        builder.text("v" * (i % 13))
        builder.end_element()
    builder.end_element()
    tree = builder.finish()
    result = import_tree(tree, ImportOptions(page_size=512))
    assert result.n_continuations > 0


def test_fragmentation_permutes_pages_only():
    tags = TagDictionary()
    tree = make_random_tree(tags, seed=4, n_top=50)
    plain = import_tree(tree, ImportOptions(page_size=512, fragmentation=0.0))
    shuffled = import_tree(tree, ImportOptions(page_size=512, fragmentation=1.0, seed=3))
    assert len(plain.pages) == len(shuffled.pages)
    # same logical content, different physical positions for most nodes
    moved = sum(
        1
        for n in range(len(tree))
        if page_of(plain.nodeid_of(n)) != page_of(shuffled.nodeid_of(n))
    )
    assert moved > len(tree) // 2


def test_first_page_offset():
    tree = tree_from_nested(("a", [("b",)]))
    result = import_tree(tree, ImportOptions(page_size=512), first_page_no=10)
    assert result.page_nos == [10]
    assert page_of(result.root) == 10


def test_sequential_policy_round_trip():
    tags = TagDictionary()
    tree = make_random_tree(tags, seed=6, n_top=50)
    store = DocumentStore(page_size=512, tags=tags)
    doc = store.import_document(
        tree, "d", ImportOptions(page_size=512, policy=ClusterPolicy.SEQUENTIAL)
    )
    check_document(store, doc)
    assert serialize(export_tree(store, doc)) == serialize(tree)


def test_sequential_policy_denser_layout_order():
    """Sequential fill keeps pages closer to document order than best fit."""
    tags = TagDictionary()
    tree = make_random_tree(tags, seed=6, n_top=80)
    seq = import_tree(tree, ImportOptions(page_size=512, policy=ClusterPolicy.SEQUENTIAL))

    def inversions(result):
        pages = [page_of(result.nodeid_of(n)) for n in range(len(tree))]
        return sum(1 for a, b in zip(pages, pages[1:]) if a > b)

    best_fit = import_tree(tree, ImportOptions(page_size=512))
    assert inversions(seq) <= inversions(best_fit)


def test_page_size_too_small_rejected():
    tree = tree_from_nested(("a",))
    with pytest.raises(StorageError):
        import_tree(tree, ImportOptions(page_size=64))


@pytest.mark.parametrize("page_size", [256, 512, 2048, 8192])
def test_round_trip_across_page_sizes(page_size):
    tags = TagDictionary()
    tree = make_random_tree(tags, seed=13, n_top=40)
    store = DocumentStore(page_size=page_size, tags=tags)
    doc = store.import_document(tree, "d", ImportOptions(page_size=page_size))
    check_document(store, doc)
    assert serialize(export_tree(store, doc)) == serialize(tree)
