"""Tests for in-place updates (insert / delete / value update)."""

import random

import pytest

from repro import Database, ImportOptions
from repro.errors import StorageError
from repro.model.tree import Kind
from repro.storage.store import check_document, export_tree
from repro.storage.update import delete_subtree, insert_node, update_value
from repro.xml.escape import serialize

from tests.conftest import make_random_tree


def make_db(xml="<root><a>one</a><b/><c>two</c></root>", page_size=512):
    db = Database(page_size=page_size, buffer_pages=32)
    db.load_xml(xml, "d")
    return db


def find_one(db, query):
    result = db.execute(query, doc="d", plan="simple")
    assert len(result.nodes) == 1
    return result.nodes[0]


def test_append_child():
    db = make_db()
    doc = db.document("d")
    root = find_one(db, "/root")
    insert_node(db.store, doc, root, 3, "z")
    assert db.execute("count(/root/z)", doc="d").value == 1.0
    names = [db.node_info(n)[1] for n in db.execute("/root/*", doc="d", plan="simple").nodes]
    assert names == ["a", "b", "c", "z"]


def test_insert_between_siblings_keeps_document_order():
    db = make_db()
    doc = db.document("d")
    root = find_one(db, "/root")
    insert_node(db.store, doc, root, 1, "m")
    names = [db.node_info(n)[1] for n in db.execute("/root/*", doc="d", plan="simple").nodes]
    assert names == ["a", "m", "b", "c"]


def test_insert_first_child():
    db = make_db()
    doc = db.document("d")
    root = find_one(db, "/root")
    insert_node(db.store, doc, root, 0, "first")
    names = [db.node_info(n)[1] for n in db.execute("/root/*", doc="d", plan="simple").nodes]
    assert names[0] == "first"


def test_insert_into_empty_element():
    db = make_db()
    doc = db.document("d")
    b = find_one(db, "/root/b")
    insert_node(db.store, doc, b, 0, "inner")
    assert db.execute("count(/root/b/inner)", doc="d").value == 1.0


def test_insert_text_node():
    db = make_db()
    doc = db.document("d")
    b = find_one(db, "/root/b")
    nid = insert_node(db.store, doc, b, 0, "#text", kind=Kind.TEXT, value="hello")
    kind, _, value = db.node_info(nid)
    assert kind == "TEXT" and value == "hello"
    texts = db.execute("/root/b/text()", doc="d", plan="simple")
    assert len(texts.nodes) == 1


def test_many_inserts_at_same_position_carets_hold():
    """Stress ORDPATH careting: always insert at position 1."""
    db = make_db()
    doc = db.document("d")
    root = find_one(db, "/root")
    for i in range(50):
        insert_node(db.store, doc, root, 1, f"n{i}")
    names = [db.node_info(n)[1] for n in db.execute("/root/*", doc="d", plan="simple").nodes]
    assert names[0] == "a"
    assert names[1:51] == [f"n{49 - i}" for i in range(50)]
    assert names[51:] == ["b", "c"]
    check_document(db.store, doc)


def test_inserts_spill_to_other_pages():
    """Filling a page forces exile borders; queries stay correct."""
    db = make_db(page_size=256)
    doc = db.document("d")
    root = find_one(db, "/root")
    pages_before = db.store.segment.n_pages
    for i in range(60):
        insert_node(db.store, doc, root, i, "fat", value="x" * 40)
    assert db.execute("count(/root/fat)", doc="d").value == 60.0
    assert db.store.segment.n_pages > pages_before
    check_document(db.store, doc)


def test_all_plans_agree_after_updates():
    db = make_db()
    doc = db.document("d")
    root = find_one(db, "/root")
    for i in range(20):
        insert_node(db.store, doc, root, i % 3, "x")
    counts = {
        plan: db.execute("count(/root/x)", doc="d", plan=plan).value
        for plan in ("simple", "xschedule", "xscan")
    }
    assert set(counts.values()) == {20.0}


def test_delete_leaf():
    db = make_db()
    doc = db.document("d")
    b = find_one(db, "/root/b")
    removed = delete_subtree(db.store, doc, b)
    assert removed == 1
    assert db.execute("count(/root/b)", doc="d").value == 0.0
    names = [db.node_info(n)[1] for n in db.execute("/root/*", doc="d", plan="simple").nodes]
    assert names == ["a", "c"]


def test_delete_subtree_counts_descendants():
    db = make_db("<root><a><b><c/><c/></b>text</a><keep/></root>")
    doc = db.document("d")
    a = find_one(db, "/root/a")
    removed = delete_subtree(db.store, doc, a)
    assert removed == 5  # a, b, c, c, text
    assert db.execute("count(//c)", doc="d").value == 0.0
    assert db.execute("count(/root/keep)", doc="d").value == 1.0


def test_delete_exiled_subtree_crosses_borders():
    db = Database(page_size=256, buffer_pages=32)
    tree = make_random_tree(db.tags, seed=3, n_top=30)
    db.add_tree(tree, "d", ImportOptions(page_size=256))
    doc = db.document("d")
    before = db.execute("count(//a)", doc="d").value
    target = db.execute("/root/a", doc="d", plan="simple").nodes[0]
    delete_subtree(db.store, doc, target)
    after = db.execute("count(//a)", doc="d").value
    assert after < before


def test_delete_root_rejected():
    db = make_db()
    doc = db.document("d")
    with pytest.raises(StorageError):
        delete_subtree(db.store, doc, doc.root)


def test_update_value():
    db = make_db()
    doc = db.document("d")
    text = db.execute("/root/a/text()", doc="d", plan="simple").nodes[0]
    update_value(db.store, text, "changed")
    assert db.node_info(text)[2] == "changed"


def test_update_value_rejects_elements():
    db = make_db()
    a = find_one(db, "/root/a")
    with pytest.raises(StorageError):
        update_value(db.store, a, "nope")


def test_insert_position_out_of_range():
    db = make_db()
    doc = db.document("d")
    root = find_one(db, "/root")
    with pytest.raises(StorageError):
        insert_node(db.store, doc, root, 7, "z")


def test_statistics_invalidated_by_updates():
    db = make_db()
    doc = db.document("d")
    assert doc.statistics is not None
    insert_node(db.store, doc, find_one(db, "/root"), 0, "z")
    assert doc.statistics is None
    # AUTO still works without statistics
    assert db.execute("count(/root/z)", doc="d", plan="auto").value == 1.0


def test_randomized_update_storm_round_trips():
    """Apply a random mix of inserts and deletes; storage stays sound."""
    rng = random.Random(5)
    db = make_db(page_size=256)
    doc = db.document("d")
    for step in range(80):
        elements = db.execute("//*", doc="d", plan="simple").nodes
        if rng.random() < 0.7 or len(elements) < 4:
            parent = rng.choice(elements + [doc.root])
            kind, _, _ = db.node_info(parent)
            if kind == "TEXT":
                continue
            entries = db.execute("count(//*)", doc="d").value
            insert_node(db.store, doc, parent, 0, rng.choice("xyz"))
        else:
            victim = rng.choice(elements)
            if victim == doc.root:
                continue
            delete_subtree(db.store, doc, victim)
    check_document(db.store, doc)
    exported = export_tree(db.store, doc)
    exported.validate()
    # all plans still agree after the storm
    for query in ("count(//x)", "count(//*)", "//y"):
        results = [db.execute(query, doc="d", plan=p) for p in ("simple", "xschedule", "xscan")]
        values = {r.value if r.value is not None else tuple(r.nodes) for r in results}
        assert len(values) == 1, query
