"""Tests for the buffer manager."""

import pytest

from repro.errors import BufferError_
from repro.sim.clock import SimClock
from repro.sim.costmodel import CostModel
from repro.sim.disk import DiskDevice
from repro.sim.iosys import AsyncIOSystem
from repro.sim.stats import Stats
from repro.storage.buffer import BufferManager
from repro.storage.page import Segment


def make_buffer(capacity=4, n_pages=16):
    segment = Segment(512)
    for _ in range(n_pages):
        segment.allocate()
    stats = Stats()
    clock = SimClock()
    disk = DiskDevice(stats=stats)
    iosys = AsyncIOSystem(disk, clock, CostModel(), stats)
    return BufferManager(segment, iosys, clock, CostModel(), capacity, stats), clock, stats, iosys


def test_miss_then_hit():
    buffer, clock, stats, _ = make_buffer()
    frame = buffer.fix(3)
    assert stats.buffer_misses == 1
    t_after_miss = clock.now
    buffer.unfix(frame)
    frame2 = buffer.fix(3)
    assert stats.buffer_hits == 1
    # the hit costs only CPU (swizzle), no I/O wait
    assert clock.io_wait == pytest.approx(clock.io_wait)
    assert frame2 is frame
    assert clock.now - t_after_miss < 1e-3


def test_miss_blocks_on_io():
    buffer, clock, _, _ = make_buffer()
    buffer.fix(5)
    assert clock.io_wait > 0


def test_lru_eviction():
    buffer, _, stats, _ = make_buffer(capacity=2)
    f0 = buffer.fix(0)
    buffer.unfix(f0)
    f1 = buffer.fix(1)
    buffer.unfix(f1)
    f2 = buffer.fix(2)  # evicts page 0 (least recently used)
    buffer.unfix(f2)
    assert stats.evictions == 1
    assert not buffer.is_resident(0)
    assert buffer.is_resident(1)
    assert buffer.is_resident(2)


def test_pinned_frames_not_evicted():
    buffer, _, _, _ = make_buffer(capacity=2)
    f0 = buffer.fix(0)  # stays pinned
    f1 = buffer.fix(1)
    buffer.unfix(f1)
    buffer.fix(2)  # must evict page 1, not pinned page 0
    assert buffer.is_resident(0)
    assert not buffer.is_resident(1)


def test_all_pinned_raises():
    buffer, _, _, _ = make_buffer(capacity=2)
    buffer.fix(0)
    buffer.fix(1)
    with pytest.raises(BufferError_):
        buffer.fix(2)


def test_unfix_unpinned_raises():
    buffer, _, _, _ = make_buffer()
    frame = buffer.fix(0)
    buffer.unfix(frame)
    with pytest.raises(BufferError_):
        buffer.unfix(frame)


def test_try_fix_resident():
    buffer, clock, stats, _ = make_buffer()
    assert buffer.try_fix_resident(7) is None
    assert stats.buffer_misses == 0  # no I/O triggered
    frame = buffer.fix(7)
    buffer.unfix(frame)
    resident = buffer.try_fix_resident(7)
    assert resident is frame
    buffer.unfix(resident)


def test_admit_completed_after_async():
    buffer, clock, stats, iosys = make_buffer()
    iosys.request(9)
    page = iosys.get_completion()
    assert page == 9
    frame = buffer.admit_completed(9)
    assert buffer.is_resident(9)
    assert frame.pins == 0


def test_swizzle_costs_charged():
    buffer, clock, stats, _ = make_buffer()
    frame = buffer.fix(0)
    cpu_before = clock.cpu_time
    buffer.unfix(frame)
    buffer.unfix(buffer.fix(0))
    assert stats.swizzles == 2
    assert stats.unswizzles == 2
    assert clock.cpu_time > cpu_before


def test_capacity_validation():
    with pytest.raises(BufferError_):
        make_buffer(capacity=0)
