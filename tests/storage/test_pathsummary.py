"""Unit tests for the document path summary (trie, repair, postings)."""

import pytest

from repro import Database, ImportOptions
from repro.axes import Axis
from repro.algebra.steps import CompiledNodeTest, CompiledStep
from repro.model.builder import tree_from_nested
from repro.model.tree import Kind
from repro.storage.pathsummary import PathSummary
from repro.storage.store import recollect_pathsummary, repair_pathsummary
from tests.conftest import make_random_tree, small_database


def step(db, axis, name=None, kind="name"):
    tag = db.tags.lookup(name) if name else None
    test_kind = "name" if name else kind
    return CompiledStep(axis, CompiledNodeTest.compile(test_kind, axis, tag))


def pred_step(db, axis, name, predicates):
    tag = db.tags.lookup(name)
    return CompiledStep(
        axis, CompiledNodeTest.compile("name", axis, tag), predicates
    )


# ----------------------------------------------------------- construction


@pytest.mark.parametrize("seed", (0, 3, 7))
@pytest.mark.parametrize("fragmentation", (0.0, 0.6, 1.0))
def test_tree_collection_equals_physical_collection(seed, fragmentation):
    """The import-time (logical tree) and load-time (physical record)
    collectors must agree page-row-for-page-row on any layout."""
    db = Database(page_size=512, buffer_pages=64)
    tree = make_random_tree(db.tags, seed, n_top=20)
    db.add_tree(
        tree,
        "d",
        ImportOptions(page_size=512, fragmentation=fragmentation, seed=seed),
    )
    doc = db.document("d")
    assert doc.pathsummary is not None
    physical = PathSummary.collect(db.store.segment, doc.page_nos)
    assert doc.pathsummary == physical
    assert doc.pathsummary.n_nodes == physical.n_nodes == tree_core_nodes(doc)


def tree_core_nodes(doc):
    return doc.n_nodes


def test_counts_and_postings_match_structure():
    db = Database(page_size=512, buffer_pages=16)
    spec = ("a", [("b", [("c",), ("c",)]), ("b", [("c",)]), ("d",)])
    db.add_tree(tree_from_nested(spec, db.tags), "d", ImportOptions(page_size=512))
    doc = db.document("d")
    summary = doc.pathsummary
    t = db.tags.lookup
    root_chain = summary.root_key()[0]
    a = root_chain + (t("a"),)
    key_c = (a + (t("b"), t("c")), int(Kind.ELEMENT))
    assert summary.count(key_c) == 3
    assert summary.count((a + (t("d"),), int(Kind.ELEMENT))) == 1
    assert summary.count((a + (t("nope"),), int(Kind.ELEMENT))) == 0
    # every posted page really holds an instance; nothing else does
    rows = summary.page_rows()
    posted = summary.postings(key_c)
    for page_no in doc.page_nos:
        holds = key_c in rows.get(page_no, {})
        assert bool(posted >> page_no & 1) == holds


def test_roundtrip_page_rows_and_equality():
    db, _ = small_database(seed=4)
    summary = db.document("d").pathsummary
    clone = PathSummary.from_page_rows(summary.page_rows())
    assert clone == summary
    assert clone.n_paths == summary.n_paths
    assert clone.n_nodes == summary.n_nodes
    # mutating the clone's rows must not have aliased the original
    rows = summary.page_rows()
    some_page = next(iter(rows))
    rows[some_page] = {}
    assert PathSummary.from_page_rows(rows) != summary


# ----------------------------------------------------------------- repair


def test_repair_after_updates_equals_full_recollect(tmp_path):
    """WAL-maintained repair recollects only touched pages yet lands on
    the exact summary a from-scratch physical collection produces."""
    db, _ = small_database(seed=9)
    db.attach_wal(str(tmp_path / "store.bin"))
    session = db.session()
    doc = db.document("d")
    (root_elem,) = db.execute("/root", doc="d", plan="simple").nodes
    for position in range(3):
        session.insert("d", root_elem, position, "zz", Kind.ELEMENT)
    after_insert = doc.pathsummary
    assert after_insert is not None
    fresh = PathSummary.collect(db.store.segment, doc.page_nos)
    assert after_insert == fresh

    victim = db.execute("/root/*", doc="d", plan="simple").nodes[0]
    session.delete("d", victim)
    assert doc.pathsummary == PathSummary.collect(db.store.segment, doc.page_nos)


def test_repair_from_none_recollects_everything():
    db, _ = small_database(seed=2)
    doc = db.document("d")
    want = doc.pathsummary
    doc.pathsummary = None
    got = repair_pathsummary(db.store, doc, None, set(doc.page_nos))
    assert got == want
    doc.pathsummary = None
    assert recollect_pathsummary(db.store, doc) == want


def test_plain_update_invalidates_summary():
    """Without a WAL, structural updates drop the summary (like the
    synopsis and statistics) instead of leaving a stale one behind."""
    db, _ = small_database(seed=1)
    doc = db.document("d")
    assert doc.pathsummary is not None
    from repro.storage.update import insert_node

    (root_elem,) = db.execute("/root", doc="d", plan="simple").nodes
    insert_node(db.store, doc, root_elem, 0, "zz", Kind.ELEMENT)
    assert doc.pathsummary is None


# ------------------------------------------------------------- evaluation


def test_evaluate_refutes_absent_paths():
    db = make_eval_db()
    summary = db.document("d").pathsummary
    steps = [
        step(db, Axis.CHILD, "a"),
        step(db, Axis.CHILD, "nosuch"),
        step(db, Axis.CHILD, "c"),
    ]
    evaluation = summary.evaluate(steps)
    assert evaluation.refuted
    assert evaluation.cardinality == 0.0
    # refutation is per-position: the same tag in a valid position passes
    ok = summary.evaluate([step(db, Axis.CHILD, "a"), step(db, Axis.CHILD, "b")])
    assert not ok.refuted


def make_eval_db():
    db = Database(page_size=512, buffer_pages=16)
    spec = (
        "a",
        [
            ("b", [("c",), ("c", [("d",)])]),
            ("b", [("c",)]),
            ("e", [("d",)]),
        ],
    )
    db.add_tree(tree_from_nested(spec, db.tags), "d", ImportOptions(page_size=512))
    return db


def test_evaluate_exact_cardinality_matches_execution():
    db = make_eval_db()
    summary = db.document("d").pathsummary
    cases = [
        ("/a/b/c", [step(db, Axis.CHILD, "a"), step(db, Axis.CHILD, "b"), step(db, Axis.CHILD, "c")]),
        ("//d", [step(db, Axis.DESCENDANT, "d")]),
        ("//c/d", [step(db, Axis.DESCENDANT, "c"), step(db, Axis.CHILD, "d")]),
    ]
    for query, steps in cases:
        evaluation = summary.evaluate(steps)
        assert evaluation.exact, query
        result = db.execute(query, doc="d", plan="simple")
        assert evaluation.cardinality == float(len(result.nodes)), query


def test_evaluate_upward_axes_are_supersets_never_exact():
    db = make_eval_db()
    summary = db.document("d").pathsummary
    steps = [
        step(db, Axis.DESCENDANT, "d"),
        step(db, Axis.PARENT, None, kind="node"),
    ]
    evaluation = summary.evaluate(steps)
    assert not evaluation.refuted
    assert not evaluation.exact
    assert evaluation.cardinality is None
    # the parent step's set covers both true parent paths (c and e)
    tails = {chain[-1] for chain, _ in evaluation.step_sets[1]}
    assert {db.tags.lookup("c"), db.tags.lookup("e")} <= tails


def test_predicate_refutation_is_sound_and_clears_exact():
    db = make_eval_db()
    summary = db.document("d").pathsummary
    satisfiable = [step(db, Axis.CHILD, "c")]
    impossible = [step(db, Axis.CHILD, "nosuch")]

    class Pred:
        def __init__(self, steps):
            self.steps = steps

    base = [step(db, Axis.CHILD, "a")]
    ok = summary.evaluate(base + [pred_step(db, Axis.CHILD, "b", [Pred(satisfiable)])])
    assert not ok.refuted and not ok.exact
    refuted = summary.evaluate(
        base + [pred_step(db, Axis.CHILD, "b", [Pred(impossible)])]
    )
    assert refuted.refuted


# --------------------------------------------------------------- postings


def test_postings_cover_all_result_pages():
    """Every cluster that physically holds a step match is posted for
    that step — the pre-scan filter can never skip a contributing page."""
    from repro.storage.pathsummary import PathPostings
    from repro.storage.nodeid import page_of

    db, _ = small_database(seed=6, fragmentation=1.0)
    doc = db.document("d")
    summary = doc.pathsummary
    steps = [step(db, Axis.DESCENDANT, "b"), step(db, Axis.CHILD, "a")]
    evaluation = summary.evaluate(steps)
    postings = PathPostings.for_steps(summary, steps, evaluation)
    result = db.execute("//b/a", doc="d", plan="simple")
    final = len(steps) - 1
    for nid in result.nodes:
        assert postings.holds_candidate(final, page_of(nid))
    assert postings.relevant_pages() <= doc.n_pages
